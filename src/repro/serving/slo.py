"""Tail-latency SLOs, throughput-latency curves, and capacity planning.

Serving capacity is not "how many QPS until saturation" — it is "how many
QPS while p99 stays under the SLO".  This module closes that loop over
the event simulation:

* :class:`SLO` — latency objectives (p50/p95/p99 bounds, any subset);
* :func:`replica_capacity_qps` — analytic per-replica saturation
  throughput (full batches, steady-state cache hit rate), the scale
  against which offered load fractions are defined;
* :func:`throughput_latency_curve` — sweep offered load and measure the
  latency quantiles (the serving analogue of the paper's
  throughput-vs-batch-size trade-off, §V-B);
* :func:`plan_serving_capacity` — smallest replica pool that serves a
  target QPS within the SLO, with the fleet-style power bill
  (:mod:`repro.fleet.capacity` conventions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import ModelConfig
from .cache import CacheBank
from .engine import ServingConfig, ServingResult, resolve_platform, simulate_serving
from .replica import Replica
from .traffic import TrafficConfig

__all__ = [
    "SLO",
    "DEFAULT_CURVE_LOADS",
    "replica_capacity_qps",
    "throughput_latency_curve",
    "ServingCapacityPlan",
    "plan_serving_capacity",
]

#: Offered-load fractions (of pool saturation) for the standard curve.
#: The range starts at 0.5 — the congestion-dominated regime where p99
#: rises monotonically with load.  Below that, *adaptive batching* makes
#: the tail slightly non-monotone: moderate load forms bigger batches,
#: and amortizing the fixed per-launch overhead (§V-B) initially beats
#: the queueing delay it costs.  ``throughput_latency_curve`` accepts
#: arbitrary loads if you want to see that regime.
DEFAULT_CURVE_LOADS = (0.5, 0.65, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class SLO:
    """Latency objectives in milliseconds (``None`` = unconstrained)."""

    p99_ms: float | None = 25.0
    p95_ms: float | None = None
    p50_ms: float | None = None

    def __post_init__(self) -> None:
        for name in ("p99_ms", "p95_ms", "p50_ms"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive when set")

    def violations(self, result: ServingResult) -> dict[str, tuple[float, float]]:
        """Objectives the result misses: name -> (measured_ms, bound_ms)."""
        out: dict[str, tuple[float, float]] = {}
        for name, measured in (
            ("p99_ms", result.p99_ms),
            ("p95_ms", result.p95_ms),
            ("p50_ms", result.p50_ms),
        ):
            bound = getattr(self, name)
            if bound is not None and measured > bound:
                out[name] = (measured, bound)
        return out

    def satisfied_by(self, result: ServingResult) -> bool:
        return not self.violations(result)


def replica_capacity_qps(model: ModelConfig, cfg: ServingConfig, skew: float = 1.05) -> float:
    """Saturation throughput of ONE replica: full batches back-to-back at
    the steady-state (analytic) cache hit rate.

    This is the denominator for offered-load fractions; actual sustainable
    QPS under an SLO is lower (queueing delay blows the tail first).
    """
    replica = Replica(0, model, cfg.cache, resolve_platform(cfg.platform))
    b = cfg.policy.max_batch_requests
    lookups = b * model.mean_total_lookups
    hit_rate = (
        CacheBank(model, cfg.cache).predicted_hit_rate(skew) if cfg.cache.enabled else 0.0
    )
    svc = replica.service_time(b, int(round(lookups)), int(round(lookups * hit_rate)))
    return b / svc


def throughput_latency_curve(
    model: ModelConfig,
    cfg: ServingConfig,
    loads: tuple[float, ...] = DEFAULT_CURVE_LOADS,
    requests_per_point: int = 2000,
    skew: float = 1.05,
    seed: int = 0,
) -> list[tuple[float, ServingResult]]:
    """Simulate the pool at several offered-load fractions.

    Every point serves the same *number* of requests (duration scales
    inversely with QPS) so latency quantiles across points have equal
    sample sizes — without this, low-load points would be noisier and the
    curve's monotonicity would be a statistical accident.
    """
    if not loads:
        raise ValueError("loads must be non-empty")
    if any(f <= 0 for f in loads):
        raise ValueError("load fractions must be positive")
    capacity = cfg.num_replicas * replica_capacity_qps(model, cfg, skew)
    points: list[tuple[float, ServingResult]] = []
    for frac in loads:
        qps = frac * capacity
        traffic = TrafficConfig(
            qps=qps,
            duration_s=requests_per_point / qps,
            skew=skew,
            seed=seed,
        )
        points.append((qps, simulate_serving(model, traffic, cfg)))
    return points


@dataclass(frozen=True)
class ServingCapacityPlan:
    """Outcome of SLO-constrained capacity planning."""

    model_name: str
    target_qps: float
    slo: SLO
    num_replicas: int
    feasible: bool
    per_replica_capacity_qps: float
    p99_ms: float
    completed_qps: float
    power_watts: float

    @property
    def qps_per_watt(self) -> float:
        return self.completed_qps / self.power_watts if self.power_watts else 0.0


def plan_serving_capacity(
    model: ModelConfig,
    target_qps: float,
    slo: SLO,
    cfg: ServingConfig = ServingConfig(),
    max_replicas: int = 64,
    requests_per_point: int = 1500,
    seed: int = 0,
) -> ServingCapacityPlan:
    """Smallest replica pool serving ``target_qps`` within the SLO.

    Starts from the work-conserving lower bound (demand / per-replica
    saturation) and grows the pool until the simulated tail fits — the
    headroom above the bound is the price of tail latency.
    """
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    if max_replicas < 1:
        raise ValueError("max_replicas must be >= 1")
    per_replica = replica_capacity_qps(model, cfg)
    platform = resolve_platform(cfg.platform)
    start = max(1, int(target_qps / per_replica) + (target_qps % per_replica > 0))
    # When even the work-conserving bound exceeds the pool cap, still
    # simulate the capped pool so the infeasible outcome reports its tail.
    start = min(start, max_replicas)
    last_result: ServingResult | None = None
    for n in range(start, max_replicas + 1):
        trial = replace(cfg, num_replicas=n)
        traffic = TrafficConfig(
            qps=target_qps,
            duration_s=requests_per_point / target_qps,
            seed=seed,
        )
        result = simulate_serving(model, traffic, trial)
        last_result = result
        meets_slo = slo.satisfied_by(result)
        # Keeping up means completing what arrived without drops; a pool
        # that cannot sustain the rate shows up as an exploding tail (the
        # queue grows through the window), so the SLO check catches
        # overload.  completed_qps is NOT compared against target_qps
        # here: it is measured over the full horizon *including* the
        # post-window drain, which under-reports at short windows.
        keeps_up = result.dropped == 0 and result.completed >= 0.95 * result.arrived
        if meets_slo and keeps_up:
            return ServingCapacityPlan(
                model_name=model.name,
                target_qps=target_qps,
                slo=slo,
                num_replicas=n,
                feasible=True,
                per_replica_capacity_qps=per_replica,
                p99_ms=result.p99_ms,
                completed_qps=result.completed_qps,
                power_watts=n * platform.nameplate_watts,
            )
    assert last_result is not None
    return ServingCapacityPlan(
        model_name=model.name,
        target_qps=target_qps,
        slo=slo,
        num_replicas=max_replicas,
        feasible=False,
        per_replica_capacity_qps=per_replica,
        p99_ms=last_result.p99_ms,
        completed_qps=last_result.completed_qps,
        power_watts=max_replicas * platform.nameplate_watts,
    )
