"""Request traffic for the online serving simulation.

Training throughput is only half of the efficiency story: the models the
paper characterizes are trained *continually* because they serve live
click-through traffic (§II-A).  This module synthesizes that traffic:

* seeded **Poisson arrivals** at a target QPS, optionally modulated by a
  diurnal sine (the daily load swing production capacity is planned
  around), thinned from the peak rate so the process stays exact;
* per-request sparse features whose row ids follow the **exact discrete
  Zipf** law (:func:`repro.data.distributions.sample_discrete_zipf`), so
  measured hot-row-cache hit rates are comparable with the analytic
  predictions in :mod:`repro.placement.cache`;
* optional labels from a :class:`repro.data.click_model.ClickModel`
  teacher so staleness experiments can score NE on served traffic.

Generation is vectorized: all arrivals, dense features and lookups are
drawn in bulk and then sliced into per-:class:`Request` views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ModelConfig
from ..core.embedding import RaggedIndices
from ..core.model import Batch
from ..data.click_model import ClickModel
from ..data.distributions import sample_discrete_zipf
from ..data.synthetic import sample_lengths

__all__ = ["TrafficConfig", "Request", "generate_requests", "requests_to_batch"]


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one serving-traffic window.

    Attributes:
        qps: mean request arrival rate (requests/second).
        duration_s: window length in simulated seconds.
        num_flows: independent client flows; requests are tagged so
            per-flow ordering invariants can be checked.
        skew: Zipf exponent of row popularity (1.05 matches the training
            data generator and the cache analytics).
        diurnal_amplitude: ``A`` in ``rate(t) = qps * (1 + A sin(2 pi t /
            period))``; 0 disables modulation.  Must leave the rate
            positive (``A < 1``).
        diurnal_period_s: period of the modulation.
        seed: RNG seed; identical configs generate identical traffic.
    """

    qps: float
    duration_s: float
    num_flows: int = 4
    skew: float = 1.05
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.num_flows < 1:
            raise ValueError(f"num_flows must be >= 1, got {self.num_flows}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")


class Request:
    """One inference request: a single example plus queueing bookkeeping.

    ``sparse`` maps feature name -> 1-D index array (the example's
    activated rows for that feature).  ``attempts`` counts service
    attempts consumed by replica crashes (see
    :mod:`repro.serving.engine`).
    """

    __slots__ = ("rid", "flow", "arrival_s", "dense", "sparse", "label", "attempts")

    def __init__(
        self,
        rid: int,
        flow: int,
        arrival_s: float,
        dense: np.ndarray,
        sparse: dict[str, np.ndarray],
        label: float = 0.0,
    ) -> None:
        self.rid = rid
        self.flow = flow
        self.arrival_s = arrival_s
        self.dense = dense
        self.sparse = sparse
        self.label = label
        self.attempts = 0

    @property
    def total_lookups(self) -> int:
        return sum(len(v) for v in self.sparse.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Request(rid={self.rid}, flow={self.flow}, t={self.arrival_s:.4f})"


def _poisson_arrivals(cfg: TrafficConfig, rng: np.random.Generator) -> np.ndarray:
    """Arrival times over ``[0, duration_s)``; exact thinning for diurnal."""
    peak = cfg.qps * (1.0 + cfg.diurnal_amplitude)
    # Draw gaps in bulk at the peak rate; top up until past the horizon.
    times: list[np.ndarray] = []
    t, total = 0.0, 0
    expect = int(peak * cfg.duration_s * 1.2) + 16
    while t < cfg.duration_s:
        gaps = rng.exponential(1.0 / peak, size=expect)
        arr = t + np.cumsum(gaps)
        times.append(arr)
        t = float(arr[-1])
        total += len(arr)
        if total > 50_000_000:  # pragma: no cover - defensive
            raise ValueError("traffic config generates unreasonably many requests")
    arrivals = np.concatenate(times)
    arrivals = arrivals[arrivals < cfg.duration_s]
    if cfg.diurnal_amplitude > 0:
        rate = cfg.qps * (
            1.0
            + cfg.diurnal_amplitude
            * np.sin(2.0 * np.pi * arrivals / cfg.diurnal_period_s)
        )
        keep = rng.uniform(size=len(arrivals)) < rate / peak
        arrivals = arrivals[keep]
    return arrivals


def generate_requests(
    model: ModelConfig,
    cfg: TrafficConfig,
    teacher: ClickModel | None = None,
) -> list[Request]:
    """Materialize the full request list for one traffic window.

    Deterministic under ``cfg.seed``; all random draws (arrivals, flows,
    dense features, lengths, row ids, labels) come from one seeded
    generator in a fixed order.
    """
    rng = np.random.default_rng(cfg.seed)
    arrivals = _poisson_arrivals(cfg, rng)
    n = len(arrivals)
    if n == 0:
        return []
    flows = rng.integers(0, cfg.num_flows, size=n)
    dense = rng.normal(0.0, 1.0, size=(n, model.num_dense))

    per_table_values: dict[str, np.ndarray] = {}
    per_table_offsets: dict[str, np.ndarray] = {}
    for spec in model.tables:
        lengths = sample_lengths(rng, n, spec.mean_lookups, spec.truncation)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        values = sample_discrete_zipf(
            rng, int(offsets[-1]), spec.hash_size, skew=cfg.skew
        )
        per_table_values[spec.name] = values
        per_table_offsets[spec.name] = offsets

    if teacher is not None:
        ragged = {
            name: RaggedIndices(
                values=per_table_values[name],
                offsets=per_table_offsets[name],
                safe_bound=spec.hash_size,
            )
            for name, spec in ((s.name, s) for s in model.tables)
        }
        labels = np.asarray(teacher.sample_labels(dense, ragged, rng=rng), dtype=float)
    else:
        labels = np.zeros(n)

    requests: list[Request] = []
    for i in range(n):
        sparse = {
            name: per_table_values[name][
                per_table_offsets[name][i] : per_table_offsets[name][i + 1]
            ]
            for name in per_table_values
        }
        requests.append(
            Request(
                rid=i,
                flow=int(flows[i]),
                arrival_s=float(arrivals[i]),
                dense=dense[i],
                sparse=sparse,
                label=float(labels[i]),
            )
        )
    return requests


def requests_to_batch(requests: list[Request], model: ModelConfig) -> Batch:
    """Merge a dynamic batch of requests into one model :class:`Batch`.

    Request order is preserved; row ``i`` of every tensor belongs to
    ``requests[i]``, which is how the engine maps scores back to
    requests.
    """
    if not requests:
        raise ValueError("cannot build a batch from zero requests")
    dense = np.stack([r.dense for r in requests])
    sparse: dict[str, RaggedIndices] = {}
    for spec in model.tables:
        parts = [r.sparse[spec.name] for r in requests]
        lengths = np.array([len(p) for p in parts], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        values = (
            np.concatenate(parts) if len(parts) else np.empty(0, dtype=np.int64)
        )
        sparse[spec.name] = RaggedIndices(
            values=values, offsets=offsets, safe_bound=spec.hash_size
        )
    labels = np.array([r.label for r in requests])
    return Batch(dense=dense, sparse=sparse, labels=labels)
