"""Functional hot-row embedding caches for serving replicas.

The paper points out that skewed row popularity makes "caching popular
embeddings" attractive (§III-A.2).  :mod:`repro.placement.cache` answers
the question analytically; this module answers it *functionally*: an
actual LRU/LFU cache processes the access stream, measures its own hit
rate, and (optionally) stores rows 8/4/2-bit quantized via
:mod:`repro.core.quantization` so the same capacity holds more rows.

Layers:

* :class:`HotRowCache` — one table's cache.  ``access`` does bookkeeping
  only (the pricing path); ``get_rows`` also returns row vectors (the
  functional path).
* :class:`CacheBank` — per-table caches for a model config, driven by
  ragged index batches; the unit a serving replica owns.
* :class:`CachedEmbeddingBagCollection` — a drop-in pooled-lookup wrapper
  around :class:`~repro.core.embedding.EmbeddingBagCollection` that fills
  cache lines from the real tables (exact rows, or lossy quantized rows
  when ``bits`` is set).

Measured hit rates are cross-validated against
:func:`repro.placement.cache.lru_hit_rate` (LRU / Che) and
:func:`repro.placement.cache.zipf_hit_rate` (LFU / top-k mass) in
``tests/test_serving_cache.py``.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.config import FP32_BYTES, ModelConfig, PoolingType
from ..core.embedding import EmbeddingBagCollection, RaggedIndices
from ..core.quantization import dequantize_rows, quantize_rows
from ..placement.cache import lru_hit_rate, zipf_hit_rate

__all__ = [
    "CacheConfig",
    "HotRowCache",
    "CacheBank",
    "CachedEmbeddingBagCollection",
    "predicted_hit_rate",
]

_POLICIES = ("lru", "lfu")


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and policy of the per-table hot-row caches.

    Attributes:
        capacity_rows: rows cached per table (0 disables caching).
        policy: ``"lru"`` (recency) or ``"lfu"`` (frequency).
        bits: when set (8/4/2), cached rows are stored quantized — lossy
            hits, but ``row_bytes`` shrinks accordingly.
    """

    capacity_rows: int = 0
    policy: str = "lru"
    bits: int | None = None

    def __post_init__(self) -> None:
        if self.capacity_rows < 0:
            raise ValueError(f"capacity_rows must be >= 0, got {self.capacity_rows}")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.bits is not None and self.bits not in (2, 4, 8):
            raise ValueError(f"bits must be one of (2, 4, 8), got {self.bits}")

    def row_bytes(self, dim: int) -> float:
        """Stored bytes per cached row (codes + scale when quantized)."""
        if self.bits is None:
            return dim * FP32_BYTES
        return dim * self.bits / 8.0 + 4.0

    @property
    def enabled(self) -> bool:
        return self.capacity_rows > 0


def predicted_hit_rate(
    policy: str, num_rows: int, capacity_rows: int, skew: float = 1.05
) -> float:
    """Analytic hit-rate prediction matching a :class:`HotRowCache` policy.

    LFU converges to caching the most popular rows, so its steady-state
    hit rate is the top-k Zipf mass (:func:`zipf_hit_rate`); LRU keeps
    recently-used rows and lands strictly lower (:func:`lru_hit_rate`).
    """
    if policy == "lfu":
        return zipf_hit_rate(num_rows, capacity_rows, skew)
    if policy == "lru":
        return lru_hit_rate(num_rows, capacity_rows, skew)
    raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")


class HotRowCache:
    """One embedding table's hot-row cache with a measured hit rate.

    Entries map row id -> stored payload (``None`` on the pricing-only
    path).  LRU is an :class:`~collections.OrderedDict` used as a
    recency list; LFU keeps per-row frequencies and evicts the
    least-frequent via a lazy heap (stale heap entries are skipped on
    pop), so both policies are O(log n) worst case per access.
    """

    def __init__(self, capacity_rows: int, policy: str = "lru") -> None:
        if capacity_rows < 0:
            raise ValueError(f"capacity_rows must be >= 0, got {capacity_rows}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.capacity = capacity_rows
        self.policy = policy
        self.hits = 0
        self.misses = 0
        #: Misses on rows never seen before (cold-start fills).  A finite
        #: window cannot avoid these, but the steady-state analytics
        #: (:func:`predicted_hit_rate`) assume a warmed cache — so
        #: cross-validation compares against :attr:`warm_hit_rate`.
        self.compulsory_misses = 0
        self._seen: set[int] = set()
        self._store: OrderedDict[int, object] = OrderedDict()
        # LFU state: row -> access count, plus a lazy min-heap of
        # (count, seq, row) candidates.
        self._freq: dict[int, int] = {}
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, row: int) -> bool:
        return row in self._store

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def warm_hit_rate(self) -> float:
        """Hit rate with cold-start (first-touch) misses excluded.

        An *optimistic* estimator: in steady state rare rows would still
        miss on most accesses, but here their first touch is simply
        dropped.  Together with the pessimistic raw :attr:`hit_rate`
        (which charges every cold fill) the pair brackets the
        steady-state hit rate over a finite window:
        ``hit_rate <= steady_state <= warm_hit_rate``.
        """
        warm = self.accesses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def invalidate(self) -> None:
        """Drop all entries (checkpoint refresh / replica cold start).

        Hit/miss counters survive — measured hit rates deliberately
        include the cold re-warm cost of invalidations.
        """
        self._store.clear()
        self._freq.clear()
        self._heap.clear()

    # -- internals ----------------------------------------------------------

    def _lfu_push(self, row: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._freq[row], self._seq, row))

    def _evict_one(self) -> None:
        if self.policy == "lru":
            self._store.popitem(last=False)
            return
        while self._heap:
            count, _, row = heapq.heappop(self._heap)
            if row in self._store and self._freq.get(row) == count:
                del self._store[row]
                del self._freq[row]
                return
        # Heap exhausted by stale entries: rebuild from live rows.
        for row in self._store:  # pragma: no cover - defensive
            self._lfu_push(row)
        if self._heap:
            self._evict_one()  # pragma: no cover - defensive

    def _touch(self, row: int) -> bool:
        """Record one access; returns True on hit."""
        hit = row in self._store
        if hit:
            self.hits += 1
            if self.policy == "lru":
                self._store.move_to_end(row)
            else:
                self._freq[row] += 1
                self._lfu_push(row)
        else:
            self.misses += 1
            if row not in self._seen:
                self.compulsory_misses += 1
                self._seen.add(row)
        return hit

    def _insert(self, row: int, payload: object) -> None:
        if self.capacity == 0:
            return
        if len(self._store) >= self.capacity:
            self._evict_one()
        self._store[row] = payload
        if self.policy == "lfu":
            self._freq[row] = self._freq.get(row, 0) + 1
            self._lfu_push(row)

    # -- public access paths -------------------------------------------------

    def access(self, rows: np.ndarray) -> int:
        """Bookkeeping-only pass over an access stream; returns hits.

        Used by the pricing path (``execute=False`` serving runs): the
        cache state and hit statistics evolve exactly as the functional
        path, but no row data moves.
        """
        batch_hits = 0
        for row in rows.tolist():
            if self._touch(row):
                batch_hits += 1
            else:
                self._insert(row, None)
        return batch_hits

    def get_rows(self, rows: np.ndarray, fetch, quant_bits: int | None) -> np.ndarray:
        """Serve row vectors through the cache; returns ``(len(rows), dim)``.

        ``fetch(row_ids) -> (k, dim)`` fills misses from backing storage.
        With ``quant_bits`` set, payloads are stored quantized and hits
        are dequantized — the lossy-compression serving option.
        """
        out: list[np.ndarray] = []
        for row in rows.tolist():
            if self._touch(row):
                payload = self._store[row]
                if quant_bits is None:
                    out.append(payload)  # type: ignore[arg-type]
                else:
                    codes, scale = payload  # type: ignore[misc]
                    out.append(dequantize_rows(codes, scale)[0])
            else:
                vec = np.asarray(fetch(np.array([row], dtype=np.int64))[0], dtype=float)
                if quant_bits is None:
                    self._insert(row, vec)
                    out.append(vec)
                else:
                    codes, scales = quantize_rows(vec[None, :], quant_bits)
                    self._insert(row, (codes, scales))
                    out.append(dequantize_rows(codes, scales)[0])
        if not out:
            return np.empty((0, 0))
        return np.stack(out)


class CacheBank:
    """Per-table hot-row caches for one model config.

    Each serving replica owns a bank, so hit rates reflect the traffic
    that replica actually saw (and go cold independently when a replica
    restarts).
    """

    def __init__(self, model: ModelConfig, config: CacheConfig) -> None:
        self.model = model
        self.config = config
        self.caches: dict[str, HotRowCache] = {
            spec.name: HotRowCache(
                min(config.capacity_rows, spec.hash_size), config.policy
            )
            for spec in model.tables
        }
        self._truncation = {spec.name: spec.truncation for spec in model.tables}

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def compulsory_misses(self) -> int:
        return sum(c.compulsory_misses for c in self.caches.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def warm_hit_rate(self) -> float:
        warm = self.accesses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def per_table_hit_rate(self) -> dict[str, float]:
        return {name: c.hit_rate for name, c in self.caches.items()}

    @property
    def capacity_bytes(self) -> float:
        return sum(
            self.config.row_bytes(self.model.embedding_dim) * c.capacity
            for c in self.caches.values()
        )

    def invalidate(self) -> None:
        for c in self.caches.values():
            c.invalidate()

    def _prepared_values(self, name: str, indices: RaggedIndices) -> np.ndarray:
        trunc = self._truncation[name]
        if trunc is not None:
            indices = indices.truncate(trunc)
        return indices.values

    def access_batch(self, sparse: dict[str, RaggedIndices]) -> int:
        """Bookkeeping pass over one merged batch; returns batch hits."""
        batch_hits = 0
        for name, cache in self.caches.items():
            batch_hits += cache.access(self._prepared_values(name, sparse[name]))
        return batch_hits

    def predicted_hit_rate(self, skew: float = 1.05) -> float:
        """Lookup-weighted analytic hit rate for this bank's policy."""
        total = max(self.model.mean_total_lookups, 1e-12)
        rate = 0.0
        for spec in self.model.tables:
            rate += (
                spec.effective_mean_lookups
                * predicted_hit_rate(
                    self.config.policy,
                    spec.hash_size,
                    self.caches[spec.name].capacity,
                    skew,
                )
                / total
            )
        return min(1.0, rate)


class CachedEmbeddingBagCollection:
    """Pooled embedding lookups served through a hot-row cache.

    Mirrors :meth:`EmbeddingBagCollection.forward` (inference mode only:
    nothing is saved for backward) but routes every row gather through
    the bank; misses fill from the real table weights.  With
    ``config.bits`` set, cached rows are quantized — hits return lossy
    rows while misses stay exact, which is how a quantized cache tier
    actually behaves.
    """

    def __init__(self, ebc: EmbeddingBagCollection, config: CacheConfig) -> None:
        self.ebc = ebc
        self.config = config
        specs = ebc.specs
        self.caches: dict[str, HotRowCache] = {
            spec.name: HotRowCache(
                min(config.capacity_rows, spec.hash_size), config.policy
            )
            for spec in specs
        }

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def compulsory_misses(self) -> int:
        return sum(c.compulsory_misses for c in self.caches.values())

    @property
    def hit_rate(self) -> float:
        acc = self.hits + self.misses
        return self.hits / acc if acc else 0.0

    @property
    def warm_hit_rate(self) -> float:
        warm = self.hits + self.misses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def invalidate(self) -> None:
        for c in self.caches.values():
            c.invalidate()

    def forward(self, batch: dict[str, RaggedIndices]) -> dict[str, np.ndarray]:
        """Cache-served pooled lookup; returns feature name -> (batch, dim).

        Agrees exactly with ``EmbeddingBagCollection.forward(...,
        training=False)`` when ``bits`` is None (the cache stores exact
        rows), and within quantization error otherwise.
        """
        out: dict[str, np.ndarray] = {}
        for feature in self.ebc.feature_names:
            table = self.ebc.tables[self.ebc.feature_to_table[feature]]
            indices = batch[feature]
            if table.spec.truncation is not None:
                indices = indices.truncate(table.spec.truncation)
            cache = self.caches[self.ebc.feature_to_table[feature]]
            gathered = cache.get_rows(
                indices.values,
                fetch=lambda rows, w=table.weight: w[rows],
                quant_bits=self.config.bits,
            )
            lengths = indices.lengths()
            pooled = np.zeros(
                (indices.batch_size, table.dim), dtype=table.weight.dtype
            )
            if len(indices.values):
                sample_of = np.repeat(np.arange(indices.batch_size), lengths)
                np.add.at(pooled, sample_of, gathered)
            if table.pooling is PoolingType.MEAN:
                pooled = pooled / np.maximum(lengths, 1).astype(pooled.dtype)[:, None]
            out[feature] = pooled
        return out
