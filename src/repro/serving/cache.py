"""Functional hot-row embedding caches for serving replicas.

The paper points out that skewed row popularity makes "caching popular
embeddings" attractive (§III-A.2).  :mod:`repro.placement.cache` answers
the question analytically; this module answers it *functionally*: an
actual LRU/LFU cache processes the access stream, measures its own hit
rate, and (optionally) stores rows 8/4/2-bit quantized via
:mod:`repro.core.quantization` so the same capacity holds more rows.

Layers:

* :class:`HotRowCache` — one table's cache: a thin payload layer over the
  shared :class:`repro.tiering.policy.PolicyCache` (eviction semantics and
  hit accounting are written once for serving and the tiered training
  store).  ``access`` does bookkeeping only (the pricing path);
  ``get_rows`` also returns row vectors (the functional path).
* :class:`CacheBank` — per-table caches for a model config, driven by
  ragged index batches; the unit a serving replica owns.
* :class:`CachedEmbeddingBagCollection` — a drop-in pooled-lookup wrapper
  around :class:`~repro.core.embedding.EmbeddingBagCollection` that fills
  cache lines from the real tables (exact rows, or lossy quantized rows
  when ``bits`` is set).

Measured hit rates are cross-validated against
:func:`repro.tiering.analytic.lru_hit_rate` (LRU / Che) and
:func:`repro.tiering.analytic.zipf_hit_rate` (LFU / top-k mass) in
``tests/test_serving_cache.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import FP32_BYTES, ModelConfig, PoolingType
from ..core.embedding import EmbeddingBagCollection, RaggedIndices
from ..core.quantization import dequantize_rows, quantize_rows
from ..tiering.analytic import lru_hit_rate, zipf_hit_rate
from ..tiering.policy import PolicyCache

__all__ = [
    "CacheConfig",
    "HotRowCache",
    "CacheBank",
    "CachedEmbeddingBagCollection",
    "predicted_hit_rate",
]

_POLICIES = ("lru", "lfu")


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and policy of the per-table hot-row caches.

    Attributes:
        capacity_rows: rows cached per table (0 disables caching).
        policy: ``"lru"`` (recency) or ``"lfu"`` (frequency).
        bits: when set (8/4/2), cached rows are stored quantized — lossy
            hits, but ``row_bytes`` shrinks accordingly.
    """

    capacity_rows: int = 0
    policy: str = "lru"
    bits: int | None = None

    def __post_init__(self) -> None:
        if self.capacity_rows < 0:
            raise ValueError(f"capacity_rows must be >= 0, got {self.capacity_rows}")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.bits is not None and self.bits not in (2, 4, 8):
            raise ValueError(f"bits must be one of (2, 4, 8), got {self.bits}")

    def row_bytes(self, dim: int) -> float:
        """Stored bytes per cached row (codes + scale when quantized)."""
        if self.bits is None:
            return dim * FP32_BYTES
        return dim * self.bits / 8.0 + 4.0

    @property
    def enabled(self) -> bool:
        return self.capacity_rows > 0


def predicted_hit_rate(
    policy: str, num_rows: int, capacity_rows: int, skew: float = 1.05
) -> float:
    """Analytic hit-rate prediction matching a :class:`HotRowCache` policy.

    LFU converges to caching the most popular rows, so its steady-state
    hit rate is the top-k Zipf mass (:func:`zipf_hit_rate`); LRU keeps
    recently-used rows and lands strictly lower (:func:`lru_hit_rate`).
    """
    if policy == "lfu":
        return zipf_hit_rate(num_rows, capacity_rows, skew)
    if policy == "lru":
        return lru_hit_rate(num_rows, capacity_rows, skew)
    raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")


class HotRowCache(PolicyCache):
    """One embedding table's hot-row cache with a measured hit rate.

    Eviction semantics, hit/miss/compulsory accounting and the warm/raw
    hit-rate bracket all come from the shared
    :class:`~repro.tiering.policy.PolicyCache`; this subclass restricts
    the policy menu to the serving pair (LRU/LFU — frequency admission
    needs training-side stats) and adds the row-payload path
    (:meth:`get_rows`, optionally quantized).
    """

    def __init__(self, capacity_rows: int, policy: str = "lru") -> None:
        if capacity_rows < 0:
            raise ValueError(f"capacity_rows must be >= 0, got {capacity_rows}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        super().__init__(capacity_rows, policy)

    def get_rows(self, rows: np.ndarray, fetch, quant_bits: int | None) -> np.ndarray:
        """Serve row vectors through the cache; returns ``(len(rows), dim)``.

        ``fetch(row_ids) -> (k, dim)`` fills misses from backing storage.
        With ``quant_bits`` set, payloads are stored quantized and hits
        are dequantized — the lossy-compression serving option.
        """
        out: list[np.ndarray] = []
        for row in rows.tolist():
            if self.touch(row):
                payload = self.get(row)
                if quant_bits is None:
                    out.append(payload)  # type: ignore[arg-type]
                else:
                    codes, scale = payload  # type: ignore[misc]
                    out.append(dequantize_rows(codes, scale)[0])
            else:
                vec = np.asarray(fetch(np.array([row], dtype=np.int64))[0], dtype=float)
                if quant_bits is None:
                    self.insert(row, vec)
                    out.append(vec)
                else:
                    codes, scales = quantize_rows(vec[None, :], quant_bits)
                    self.insert(row, (codes, scales))
                    out.append(dequantize_rows(codes, scales)[0])
        if not out:
            return np.empty((0, 0))
        return np.stack(out)


class CacheBank:
    """Per-table hot-row caches for one model config.

    Each serving replica owns a bank, so hit rates reflect the traffic
    that replica actually saw (and go cold independently when a replica
    restarts).
    """

    def __init__(self, model: ModelConfig, config: CacheConfig) -> None:
        self.model = model
        self.config = config
        self.caches: dict[str, HotRowCache] = {
            spec.name: HotRowCache(
                min(config.capacity_rows, spec.hash_size), config.policy
            )
            for spec in model.tables
        }
        self._truncation = {spec.name: spec.truncation for spec in model.tables}

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def compulsory_misses(self) -> int:
        return sum(c.compulsory_misses for c in self.caches.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def warm_hit_rate(self) -> float:
        warm = self.accesses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def per_table_hit_rate(self) -> dict[str, float]:
        return {name: c.hit_rate for name, c in self.caches.items()}

    @property
    def capacity_bytes(self) -> float:
        return sum(
            self.config.row_bytes(self.model.embedding_dim) * c.capacity
            for c in self.caches.values()
        )

    def invalidate(self) -> None:
        for c in self.caches.values():
            c.invalidate()

    def _prepared_values(self, name: str, indices: RaggedIndices) -> np.ndarray:
        trunc = self._truncation[name]
        if trunc is not None:
            indices = indices.truncate(trunc)
        return indices.values

    def access_batch(self, sparse: dict[str, RaggedIndices]) -> int:
        """Bookkeeping pass over one merged batch; returns batch hits."""
        batch_hits = 0
        for name, cache in self.caches.items():
            batch_hits += cache.access(self._prepared_values(name, sparse[name]))
        return batch_hits

    def predicted_hit_rate(self, skew: float = 1.05) -> float:
        """Lookup-weighted analytic hit rate for this bank's policy."""
        total = max(self.model.mean_total_lookups, 1e-12)
        rate = 0.0
        for spec in self.model.tables:
            rate += (
                spec.effective_mean_lookups
                * predicted_hit_rate(
                    self.config.policy,
                    spec.hash_size,
                    self.caches[spec.name].capacity,
                    skew,
                )
                / total
            )
        return min(1.0, rate)


class CachedEmbeddingBagCollection:
    """Pooled embedding lookups served through a hot-row cache.

    Mirrors :meth:`EmbeddingBagCollection.forward` (inference mode only:
    nothing is saved for backward) but routes every row gather through
    the bank; misses fill from the real table weights.  With
    ``config.bits`` set, cached rows are quantized — hits return lossy
    rows while misses stay exact, which is how a quantized cache tier
    actually behaves.
    """

    def __init__(self, ebc: EmbeddingBagCollection, config: CacheConfig) -> None:
        self.ebc = ebc
        self.config = config
        specs = ebc.specs
        self.caches: dict[str, HotRowCache] = {
            spec.name: HotRowCache(
                min(config.capacity_rows, spec.hash_size), config.policy
            )
            for spec in specs
        }

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches.values())

    @property
    def compulsory_misses(self) -> int:
        return sum(c.compulsory_misses for c in self.caches.values())

    @property
    def hit_rate(self) -> float:
        acc = self.hits + self.misses
        return self.hits / acc if acc else 0.0

    @property
    def warm_hit_rate(self) -> float:
        warm = self.hits + self.misses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def invalidate(self) -> None:
        for c in self.caches.values():
            c.invalidate()

    def forward(self, batch: dict[str, RaggedIndices]) -> dict[str, np.ndarray]:
        """Cache-served pooled lookup; returns feature name -> (batch, dim).

        Agrees exactly with ``EmbeddingBagCollection.forward(...,
        training=False)`` when ``bits`` is None (the cache stores exact
        rows), and within quantization error otherwise.
        """
        out: dict[str, np.ndarray] = {}
        for feature in self.ebc.feature_names:
            table = self.ebc.tables[self.ebc.feature_to_table[feature]]
            indices = batch[feature]
            if table.spec.truncation is not None:
                indices = indices.truncate(table.spec.truncation)
            cache = self.caches[self.ebc.feature_to_table[feature]]
            gathered = cache.get_rows(
                indices.values,
                fetch=lambda rows, w=table.weight: w[rows],
                quant_bits=self.config.bits,
            )
            lengths = indices.lengths()
            pooled = np.zeros(
                (indices.batch_size, table.dim), dtype=table.weight.dtype
            )
            if len(indices.values):
                sample_of = np.repeat(np.arange(indices.batch_size), lengths)
                np.add.at(pooled, sample_of, gathered)
            if table.pooling is PoolingType.MEAN:
                pooled = pooled / np.maximum(lengths, 1).astype(pooled.dtype)[:, None]
            out[feature] = pooled
        return out
