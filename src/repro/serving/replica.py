"""A serving replica: priced by the perf cost catalog, executed by the model.

Each replica owns a hot-row cache (:mod:`repro.serving.cache`) and serves
dynamic batches two ways at once:

* **pricing** — per-batch service time from the same operator catalog the
  training model uses (:func:`repro.perf.ops.inference_dense_cost` for
  the dense forward slice, plus cache-discounted embedding gather bytes),
  mapped through the platform roofline
  (:func:`repro.hardware.device.op_time`).  This keeps training and
  serving throughput claims mutually consistent: inference is priced as
  the forward slice of the training iteration.
* **execution** (optional) — actual click probabilities through the
  shared :class:`~repro.core.model.DLRM` using the inference fast path
  (``training=False``) with embeddings served from the replica's cache.

Replicas share one model's weights (production replicas serve the same
snapshot) but own their caches, so cache warmth is per-replica state that
a crash or checkpoint refresh wipes.
"""

from __future__ import annotations

import numpy as np

from ..core.config import FP32_BYTES, ModelConfig
from ..core.loss import sigmoid
from ..core.model import DLRM
from ..hardware.device import DeviceSpec, OpCost, op_time
from ..hardware.specs import DUAL_SOCKET_CPU, PlatformSpec
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.ops import EMB_RANDOM_ACCESS_PENALTY, inference_dense_cost
from ..perf.pipeline import _aggregate_cpu_device
from .cache import CacheBank, CacheConfig, CachedEmbeddingBagCollection
from .traffic import Request, requests_to_batch

__all__ = ["Replica", "serving_device", "CACHE_HIT_SPEEDUP"]

#: Effective-bandwidth multiplier for cache hits: hot rows live in a
#: fast tier (LLC / pinned HBM slab) instead of being random DRAM
#: gathers, so a hit moves bytes ~an order of magnitude faster than the
#: penalized miss path.
CACHE_HIT_SPEEDUP = 8.0


def serving_device(
    platform: PlatformSpec, calib: Calibration = DEFAULT_CALIBRATION
) -> DeviceSpec:
    """The roofline device one replica runs on.

    CPU platforms aggregate all sockets (one replica per server, the
    production CPU-serving shape); GPU platforms dedicate one GPU per
    replica (inference never needs the 8-GPU data-parallel gang).
    """
    if platform.has_gpus:
        assert platform.gpu is not None
        return platform.gpu
    return _aggregate_cpu_device(platform, calib)


class Replica:
    """One serving replica: cache + pricing + optional execution."""

    def __init__(
        self,
        index: int,
        model_cfg: ModelConfig,
        cache_cfg: CacheConfig,
        platform: PlatformSpec = DUAL_SOCKET_CPU,
        model: DLRM | None = None,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.index = index
        self.model_cfg = model_cfg
        self.cache_cfg = cache_cfg
        self.platform = platform
        self.device = serving_device(platform, calib)
        self._overhead_s = (
            calib.gpu_iteration_overhead_s
            if platform.has_gpus
            else calib.cpu_iteration_overhead_s
        )
        self.model = model
        if model is not None:
            self.cached = CachedEmbeddingBagCollection(model.embeddings, cache_cfg)
            self.bank: CacheBank | None = None
        else:
            self.cached = None
            self.bank = CacheBank(model_cfg, cache_cfg)
        # -- engine-owned scheduling state ----------------------------------
        self.alive = True
        self.busy_until = 0.0
        self.pause_until = 0.0
        self.inflight: list[Request] | None = None
        self.epoch = 0  # bumped on crash so stale completions are ignored

    # -- cache statistics ----------------------------------------------------

    @property
    def cache_hits(self) -> int:
        src = self.cached if self.cached is not None else self.bank
        return src.hits if src is not None else 0

    @property
    def cache_misses(self) -> int:
        src = self.cached if self.cached is not None else self.bank
        return src.misses if src is not None else 0

    @property
    def cache_compulsory_misses(self) -> int:
        src = self.cached if self.cached is not None else self.bank
        return src.compulsory_misses if src is not None else 0

    def invalidate_cache(self) -> None:
        if self.cached is not None:
            self.cached.invalidate()
        if self.bank is not None:
            self.bank.invalidate()

    # -- service --------------------------------------------------------------

    def touch_cache(self, requests: list[Request]) -> tuple[int, int]:
        """Run the batch's accesses through the cache (bookkeeping only);
        returns ``(hits, lookups)`` for pricing."""
        if not self.cache_cfg.enabled:
            return 0, sum(r.total_lookups for r in requests)
        batch = requests_to_batch(requests, self.model_cfg)
        before_h = self.cache_hits
        before_a = before_h + self.cache_misses
        if self.bank is not None:
            self.bank.access_batch(batch.sparse)
        else:
            assert self.cached is not None
            # Bookkeeping through the functional caches without gathers.
            for feature in self.cached.ebc.feature_names:
                table = self.cached.ebc.tables[self.cached.ebc.feature_to_table[feature]]
                indices = batch.sparse[feature]
                if table.spec.truncation is not None:
                    indices = indices.truncate(table.spec.truncation)
                cache = self.cached.caches[self.cached.ebc.feature_to_table[feature]]
                cache.access(indices.values)
        hits = self.cache_hits - before_h
        lookups = (self.cache_hits + self.cache_misses) - before_a
        return hits, lookups

    def predict(self, requests: list[Request]) -> np.ndarray:
        """Functional inference through the shared model + this replica's
        cache; returns click probabilities aligned with ``requests``."""
        if self.model is None or self.cached is None:
            raise RuntimeError("replica built without a model cannot execute")
        batch = requests_to_batch(requests, self.model_cfg)
        model = self.model
        dense_out = model.bottom_mlp.forward(
            batch.dense.astype(model.dtype, copy=False), training=False
        )
        if self.cache_cfg.enabled:
            emb_out = self.cached.forward(batch.sparse)
        else:
            emb_out = model.embeddings.forward(batch.sparse, training=False)
        embs = [emb_out[name] for name in (t.name for t in self.model_cfg.tables)]
        interacted = model.interaction.forward(dense_out, embs, training=False)
        top_out = model.top_mlp.forward(interacted, training=False)
        logits = model.scorer.forward(top_out, training=False)
        return sigmoid(logits.reshape(-1))

    # -- pricing --------------------------------------------------------------

    def embedding_cost(self, lookups: int, hits: int, batch: int) -> OpCost:
        """Gather+pool cost with hit traffic served from the fast tier.

        Misses pay the full irregular-gather penalty of
        :func:`repro.perf.ops.embedding_lookup_cost`; hits move
        ``row_bytes / CACHE_HIT_SPEEDUP`` equivalent bytes (smaller still
        when the cache stores quantized rows).
        """
        d = self.model_cfg.embedding_dim
        misses = lookups - hits
        hit_row_bytes = self.cache_cfg.row_bytes(d)
        gather_bytes = EMB_RANDOM_ACCESS_PENALTY * (
            misses * d * FP32_BYTES + hits * hit_row_bytes / CACHE_HIT_SPEEDUP
        )
        pooled_bytes = batch * self.model_cfg.num_sparse * d * FP32_BYTES
        return OpCost(
            flops=float(lookups * d),
            bytes=gather_bytes + pooled_bytes,
            kernels=self.model_cfg.num_sparse,
        )

    def service_time(
        self, batch: int, lookups: int, hits: int, slowdown: float = 1.0
    ) -> float:
        """Per-batch service time: fixed overhead + dense forward +
        cache-discounted embedding path, times any degradation factor."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if not 0 <= hits <= lookups:
            raise ValueError(f"hits {hits} outside [0, {lookups}]")
        dense = op_time(self.device, inference_dense_cost(self.model_cfg, batch))
        emb = op_time(self.device, self.embedding_cost(lookups, hits, batch))
        return self._overhead_s + (dense + emb) * slowdown
