"""Ground-truth click model (teacher) for synthetic training data.

The paper trains on production click logs we cannot ship, so accuracy
experiments (Figure 15) need a *learnable* synthetic substitute: labels must
carry signal in both the dense features and the sparse indices, otherwise
every training run converges to the background CTR and batch-size effects
vanish.

The teacher assigns every embedding row a latent scalar and every dense
feature a weight; an example's log-odds are a weighted sum of its dense
features and the latent values of its activated indices.  A DLRM can
represent this function (latents live in the embedding tables), so training
loss meaningfully decreases and quality differences across batch sizes are
observable.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ModelConfig
from ..core.embedding import RaggedIndices
from ..core.loss import sigmoid

__all__ = ["ClickModel"]


class ClickModel:
    """Latent-factor teacher producing {0,1} labels for synthetic batches."""

    def __init__(
        self,
        config: ModelConfig,
        rng: np.random.Generator | int | None = None,
        dense_scale: float = 1.0,
        sparse_scale: float = 1.0,
        noise_scale: float = 0.25,
        target_ctr: float = 0.3,
    ) -> None:
        if not 0 < target_ctr < 1:
            raise ValueError(f"target_ctr must be in (0, 1), got {target_ctr}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.config = config
        self._rng = rng
        self.dense_weights = rng.normal(
            0.0, dense_scale / np.sqrt(max(config.num_dense, 1)), size=config.num_dense
        )
        # Latent value per embedding row, per table; scaled by the expected
        # number of lookups so no single table dominates the log-odds.
        self.table_latents: dict[str, np.ndarray] = {}
        for table in config.tables:
            scale = sparse_scale / np.sqrt(
                max(table.effective_mean_lookups, 1.0) * config.num_sparse
            )
            self.table_latents[table.name] = rng.normal(0.0, scale, size=table.hash_size)
        self.noise_scale = noise_scale
        self.target_ctr = target_ctr
        # Initial bias from the logit of the target CTR; feature variance
        # pulls the realized CTR toward 0.5, so `calibrate` can refine it
        # against an actual feature sample.
        self.bias = float(np.log(target_ctr / (1 - target_ctr)))

    def logits(self, dense: np.ndarray, sparse: dict[str, RaggedIndices]) -> np.ndarray:
        """Noise-free log-odds for a batch."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[1] != self.config.num_dense:
            raise ValueError(
                f"dense width {dense.shape[1]} != {self.config.num_dense}"
            )
        out = dense @ self.dense_weights + self.bias
        for table in self.config.tables:
            ragged = sparse[table.name]
            latents = self.table_latents[table.name]
            if len(ragged.values):
                per_lookup = latents[ragged.values]
                sample_of = np.repeat(
                    np.arange(ragged.batch_size), ragged.lengths()
                )
                np.add.at(out, sample_of, per_lookup)
        return out

    def calibrate(
        self,
        dense: np.ndarray,
        sparse: dict[str, RaggedIndices],
        iterations: int = 25,
    ) -> float:
        """Adjust the bias so the mean probability over this feature sample
        matches ``target_ctr`` (bisection on the bias offset)."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        base = self.logits(dense, sparse) - self.bias
        lo, hi = -20.0, 20.0
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            if sigmoid(base + mid).mean() > self.target_ctr:
                hi = mid
            else:
                lo = mid
        self.bias = 0.5 * (lo + hi)
        return self.bias

    def sample_labels(
        self,
        dense: np.ndarray,
        sparse: dict[str, RaggedIndices],
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Draw Bernoulli labels from the noisy teacher probabilities."""
        rng = rng or self._rng
        logits = self.logits(dense, sparse)
        if self.noise_scale > 0:
            logits = logits + rng.normal(0.0, self.noise_scale, size=logits.shape)
        probs = sigmoid(logits)
        return (rng.uniform(size=len(probs)) < probs).astype(np.float64)

    def bayes_log_loss(self, num_samples: int = 20000) -> float:
        """Monte-Carlo estimate of the irreducible (Bayes) log-loss.

        Useful as a floor when interpreting normalized-entropy gaps.
        """
        rng = np.random.default_rng(7)
        logits = rng.normal(self.bias, 1.0, size=num_samples)
        probs = sigmoid(logits)
        return float(
            -(probs * np.log(probs) + (1 - probs) * np.log(1 - probs)).mean()
        )
