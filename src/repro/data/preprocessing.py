"""The data-preprocessing phase (paper §II-A, phase 1 of the ML pipeline).

"In the data preprocessing phase, we take unstructured data from persistent
storage and manipulate it, in order to feed into a machine learning model."
This module models that phase over synthetic *raw logs*:

* :class:`RawLogGenerator` — produces raw events: named numeric fields
  (unbounded scales) and named categorical fields (arbitrary 64-bit ids,
  variable multiplicity);
* :class:`DenseFeature` / :class:`SparseFeature` — per-feature transforms:
  log-compression and running-moment standardization for dense fields, the
  hashing trick plus truncation for categorical fields (§III-A.1);
* :class:`PreprocessingPipeline` — applies the feature specs to raw events
  and emits model-ready :class:`~repro.core.model.Batch` objects, labeling
  them with a provided teacher or raw click field.

The pipeline is fit/transform: statistics (means/variances) are learned on
a calibration sample and frozen, as preprocessing jobs do in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfig, TableSpec
from ..core.embedding import RaggedIndices, hash_raw_ids
from ..core.model import Batch

__all__ = [
    "RawEvent",
    "RawLogGenerator",
    "DenseFeature",
    "SparseFeature",
    "PreprocessingPipeline",
]


@dataclass(frozen=True)
class RawEvent:
    """One raw log event before feature extraction."""

    numeric: dict[str, float]
    categorical: dict[str, np.ndarray]  # name -> raw 64-bit ids
    clicked: bool


class RawLogGenerator:
    """Synthetic raw event stream with production-like irregularity.

    Numeric fields mix scales (counts, dwell times, ratios); categorical
    fields emit variable numbers of huge raw ids (the unbounded index sets
    that make hashing necessary, §III-A.1).
    """

    def __init__(
        self,
        numeric_fields: tuple[str, ...],
        categorical_fields: tuple[str, ...],
        rng: np.random.Generator | int | None = None,
        mean_multiplicity: float = 3.0,
        ctr: float = 0.3,
    ) -> None:
        if not numeric_fields and not categorical_fields:
            raise ValueError("need at least one field")
        if not 0 < ctr < 1:
            raise ValueError(f"ctr must be in (0, 1), got {ctr}")
        if mean_multiplicity < 0:
            raise ValueError("mean_multiplicity must be >= 0")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.numeric_fields = tuple(numeric_fields)
        self.categorical_fields = tuple(categorical_fields)
        self.rng = rng
        self.mean_multiplicity = mean_multiplicity
        self.ctr = ctr
        # per-field scale diversity: some fields are counts in the millions,
        # others are ratios near 1
        self._scales = {
            name: 10 ** rng.uniform(-1, 6) for name in numeric_fields
        }

    def event(self) -> RawEvent:
        numeric = {
            name: float(self.rng.lognormal(0.0, 1.0) * scale)
            for name, scale in self._scales.items()
        }
        categorical = {}
        for name in self.categorical_fields:
            count = self.rng.poisson(self.mean_multiplicity)
            categorical[name] = self.rng.integers(
                0, 2**48, size=count, dtype=np.uint64
            )
        return RawEvent(
            numeric=numeric,
            categorical=categorical,
            clicked=bool(self.rng.uniform() < self.ctr),
        )

    def events(self, count: int) -> list[RawEvent]:
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.event() for _ in range(count)]


@dataclass
class DenseFeature:
    """One dense feature: raw numeric field -> standardized scalar.

    ``log_compress`` applies log1p before standardization — the usual fix
    for heavy-tailed counters.
    """

    field_name: str
    log_compress: bool = True
    mean: float = 0.0
    std: float = 1.0
    fitted: bool = False

    def _raw(self, event: RawEvent) -> float:
        if self.field_name not in event.numeric:
            raise KeyError(f"event missing numeric field {self.field_name!r}")
        value = event.numeric[self.field_name]
        return float(np.log1p(max(value, 0.0))) if self.log_compress else value

    def fit(self, events: list[RawEvent]) -> None:
        values = np.array([self._raw(e) for e in events])
        self.mean = float(values.mean())
        self.std = float(values.std()) or 1.0
        self.fitted = True

    def transform(self, event: RawEvent) -> float:
        if not self.fitted:
            raise RuntimeError(f"dense feature {self.field_name!r} not fitted")
        return (self._raw(event) - self.mean) / self.std


@dataclass
class SparseFeature:
    """One sparse feature: raw categorical ids -> hashed, truncated indices."""

    field_name: str
    hash_size: int
    truncation: int | None = None

    def __post_init__(self) -> None:
        if self.hash_size < 1:
            raise ValueError("hash_size must be >= 1")
        if self.truncation is not None and self.truncation < 1:
            raise ValueError("truncation must be >= 1")

    def transform(self, event: RawEvent) -> np.ndarray:
        if self.field_name not in event.categorical:
            raise KeyError(f"event missing categorical field {self.field_name!r}")
        raw = event.categorical[self.field_name]
        hashed = hash_raw_ids(raw, self.hash_size)
        if self.truncation is not None:
            hashed = hashed[: self.truncation]
        return hashed


class PreprocessingPipeline:
    """Feature specs + frozen statistics -> model-ready batches."""

    def __init__(
        self,
        dense: list[DenseFeature],
        sparse: list[SparseFeature],
    ) -> None:
        if not dense and not sparse:
            raise ValueError("pipeline needs at least one feature")
        names = [f.field_name for f in dense] + [f.field_name for f in sparse]
        if len(set(names)) != len(names):
            raise ValueError("duplicate feature field names")
        self.dense = list(dense)
        self.sparse = list(sparse)

    def fit(self, events: list[RawEvent]) -> "PreprocessingPipeline":
        if not events:
            raise ValueError("need calibration events")
        for feature in self.dense:
            feature.fit(events)
        return self

    def transform(self, events: list[RawEvent]) -> Batch:
        """Produce one training batch from raw events (labels = clicks)."""
        if not events:
            raise ValueError("empty event list")
        dense = np.array(
            [[f.transform(e) for f in self.dense] for e in events]
        ).reshape(len(events), len(self.dense))
        sparse = {
            # transform() routes ids through hash_raw_ids, so the indices are
            # range-safe by construction and the lookup skips its bounds scan.
            f.field_name: RaggedIndices.from_lists(
                [f.transform(e) for e in events], safe_bound=f.hash_size
            )
            for f in self.sparse
        }
        labels = np.array([1.0 if e.clicked else 0.0 for e in events])
        return Batch(dense=dense, sparse=sparse, labels=labels)

    def model_config(
        self,
        name: str,
        bottom_mlp,
        top_mlp,
        dim: int = 16,
        mean_lookups: float = 3.0,
        interaction=None,
    ) -> ModelConfig:
        """Derive the matching :class:`ModelConfig` for this pipeline."""
        from ..core.config import InteractionType

        tables = tuple(
            TableSpec(
                name=f.field_name,
                hash_size=f.hash_size,
                dim=dim,
                mean_lookups=mean_lookups,
                truncation=f.truncation,
            )
            for f in self.sparse
        )
        return ModelConfig(
            name=name,
            num_dense=len(self.dense),
            tables=tables,
            bottom_mlp=bottom_mlp,
            top_mlp=top_mlp,
            interaction=interaction or InteractionType.CONCAT,
        )
