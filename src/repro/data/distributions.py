"""Samplers for the statistical shapes the paper reports.

Two distributions recur throughout the characterization:

* **Feature lengths** (lookups per sparse feature, Figure 7) follow a
  power-law: a few tables are accessed far more often than the rest.
* **Hash sizes** (Figure 6) span 30 .. 20M with model-level means of a few
  million; we model them as clipped log-normals targeting a given mean.

Both samplers are deterministic under a seeded generator so production-model
configs (:mod:`repro.configs`) are reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_power_law",
    "sample_lognormal_with_mean",
    "zipf_probabilities",
    "sample_discrete_zipf",
    "power_law_mean_lengths",
]


def sample_power_law(
    rng: np.random.Generator,
    size: int,
    alpha: float,
    x_min: float = 1.0,
    x_max: float | None = None,
) -> np.ndarray:
    """Draw from a continuous power-law ``p(x) ~ x^-alpha`` on ``[x_min, x_max]``.

    Inverse-CDF sampling of the (optionally truncated) Pareto distribution.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a normalizable tail, got {alpha}")
    if x_min <= 0:
        raise ValueError(f"x_min must be positive, got {x_min}")
    if x_max is not None and x_max <= x_min:
        raise ValueError(f"x_max ({x_max}) must exceed x_min ({x_min})")
    u = rng.uniform(0.0, 1.0, size=size)
    one_minus_alpha = 1.0 - alpha
    if x_max is None:
        return x_min * (1.0 - u) ** (1.0 / one_minus_alpha)
    lo = x_min**one_minus_alpha
    hi = x_max**one_minus_alpha
    return (lo + u * (hi - lo)) ** (1.0 / one_minus_alpha)


def sample_lognormal_with_mean(
    rng: np.random.Generator,
    size: int,
    target_mean: float,
    sigma: float = 1.5,
    clip_min: float | None = None,
    clip_max: float | None = None,
) -> np.ndarray:
    """Log-normal samples whose *distribution* mean equals ``target_mean``.

    ``mean = exp(mu + sigma^2 / 2)`` fixes ``mu``.  Clipping (to the paper's
    observed 30..20M hash-size range) slightly shifts the realized mean;
    callers that need an exact realized mean should rescale afterwards.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if target_mean <= 0:
        raise ValueError(f"target_mean must be positive, got {target_mean}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    mu = np.log(target_mean) - 0.5 * sigma**2
    samples = rng.lognormal(mean=mu, sigma=sigma, size=size)
    if clip_min is not None or clip_max is not None:
        samples = np.clip(samples, clip_min, clip_max)
    return samples


def zipf_probabilities(num_items: int, exponent: float = 1.05) -> np.ndarray:
    """Zipf access probabilities over ``num_items`` ranks.

    Used to make embedding-row accesses skewed, mirroring the irregular
    vector accesses the paper highlights (§I, contribution 3).
    """
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_discrete_zipf(
    rng: np.random.Generator,
    total: int,
    num_items: int,
    skew: float = 1.05,
    mix: bool = True,
) -> np.ndarray:
    """Draw ``total`` item ids from the *exact* discrete Zipf(``skew``) law.

    Unlike :func:`repro.data.synthetic.sample_zipf_indices` (a continuous
    power-law inverse-CDF, O(total) regardless of table size, used for
    training streams over 20M-row tables), this sampler materializes the
    discrete pmf and inverts its CDF with ``searchsorted`` — O(num_items)
    memory but *statistically exact*, so measured cache hit rates line up
    with the analytic :func:`repro.placement.cache.zipf_hit_rate` /
    :func:`repro.placement.cache.lru_hit_rate` predictions.  The online
    serving path (:mod:`repro.serving.traffic`) uses it because inference
    caches are validated against those predictions.

    ``mix`` maps rank -> row id through the same multiplicative-hash mixing
    as the training sampler, so popular rows are spread across the table
    instead of clustered at id 0.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cdf = np.cumsum(zipf_probabilities(num_items, skew))
    cdf[-1] = 1.0  # guard against float round-off at the tail
    ranks = np.searchsorted(cdf, rng.uniform(size=total), side="right")
    ranks = np.minimum(ranks, num_items - 1)  # rank 0 = most popular
    if not mix:
        return ranks.astype(np.int64)
    mixed = ((ranks.astype(np.uint64) + 1) * np.uint64(2654435761)) % np.uint64(
        num_items
    )
    return mixed.astype(np.int64)


def power_law_mean_lengths(
    rng: np.random.Generator,
    num_tables: int,
    overall_mean: float,
    alpha: float = 2.2,
    max_length: float = 200.0,
) -> np.ndarray:
    """Per-table mean feature lengths with a power-law shape and a fixed
    overall mean — the Figure 7 construction.

    Samples table means from a truncated Pareto, then rescales so the
    across-table average matches ``overall_mean`` exactly (keeping values
    >= a small floor so no table degenerates to zero lookups).
    """
    if num_tables < 1:
        raise ValueError(f"num_tables must be >= 1, got {num_tables}")
    if overall_mean <= 0:
        raise ValueError(f"overall_mean must be positive, got {overall_mean}")
    raw = sample_power_law(rng, num_tables, alpha=alpha, x_min=1.0, x_max=max_length)
    scaled = raw * (overall_mean / raw.mean())
    return np.maximum(scaled, 0.1)
