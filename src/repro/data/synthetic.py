"""Synthetic feature generation for a :class:`~repro.core.config.ModelConfig`.

Generates the input distributions the paper characterizes:

* dense features — standard-normal scalars (computational cost of each dense
  feature is roughly the same, §III-A.1);
* sparse features — per-example feature lengths drawn around each table's
  mean (Poisson), truncated when the table sets a truncation size, with
  Zipf-skewed index popularity so row accesses are irregular.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ModelConfig, TableSpec
from ..core.embedding import RaggedIndices
from ..core.model import Batch
from .click_model import ClickModel

__all__ = ["SyntheticDataGenerator", "sample_zipf_indices", "sample_lengths"]


def sample_lengths(
    rng: np.random.Generator,
    batch_size: int,
    mean_lookups: float,
    truncation: int | None = None,
    min_length: int = 0,
) -> np.ndarray:
    """Per-example feature lengths ~ Poisson(mean), optionally truncated."""
    if batch_size < 0:
        raise ValueError(f"batch_size must be >= 0, got {batch_size}")
    if mean_lookups < 0:
        raise ValueError(f"mean_lookups must be >= 0, got {mean_lookups}")
    lengths = rng.poisson(mean_lookups, size=batch_size)
    if min_length:
        lengths = np.maximum(lengths, min_length)
    if truncation is not None:
        lengths = np.minimum(lengths, truncation)
    return lengths.astype(np.int64)


def sample_zipf_indices(
    rng: np.random.Generator,
    total: int,
    hash_size: int,
    skew: float = 1.05,
) -> np.ndarray:
    """Draw ``total`` row indices in ``[0, hash_size)`` with Zipf-like skew.

    Uses inverse-CDF sampling of a truncated power law over ranks, which is
    O(total) regardless of ``hash_size`` (tables can have 20M rows), then
    maps rank -> row id through a fixed permutation-free mixing so popular
    rows are spread across the table rather than clustered at id 0.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if hash_size < 1:
        raise ValueError(f"hash_size must be >= 1, got {hash_size}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if skew == 0 or hash_size == 1:
        return rng.integers(0, hash_size, size=total, dtype=np.int64)
    u = rng.uniform(0.0, 1.0, size=total)
    if abs(skew - 1.0) < 1e-9:
        ranks = np.exp(u * np.log(hash_size))
    else:
        one_minus = 1.0 - skew
        hi = float(hash_size) ** one_minus
        ranks = (1.0 + u * (hi - 1.0)) ** (1.0 / one_minus)
    ranks = np.minimum(ranks.astype(np.int64), hash_size - 1)
    # Mix ranks into row ids (multiplicative hash) so "hot" rows are not all
    # adjacent — matching real tables where popular ids are arbitrary.
    mixed = (ranks.astype(np.uint64) * np.uint64(2654435761)) % np.uint64(hash_size)
    return mixed.astype(np.int64)


class SyntheticDataGenerator:
    """Produces :class:`Batch` objects for one model configuration.

    When a :class:`ClickModel` teacher is supplied (or ``seed_teacher=True``)
    labels are drawn from it; otherwise labels are unbiased coin flips at
    ``default_ctr`` (enough for throughput work where label signal is moot).
    """

    def __init__(
        self,
        config: ModelConfig,
        rng: np.random.Generator | int | None = None,
        teacher: ClickModel | None = None,
        seed_teacher: bool = False,
        index_skew: float = 1.05,
        default_ctr: float = 0.3,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if not 0 < default_ctr < 1:
            raise ValueError(f"default_ctr must be in (0, 1), got {default_ctr}")
        self.config = config
        self.rng = rng
        if teacher is None and seed_teacher:
            teacher = ClickModel(config, rng=np.random.default_rng(rng.integers(2**31)))
        self.teacher = teacher
        self.index_skew = index_skew
        self.default_ctr = default_ctr

    def dense_batch(self, batch_size: int) -> np.ndarray:
        return self.rng.normal(0.0, 1.0, size=(batch_size, self.config.num_dense))

    def sparse_feature(self, spec: TableSpec, batch_size: int) -> RaggedIndices:
        lengths = sample_lengths(
            self.rng, batch_size, spec.mean_lookups, spec.truncation
        )
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        values = sample_zipf_indices(
            self.rng, int(offsets[-1]), spec.hash_size, self.index_skew
        )
        # sample_zipf_indices maps ranks into [0, hash_size) by construction,
        # so downstream lookups can skip their defensive bounds re-scan.
        return RaggedIndices(values=values, offsets=offsets, safe_bound=spec.hash_size)

    def batch(self, batch_size: int) -> Batch:
        """Generate one complete training batch."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        dense = self.dense_batch(batch_size)
        sparse = {
            spec.name: self.sparse_feature(spec, batch_size)
            for spec in self.config.tables
        }
        if self.teacher is not None:
            labels = self.teacher.sample_labels(dense, sparse, rng=self.rng)
        else:
            labels = (
                self.rng.uniform(size=batch_size) < self.default_ctr
            ).astype(np.float64)
        return Batch(dense=dense, sparse=sparse, labels=labels)

    def batches(self, batch_size: int, num_batches: int | None = None):
        """Yield ``num_batches`` batches (infinite stream when ``None``)."""
        produced = 0
        while num_batches is None or produced < num_batches:
            yield self.batch(batch_size)
            produced += 1

    def batch_stream(
        self, batch_size: int, num_batches: int, skip: int = 0
    ):
        """Lazily yield batches ``skip`` .. ``num_batches - 1`` of a run.

        Consumes the rng *identically* to pre-generating all
        ``num_batches`` batches up front and slicing
        (``[gen.batch(n) for _ in range(num_batches)][skip:]``): the
        skipped prefix is still generated, in order, to burn the exact
        same random draws — each batch's draw count depends on its own
        Poisson lengths, so there is no cheaper rng-faithful skip.  Unlike
        the eager list this holds one batch at a time, which is what lets
        the prefetch pipeline overlap generation with training instead of
        paying for the whole run's data up front.
        """
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        for i in range(num_batches):
            b = self.batch(batch_size)
            if i >= skip:
                yield b
