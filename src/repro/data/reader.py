"""Batch readers: the data-loading side of the training pipeline.

Facebook decouples *reader servers* from trainers so data loading never
stalls training (paper §IV-B.2).  Functionally we model a reader as a
buffered batch source; the timing behaviour of reader servers lives in
:mod:`repro.distributed`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.model import Batch
from .synthetic import SyntheticDataGenerator

__all__ = ["BatchReader", "train_eval_split"]


class BatchReader:
    """Prefetching wrapper over a :class:`SyntheticDataGenerator`.

    ``prefetch_depth`` batches are generated ahead of consumption, mimicking
    the reader-tier buffering that keeps trainers fed.  Purely functional —
    no threads — but exercises the same buffer/refill logic.
    """

    def __init__(
        self,
        generator: SyntheticDataGenerator,
        batch_size: int,
        prefetch_depth: int = 2,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if prefetch_depth < 1:
            raise ValueError(f"prefetch_depth must be >= 1, got {prefetch_depth}")
        self.generator = generator
        self.batch_size = batch_size
        self.prefetch_depth = prefetch_depth
        self._buffer: deque[Batch] = deque()
        self.batches_produced = 0

    def _refill(self) -> None:
        while len(self._buffer) < self.prefetch_depth:
            self._buffer.append(self.generator.batch(self.batch_size))
            self.batches_produced += 1

    def next_batch(self) -> Batch:
        self._refill()
        return self._buffer.popleft()

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def stream(self, num_batches: int | None = None) -> Iterator[Batch]:
        produced = 0
        while num_batches is None or produced < num_batches:
            yield self.next_batch()
            produced += 1


def train_eval_split(
    generator: SyntheticDataGenerator,
    batch_size: int,
    num_eval_batches: int,
) -> tuple[Iterator[Batch], list[Batch]]:
    """An infinite training stream plus a fixed held-out evaluation set.

    The eval set is materialized first (from the same generator, hence the
    same distribution) so every training configuration is scored on
    identical examples — required for the Figure 15 comparison.
    """
    if num_eval_batches < 1:
        raise ValueError(f"num_eval_batches must be >= 1, got {num_eval_batches}")
    eval_batches = [generator.batch(batch_size) for _ in range(num_eval_batches)]
    return generator.batches(batch_size), eval_batches
