"""Synthetic data substrate: feature generators, teacher click model, readers."""

from .click_model import ClickModel
from .dataset import FixedDataset
from .distributions import (
    power_law_mean_lengths,
    sample_discrete_zipf,
    sample_lognormal_with_mean,
    sample_power_law,
    zipf_probabilities,
)
from .preprocessing import (
    DenseFeature,
    PreprocessingPipeline,
    RawEvent,
    RawLogGenerator,
    SparseFeature,
)
from .reader import BatchReader, train_eval_split
from .synthetic import SyntheticDataGenerator, sample_lengths, sample_zipf_indices

__all__ = [
    "ClickModel",
    "FixedDataset",
    "sample_power_law",
    "sample_lognormal_with_mean",
    "zipf_probabilities",
    "sample_discrete_zipf",
    "power_law_mean_lengths",
    "SyntheticDataGenerator",
    "sample_lengths",
    "sample_zipf_indices",
    "BatchReader",
    "train_eval_split",
    "RawEvent",
    "RawLogGenerator",
    "DenseFeature",
    "SparseFeature",
    "PreprocessingPipeline",
]
