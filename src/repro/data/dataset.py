"""Materialized datasets with epoch iteration.

The streaming generator (:mod:`repro.data.synthetic`) models production
one-pass training over effectively-infinite logs; research experiments and
tests often want the complementary regime — a *fixed* dataset iterated in
shuffled epochs, where multi-epoch overfitting becomes observable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.embedding import RaggedIndices
from ..core.model import Batch
from .synthetic import SyntheticDataGenerator

__all__ = ["FixedDataset"]


class FixedDataset:
    """A materialized set of examples supporting shuffled epoch iteration.

    Stored in struct-of-arrays form: one dense matrix, one label vector,
    and one :class:`RaggedIndices` per sparse feature over all examples.
    """

    def __init__(
        self,
        dense: np.ndarray,
        sparse: dict[str, RaggedIndices],
        labels: np.ndarray,
    ) -> None:
        self.dense = np.asarray(dense, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        self.sparse = sparse
        if self.dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got {self.dense.shape}")
        if len(self.labels) != self.dense.shape[0]:
            raise ValueError("labels/dense length mismatch")
        for name, ragged in sparse.items():
            if ragged.batch_size != len(self):
                raise ValueError(
                    f"sparse feature {name!r} covers {ragged.batch_size} "
                    f"examples, dataset has {len(self)}"
                )

    def __len__(self) -> int:
        return self.dense.shape[0]

    @classmethod
    def generate(
        cls, generator: SyntheticDataGenerator, num_examples: int
    ) -> "FixedDataset":
        """Materialize ``num_examples`` from a synthetic generator."""
        if num_examples < 1:
            raise ValueError("num_examples must be >= 1")
        batch = generator.batch(num_examples)
        return cls(dense=batch.dense, sparse=batch.sparse, labels=batch.labels)

    def _subset_ragged(self, ragged: RaggedIndices, idx: np.ndarray) -> RaggedIndices:
        lengths = ragged.lengths()[idx]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        pieces = [ragged.sample(int(i)) for i in idx]
        values = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return RaggedIndices(values=values, offsets=offsets)

    def subset(self, idx: np.ndarray) -> Batch:
        """Materialize the examples at ``idx`` as a training batch."""
        idx = np.asarray(idx, dtype=np.int64)
        if len(idx) == 0:
            raise ValueError("empty subset")
        if idx.min() < 0 or idx.max() >= len(self):
            raise IndexError("subset indices out of range")
        return Batch(
            dense=self.dense[idx],
            sparse={
                name: self._subset_ragged(r, idx) for name, r in self.sparse.items()
            },
            labels=self.labels[idx],
        )

    def split(self, eval_fraction: float, seed: int = 0) -> tuple["FixedDataset", "FixedDataset"]:
        """Random train/eval split."""
        if not 0 < eval_fraction < 1:
            raise ValueError("eval_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(self))
        n_eval = max(1, int(round(eval_fraction * len(self))))
        eval_idx, train_idx = perm[:n_eval], perm[n_eval:]
        if len(train_idx) == 0:
            raise ValueError("eval_fraction leaves no training examples")

        def build(idx: np.ndarray) -> "FixedDataset":
            batch = self.subset(idx)
            return FixedDataset(batch.dense, batch.sparse, batch.labels)

        return build(train_idx), build(eval_idx)

    def epochs(
        self,
        batch_size: int,
        num_epochs: int | None = None,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> Iterator[Batch]:
        """Yield mini-batches over (optionally shuffled) epochs.

        ``num_epochs=None`` iterates forever (each epoch reshuffled).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        rng = np.random.default_rng(seed)
        epoch = 0
        while num_epochs is None or epoch < num_epochs:
            order = rng.permutation(len(self)) if shuffle else np.arange(len(self))
            for start in range(0, len(self), batch_size):
                idx = order[start : start + batch_size]
                if drop_last and len(idx) < batch_size:
                    break
                yield self.subset(idx)
            epoch += 1
