"""Command-line interface.

``python -m repro <subcommand>`` exposes the library's main workflows:

* ``describe`` — Table II-style description of a model config;
* ``throughput`` — evaluate one (platform, placement, batch) setup;
* ``optimize`` — rank all feasible setups for a model (the §I selection
  problem);
* ``figures`` — regenerate paper figures/tables to stdout (``--workers`` /
  ``--cache-dir`` route the sweeps through ``repro.runtime``);
* ``cache`` — inspect or clear the on-disk sweep result cache;
* ``fleet`` — fleet characterization report;
* ``train`` — quick functional training run on synthetic data;
* ``trace`` — run an experiment with span tracing on and write a Chrome
  ``chrome://tracing`` / Perfetto JSON trace (see ``repro.obs``);
* ``faults`` — fault-injection scenarios against the cluster simulation
  (goodput, availability, retry/recovery telemetry; see
  ``repro.resilience`` and ``docs/resilience.md``);
* ``serve`` — online inference serving experiments (throughput-latency
  curves, SLO-constrained capacity planning, hot-row cache
  cross-validation, checkpoint-refresh staleness; see ``repro.serving``
  and ``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import render_table
from .configs import PRODUCTION_MODELS, make_test_model
from .core.config import ModelConfig

__all__ = ["main", "build_parser", "resolve_model"]


def resolve_model(spec: str) -> ModelConfig:
    """Parse a model spec: a production name (``M1_prod``) or
    ``test:<dense>x<sparse>[:hash]`` (e.g. ``test:512x32:1000000``)."""
    if spec in PRODUCTION_MODELS:
        return PRODUCTION_MODELS[spec]()
    if spec.startswith("test:"):
        body = spec[len("test:"):]
        parts = body.split(":")
        try:
            dense_s, sparse_s = parts[0].split("x")
            num_dense, num_sparse = int(dense_s), int(sparse_s)
            hash_size = int(parts[1]) if len(parts) > 1 else 100_000
        except (ValueError, IndexError) as err:
            raise ValueError(
                f"bad test model spec {spec!r}; expected test:<dense>x<sparse>[:hash]"
            ) from err
        return make_test_model(num_dense, num_sparse, hash_size=hash_size)
    raise ValueError(
        f"unknown model {spec!r}; use one of {sorted(PRODUCTION_MODELS)} "
        "or test:<dense>x<sparse>[:hash]"
    )


def _cmd_describe(args: argparse.Namespace) -> int:
    model = resolve_model(args.model)
    desc = model.describe()
    rows = [[k, v if not isinstance(v, float) else f"{v:.2f}"] for k, v in desc.items()]
    rows.append(["total parameters", f"{model.total_parameters:,}"])
    rows.append(["dense param MB", f"{model.dense_parameter_bytes / 1e6:.1f}"])
    print(render_table(["property", "value"], rows, title=f"Model: {model.name}"))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from .hardware import DUAL_SOCKET_CPU, PLATFORMS
    from .perf import cpu_cluster_throughput, gpu_server_throughput
    from .placement import PlacementStrategy, plan_placement

    model = resolve_model(args.model)
    if args.platform == "cpu":
        report = cpu_cluster_throughput(
            model,
            args.batch,
            num_trainers=args.trainers,
            num_sparse_ps=args.sparse_ps,
            num_dense_ps=args.dense_ps,
        )
    else:
        platform = PLATFORMS[args.platform]
        strategy = PlacementStrategy(args.placement)
        plan = plan_placement(
            model,
            platform,
            strategy,
            num_ps=args.sparse_ps,
            ps_platform=DUAL_SOCKET_CPU,
        )
        report = gpu_server_throughput(model, args.batch, platform, plan)
    print(report.describe())
    rows = [[k, f"{v * 1e3:.3f} ms"] for k, v in report.breakdown.components.items()]
    print(render_table(["component", "time"], rows, title="Iteration breakdown"))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from .perf import Objective, optimize_setup

    model = resolve_model(args.model)
    objective = Objective(args.objective)
    result = optimize_setup(
        model, objective=objective, min_throughput=args.min_throughput
    )
    rows = [
        [c.label, f"{c.throughput:,.0f}", f"{c.perf_per_watt:.2f}"]
        for c in result.ranked()[: args.top]
    ]
    print(
        render_table(
            ["setup", "ex/s", "ex/s/W"],
            rows,
            title=f"Best setups for {model.name} by {objective.value}",
        )
    )
    return 0


_FIGURES = {
    "table1": "table1_platforms",
    "table2": "table2_models",
    "table3": "table3_comparison",
    "fig1": "fig01_production",
    "fig2": "fig02_workloads",
    "fig5": "fig05_utilization",
    "fig6": "fig06_07_embedding_stats",
    "fig7": "fig06_07_embedding_stats",
    "fig9": "fig09_servers",
    "fig10": "fig10_feature_sweep",
    "fig11": "fig11_batch_scaling",
    "fig12": "fig12_hash_scaling",
    "fig13": "fig13_mlp_dims",
    "fig14": "fig14_placement",
    "fig15": "fig15_accuracy",
}


def _make_runner(args: argparse.Namespace):
    """Build a SweepRunner from ``--workers/--cache-dir/--no-cache`` flags.

    Returns ``None`` (pure serial path, no cache files touched) unless the
    user opted into parallelism or caching.
    """
    want = args.workers != 1 or args.cache_dir is not None
    if not want:
        return None
    from .runtime import ResultCache, SweepRunner, default_workers

    workers = args.workers if args.workers > 0 else default_workers()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepRunner(workers=workers, cache=cache)


def _cmd_figures(args: argparse.Namespace) -> int:
    import importlib
    import inspect

    names = args.only if args.only else [
        "table1", "table2", "table3", "fig1", "fig2", "fig6", "fig9",
        "fig10", "fig11", "fig12", "fig13", "fig14",
    ]
    runner = _make_runner(args)
    seen = set()
    for name in names:
        if name not in _FIGURES:
            print(f"unknown figure {name!r}; choices: {sorted(_FIGURES)}", file=sys.stderr)
            return 2
        module_name = _FIGURES[name]
        if module_name in seen:
            continue
        seen.add(module_name)
        module = importlib.import_module(f"repro.experiments.{module_name}")
        kwargs = {}
        if runner is not None and "runner" in inspect.signature(module.run).parameters:
            kwargs["runner"] = runner
        print(module.render(module.run(**kwargs)))
        print()
    if runner is not None and runner.cache is not None:
        stats = runner.cache.stats()
        print(
            f"[runtime] workers={runner.workers} cache: "
            f"{stats['hits']:.0f} hits / {stats['misses']:.0f} misses / "
            f"{stats['stores']:.0f} stores ({runner.cache.root})",
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entries from {cache.root}")
        return 0
    entries = cache.entries()
    by_ns: dict[str, int] = {}
    for path in entries:
        ns = path.relative_to(cache.root).parts[0]
        by_ns[ns] = by_ns.get(ns, 0) + 1
    rows = [[ns, n] for ns, n in sorted(by_ns.items())]
    rows.append(["total", len(entries)])
    print(
        render_table(
            ["namespace", "entries"],
            rows,
            title=f"Result cache at {cache.root} ({cache.size_bytes():,} bytes)",
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(include_training=args.with_training)
    if args.output == "-":
        print(text)
    else:
        import pathlib

        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(text)} chars)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .experiments import fig02_workloads, fig09_servers

    print(fig02_workloads.render(fig02_workloads.run(seed=args.seed, num_days=args.days)))
    print()
    print(fig09_servers.render(fig09_servers.run(num_runs=args.runs, seed=args.seed)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import Adagrad, DLRM, Trainer, evaluate
    from .data import SyntheticDataGenerator, train_eval_split

    model_cfg = resolve_model(args.model)
    if model_cfg.embedding_parameters > 500_000_000:
        print(
            "refusing to functionally train a production-size model in a CLI "
            "demo; use a test:<dense>x<sparse> spec",
            file=sys.stderr,
        )
        return 2
    gen = SyntheticDataGenerator(model_cfg, rng=args.seed, seed_teacher=True)
    stream, eval_batches = train_eval_split(gen, batch_size=args.batch, num_eval_batches=2)
    model = DLRM(model_cfg, rng=args.seed + 1)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=args.lr),
    )
    result = trainer.train(stream, max_examples=args.examples)
    metrics = evaluate(model, eval_batches)
    print(
        f"{result.steps} steps, {result.examples_seen:,} examples | "
        f"final loss {result.smoothed_final_loss:.4f} | "
        f"NE {metrics['normalized_entropy']:.4f}"
        + (f" | AUC {metrics['auc']:.4f}" if "auc" in metrics else "")
    )
    return 0


#: ``repro faults <scenario>`` choices: name -> what gets injected.
FAULT_SCENARIOS = ("ps-crash", "trainer-crash", "mtbf", "drops", "degraded",
                   "interval-sweep")


def _fault_plan_for(scenario: str, horizon_s: float, mtbf_s: float, seed: int):
    """Build the FaultPlan for one named scenario."""
    from .resilience import (
        ComponentKind,
        DegradationWindow,
        FaultEvent,
        FaultPlan,
    )

    if scenario == "ps-crash":
        return FaultPlan(
            scheduled_crashes=(
                FaultEvent(ComponentKind.SPARSE_PS, 1, 0.5 * horizon_s),
            ),
            seed=seed,
        )
    if scenario == "trainer-crash":
        return FaultPlan(
            scheduled_crashes=(
                FaultEvent(ComponentKind.TRAINER, 0, 0.5 * horizon_s),
            ),
            seed=seed,
        )
    if scenario == "mtbf":
        return FaultPlan(sparse_ps_mtbf_s=mtbf_s, trainer_mtbf_s=4 * mtbf_s, seed=seed)
    if scenario == "drops":
        return FaultPlan(drop_probability=0.02, seed=seed)
    if scenario == "degraded":
        return FaultPlan(
            degradations=(
                DegradationWindow(
                    ComponentKind.SPARSE_PS, 0,
                    start_s=0.25 * horizon_s,
                    duration_s=0.5 * horizon_s,
                    slowdown=4.0,
                ),
            ),
            seed=seed,
        )
    raise ValueError(f"unknown fault scenario {scenario!r}")


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .distributed import ClusterConfig, SyncMode, simulate_cpu_cluster

    if args.scenario == "interval-sweep":
        from .experiments import ext_fault_tolerance

        result = ext_fault_tolerance.run(
            horizon_s=args.horizon, mtbf_s=args.mtbf, seed=args.seed
        )
        if args.json:
            payload = {
                "scenario": "interval-sweep",
                "young_daly_s": result.young_daly_s,
                "best_interval_s": result.best_interval_s(),
                "failure_free_goodput": result.failure_free_goodput,
                "intervals": [
                    {"interval_s": p.interval_s, "goodput": p.goodput,
                     "goodput_fraction": p.goodput_fraction,
                     "analytic_fraction": p.analytic_fraction}
                    for p in result.interval_points
                ],
                "modes": {
                    o.sync_mode: {"goodput": o.goodput,
                                  "availability": o.availability,
                                  "lost_examples": o.lost_examples}
                    for o in result.mode_outcomes
                },
            }
            print(json.dumps(payload, indent=2))
        else:
            print(ext_fault_tolerance.render(result))
        return 0

    model = resolve_model(args.model)
    plan = _fault_plan_for(args.scenario, args.horizon, args.mtbf, args.seed)
    modes = [args.mode] if args.mode != "both" else list(SyncMode.ALL)
    payload = {
        "scenario": args.scenario,
        "model": model.name,
        "horizon_s": args.horizon,
        "checkpoint_interval_s": args.checkpoint_interval,
        "results": {},
    }
    for mode in modes:
        cfg = ClusterConfig(
            num_trainers=args.trainers,
            num_sparse_ps=args.sparse_ps,
            num_dense_ps=args.dense_ps,
            sync_mode=mode,
            fault_plan=plan,
            checkpoint_interval_s=args.checkpoint_interval,
            seed=args.seed,
        )
        result = simulate_cpu_cluster(model, cfg, horizon_s=args.horizon)
        summary = result.resilience_summary()
        summary["fault_events"] = [
            {"kind": e.kind, "index": e.index, "time_s": e.time_s}
            for e in result.fault_events
        ]
        payload["results"][mode] = summary
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    for mode in modes:
        s = payload["results"][mode]
        rows = [[k, f"{v:,.1f}" if isinstance(v, float) else str(v)]
                for k, v in s.items() if k != "fault_events"]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"Scenario {args.scenario!r}, sync_mode={mode} "
                      f"({len(s['fault_events'])} fault event(s))",
            )
        )
        print()
    return 0


#: ``repro serve <action>`` choices.
SERVE_ACTIONS = ("curve", "slo", "cache", "staleness")


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .experiments import ext_serving
    from .serving import SLO

    model = resolve_model(args.model) if args.model else None
    if args.action == "curve":
        result = ext_serving.run_curve(
            model=model,
            num_replicas=args.replicas,
            platform=args.platform,
            cache_rows=args.cache_rows,
            policy=args.policy,
            requests_per_point=args.requests,
            slo=SLO(p99_ms=args.slo_p99 if args.slo_p99 else 25.0),
            seed=args.seed,
        )
        rendered = ext_serving.render_curve(result)
    elif args.action == "slo":
        result = ext_serving.run_slo(
            model=model,
            platform=args.platform,
            cache_rows=args.cache_rows,
            policy=args.policy,
            slo=SLO(p99_ms=args.slo_p99 if args.slo_p99 else 5.0),
            requests_per_point=args.requests,
            seed=args.seed,
        )
        rendered = ext_serving.render_slo(result)
    elif args.action == "cache":
        result = ext_serving.run_cache(
            model=model,
            platform=args.platform,
            num_requests=args.requests,
            seed=args.seed,
        )
        rendered = ext_serving.render_cache(result)
    else:  # staleness
        result = ext_serving.run_staleness(
            model=model, num_replicas=args.replicas, seed=args.seed
        )
        rendered = ext_serving.render_staleness(result)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(rendered)
    return 0


#: ``repro trace <experiment>`` targets: name -> tracing driver.
TRACE_EXPERIMENTS = (
    "fig11", "fig14", "table3", "cpu_sim", "gpu_sim", "train", "pipeline"
)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Tracer

    tracer = Tracer()
    name = args.experiment
    if name == "fig14":
        from .experiments import fig14_placement

        fig14_placement.run(tracer=tracer)
    elif name == "fig11":
        from .experiments import fig11_batch_scaling

        fig11_batch_scaling.run(tracer=tracer)
    elif name == "table3":
        from .experiments import table3_comparison

        table3_comparison.run(tracer=tracer)
    elif name == "cpu_sim":
        from .distributed import ClusterConfig, simulate_cpu_cluster

        model = resolve_model(args.model if args.model else "test:512x32")
        cfg = ClusterConfig(
            num_trainers=4, num_sparse_ps=4, num_dense_ps=1, seed=args.seed
        )
        simulate_cpu_cluster(model, cfg, horizon_s=0.25, tracer=tracer)
    elif name == "gpu_sim":
        from .distributed import simulate_gpu_server
        from .hardware import BIG_BASIN
        from .placement import PlacementStrategy, plan_placement

        model = resolve_model(args.model if args.model else "test:512x32")
        plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        simulate_gpu_server(
            model, 1600, BIG_BASIN, plan, num_iterations=20,
            gpu_jitter_sigma=0.05, seed=args.seed, tracer=tracer,
        )
    elif name == "train":
        from .core import Adagrad, DLRM, Trainer
        from .data import SyntheticDataGenerator

        model_cfg = resolve_model(args.model if args.model else "test:32x8")
        gen = SyntheticDataGenerator(model_cfg, rng=args.seed, seed_teacher=True)
        model = DLRM(model_cfg, rng=args.seed + 1)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
            tracer=tracer,
        )
        trainer.train(iter(lambda: gen.batch(256), None), max_steps=25)
    elif name == "pipeline":
        from .core import Adagrad, DLRM, Trainer

        from .data import SyntheticDataGenerator

        model_cfg = resolve_model(args.model if args.model else "test:32x8")
        gen = SyntheticDataGenerator(model_cfg, rng=args.seed, seed_teacher=True)
        model = DLRM(model_cfg, rng=args.seed + 1)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
            tracer=tracer,
            pipeline=True,
        )
        trainer.train(iter(lambda: gen.batch(256), None), max_steps=25)
        stats = trainer.pipeline_stats
        print(
            f"pipeline ledger: prep busy {stats.prep_busy_s * 1e3:.2f} ms, "
            f"prep stall {stats.prep_stall_s * 1e3:.2f} ms, "
            f"compute stall {stats.compute_stall_s * 1e3:.2f} ms, "
            f"overlap {stats.overlap_fraction:.1%}"
        )
        print("prep-thread spans are on Chrome-trace lane tid=1; "
              "trainer spans on tid=0")
    else:  # pragma: no cover - argparse choices guard this
        print(f"unknown trace experiment {name!r}", file=sys.stderr)
        return 2
    n = tracer.export_chrome(args.out)
    totals = ", ".join(
        f"{cat} {secs * 1e3:.2f} ms" for cat, secs in tracer.total_by_category().items()
    )
    print(f"wrote {args.out}: {n} spans ({totals})")
    print("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    return 0


#: ``repro mp <action>`` choices.
MP_ACTIONS = ("train", "scaling", "faults")


def _cmd_mp(args: argparse.Namespace) -> int:
    import json

    from .distributed.mp import HybridRunConfig, run_hybrid, run_hybrid_serial
    from .experiments import ext_mp_scaling

    if args.action == "faults":
        from .experiments import ext_mp_faults

        result = ext_mp_faults.run(
            workers=args.workers_n,
            steps=args.steps,
            batch_size=args.batch,
            checkpoint_every=args.checkpoint_every or 2,
            kill_rank=args.kill_rank,
            kill_step=args.kill_step,
            kill_phase=args.kill_phase,
            restarts=args.restarts,
            seed=args.seed,
            dtype=args.dtype,
            checkpoint_dir=args.checkpoint_dir,
        )
        if args.json:
            print(json.dumps(vars(result) | {
                "bitwise_identical": result.bitwise_identical,
            }, indent=2))
        else:
            print(ext_mp_faults.render(result))
        if not result.bitwise_identical:
            print("error: restarted run diverged from the uninterrupted "
                  "reference", file=sys.stderr)
            return 1
        return 0

    if args.action == "scaling":
        worker_counts = tuple(int(w) for w in args.workers.split(","))
        result = ext_mp_scaling.run(
            worker_counts=worker_counts,
            batch_size=args.batch,
            steps=args.steps,
            seed=args.seed,
            reps=args.reps,
            reduction=args.reduction,
        )
        if args.json:
            print(json.dumps({
                "serial_step_s": result.serial_step_s,
                "cores": result.cores,
                "reduction": result.reduction,
                "points": [vars(p) for p in result.points],
            }, indent=2))
        else:
            print(ext_mp_scaling.render(result))
        return 0

    config = (
        ext_mp_scaling.default_config()
        if args.model is None
        else resolve_model(args.model)
    )
    if config.embedding_parameters > 50_000_000:
        print("model too large for a CLI mp demo; use a test:<...> spec",
              file=sys.stderr)
        return 2
    import contextlib
    import tempfile

    ft = None
    with contextlib.ExitStack() as stack:
        ckpt_dir = args.checkpoint_dir
        if args.checkpoint_every and ckpt_dir is None:
            ckpt_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-mp-ckpt-")
            )
        run_cfg = HybridRunConfig(
            workers=args.workers_n,
            steps=args.steps,
            batch_size=args.batch,
            lr=args.lr,
            seed=args.seed,
            reduction=args.reduction,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=ckpt_dir,
            pipeline=args.pipeline,
        )
        if args.checkpoint_every:
            from .distributed.mp import RestartPolicy, run_hybrid_ft

            ft = run_hybrid_ft(
                config, run_cfg,
                policy=RestartPolicy(max_restarts=args.restarts),
            )
            result = ft.result
        else:
            result = run_hybrid(config, run_cfg)
    verified = None
    if args.verify:
        ref = run_hybrid_serial(config, run_cfg)
        bitwise = (
            result.losses == ref.losses
            and result.state_digest() == ref.state_digest()
        )
        if not bitwise and args.reduction == "ordered":
            print("error: ordered-mode run diverged from the serial reference",
                  file=sys.stderr)
            return 1
        verified = bitwise
    if args.json:
        print(json.dumps({
            "workers": result.workers,
            "steps": result.steps,
            "batch_size": result.batch_size,
            "reduction": result.reduction,
            "losses": result.losses,
            "step_time_s": result.step_time_s,
            "mean_step_s": result.mean_step_s,
            "comm_s": result.comm_s,
            "phase_s": result.phase_s,
            "state_digest": result.state_digest(),
            "owner_bytes": result.plan.owner_bytes(config) if result.plan else [],
            "verified_bitwise": verified,
            "checkpoints": result.checkpoints,
            "restarts_used": ft.restarts_used if ft is not None else 0,
            "pipeline": result.pipeline,
        }, indent=2))
        return 0
    losses = ", ".join(f"{v:.4f}" for v in result.losses[:8])
    print(
        f"{result.workers} workers x {result.steps} steps @ global batch "
        f"{result.batch_size} ({result.reduction} allreduce)"
    )
    print(f"losses: {losses}{' ...' if len(result.losses) > 8 else ''}")
    print(
        f"step {result.step_time_s * 1e3:.2f} ms (best) / "
        f"{result.mean_step_s * 1e3:.2f} ms (mean) | "
        f"allreduce {result.comm_s * 1e3:.2f} ms total"
    )
    if result.plan is not None:
        mb = [f"{b / 1e6:.1f}MB" for b in result.plan.owner_bytes(config)]
        print(f"shard balance: {' / '.join(mb)}")
    if result.pipeline is not None:
        pl = result.pipeline
        print(
            f"pipeline: prep busy {pl['prep_busy_s'] * 1e3:.2f} ms, "
            f"prep stall {pl['prep_stall_s'] * 1e3:.2f} ms, "
            f"compute stall {pl['compute_stall_s'] * 1e3:.2f} ms, "
            f"overlap {pl['overlap_fraction']:.1%}"
        )
    if result.checkpoints:
        steps = ", ".join(str(s) for s, _ in result.checkpoints)
        print(f"checkpoints committed at steps: {steps}"
              + (f" (restarts used: {ft.restarts_used})" if ft else ""))
    if verified is not None:
        print(f"verified vs serial reference: "
              f"{'bit-identical' if verified else 'tolerance (ring mode)'}")
    return 0


TIER_ACTIONS = ("train", "sweep")


def _cmd_tier(args: argparse.Namespace) -> int:
    import json

    from .experiments import ext_tiering

    if args.action == "train":
        # Bit-identity gate: the tiered store must reproduce the flat
        # table exactly at every precision and hot fraction.
        results = [
            ext_tiering.run_train(
                hot_fraction=args.hot_fraction,
                policy=args.policy,
                steps=args.steps,
                batch=args.batch,
                seed=args.seed,
                dtype=dtype,
                chunk_rows=args.chunk_rows,
            )
            for dtype in ("float64", "float32")
        ]
        if args.json:
            print(json.dumps([
                {
                    "dtype": r.dtype,
                    "hot_fraction": r.hot_fraction,
                    "policy": r.policy,
                    "steps": r.steps,
                    "losses_identical": r.losses_identical,
                    "digests_identical": r.digests_identical,
                    "bit_identical": r.bit_identical,
                    "state_digest": r.digest_tiered,
                    "tier_stats": r.tier_stats,
                    "metric_hits": r.metric_hits,
                    "metric_misses": r.metric_misses,
                }
                for r in results
            ], indent=2))
        else:
            print(ext_tiering.render_train(results))
        if not all(r.bit_identical for r in results):
            print("error: tiered training diverged from the flat table",
                  file=sys.stderr)
            return 1
        return 0

    # sweep: measured simulated overhead vs the analytic tier-miss model.
    points = ext_tiering.run_sweep(
        hot_fractions=tuple(float(f) for f in args.hot_fractions.split(",")),
        skews=tuple(float(s) for s in args.skews.split(",")),
        policies=tuple(args.policies.split(",")),
        num_rows=args.rows,
        chunk_rows=args.chunk_rows,
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps({
            "max_rel_err": args.max_rel_err,
            "points": [vars(p) | {"rel_err": p.rel_err} for p in points],
        }, indent=2))
    else:
        print(ext_tiering.render_sweep(points))
    worst = max(points, key=lambda p: p.rel_err)
    if worst.rel_err > args.max_rel_err:
        print(
            f"error: measured overhead diverges from the analytic model by "
            f"{worst.rel_err:.1%} (> {args.max_rel_err:.0%}) at "
            f"hot={worst.hot_fraction} skew={worst.skew} policy={worst.policy}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DLRM training-efficiency reproduction (HPCA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="describe a model configuration")
    p.add_argument("--model", default="M1_prod")
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("throughput", help="evaluate one training setup")
    p.add_argument("--model", default="M1_prod")
    p.add_argument("--platform", default="BigBasin",
                   choices=["cpu", "BigBasin", "BigBasin-16GB", "Zion"])
    p.add_argument("--placement", default="gpu_memory",
                   choices=["gpu_memory", "system_memory", "remote_cpu", "hybrid"])
    p.add_argument("--batch", type=int, default=1600)
    p.add_argument("--trainers", type=int, default=8)
    p.add_argument("--sparse-ps", type=int, default=8)
    p.add_argument("--dense-ps", type=int, default=2)
    p.set_defaults(func=_cmd_throughput)

    p = sub.add_parser("optimize", help="rank all feasible setups for a model")
    p.add_argument("--model", default="M1_prod")
    p.add_argument("--objective", default="throughput",
                   choices=["throughput", "perf_per_watt"])
    p.add_argument("--min-throughput", type=float, default=0.0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("figures", help="regenerate paper figures/tables")
    p.add_argument("--only", nargs="*", metavar="FIG",
                   help=f"subset of {sorted(_FIGURES)}")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel sweep workers (0 = one per core; default 1 = serial)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="memoize grid points under DIR (default $REPRO_CACHE_DIR"
                        " or .repro-cache when --workers enables the runner)")
    p.add_argument("--no-cache", action="store_true",
                   help="run the parallel sweeps without the on-disk result cache")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("cache", help="inspect or clear the on-disk result cache")
    p.add_argument("action", choices=["info", "clear"])
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("report", help="write the consolidated reproduction report")
    p.add_argument("--output", default="-", help="path or '-' for stdout")
    p.add_argument("--with-training", action="store_true",
                   help="include the (slow) Figure 15 real-training experiment")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("fleet", help="fleet characterization report")
    p.add_argument("--days", type=int, default=7)
    p.add_argument("--runs", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "trace", help="run an experiment with tracing and write a Chrome trace"
    )
    p.add_argument("experiment", choices=TRACE_EXPERIMENTS)
    p.add_argument("--out", default="trace.json", help="output Chrome-trace path")
    p.add_argument("--model", default=None,
                   help="model spec for cpu_sim/gpu_sim/train targets")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "faults", help="fault-injection scenarios on the cluster simulation"
    )
    p.add_argument("scenario", choices=FAULT_SCENARIOS)
    p.add_argument("--model", default="test:128x8",
                   help="model spec; checkpoint bytes (and so recovery cost)"
                        " scale with the embedding tables")
    p.add_argument("--mode", default="both", choices=["sync", "async", "both"],
                   help="synchronization discipline(s) to simulate")
    p.add_argument("--horizon", type=float, default=1.0,
                   help="simulated seconds (default 1.0)")
    p.add_argument("--checkpoint-interval", type=float, default=0.25,
                   help="seconds between checkpoints (default 0.25; must"
                        " exceed the checkpoint write cost to make progress)")
    p.add_argument("--mtbf", type=float, default=1.0,
                   help="per-sparse-PS MTBF seconds for the mtbf/interval-sweep"
                        " scenarios (default 1.0)")
    p.add_argument("--trainers", type=int, default=8)
    p.add_argument("--sparse-ps", type=int, default=4)
    p.add_argument("--dense-ps", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("serve", help="online inference serving experiments")
    p.add_argument("action", choices=SERVE_ACTIONS)
    p.add_argument("--model", default=None,
                   help="model spec (default: the serving test model)")
    p.add_argument("--platform", default="cpu",
                   choices=["cpu", "BigBasin", "BigBasin-16GB", "Zion"])
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--policy", default="lru", choices=["lru", "lfu"],
                   help="hot-row cache eviction policy (curve/slo)")
    p.add_argument("--cache-rows", type=int, default=4096,
                   help="cached rows per embedding table (curve/slo)")
    p.add_argument("--requests", type=int, default=2000,
                   help="requests per measured point")
    p.add_argument("--slo-p99", type=float, default=None,
                   help="p99 bound in ms (default 25 for curve, 5 for slo)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "mp", help="multi-process hybrid-parallel training (shared-memory shards)"
    )
    p.add_argument("action", choices=MP_ACTIONS)
    p.add_argument("--model", default=None,
                   help="model spec (default: the mp scaling test model)")
    p.add_argument("--workers-n", type=int, default=2, metavar="N",
                   dest="workers_n", help="worker processes for 'train' (default 2)")
    p.add_argument("--workers", default="1,2,4",
                   help="comma-separated worker counts for 'scaling' (default 1,2,4)")
    p.add_argument("--steps", type=int, default=4)
    p.add_argument("--batch", type=int, default=256,
                   help="global batch size (split across workers)")
    p.add_argument("--lr", type=float, default=0.01)
    p.add_argument("--reps", type=int, default=2,
                   help="measurement repetitions for 'scaling'")
    p.add_argument("--reduction", default="ordered", choices=["ordered", "ring"],
                   help="dense allreduce order: 'ordered' is bit-deterministic, "
                        "'ring' is bandwidth-optimal")
    p.add_argument("--verify", action="store_true",
                   help="train: also run the serial reference and compare")
    p.add_argument("--pipeline", action="store_true",
                   help="train: prefetched data path — batch prep on a "
                        "background thread, next step's id-plan exchange "
                        "overlapped with compute (bit-identical result)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   dest="checkpoint_every",
                   help="write a sharded checkpoint every N global steps "
                        "(train/faults; enables elastic restart)")
    p.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                   help="where checkpoints live (default: a temp dir)")
    p.add_argument("--restarts", type=int, default=1,
                   help="worker-set respawns permitted after a crash "
                        "(default 1)")
    p.add_argument("--kill-rank", type=int, default=1, dest="kill_rank",
                   help="faults: rank to SIGKILL (default 1)")
    p.add_argument("--kill-step", type=int, default=5, dest="kill_step",
                   help="faults: global step to kill at (default 5)")
    p.add_argument("--kill-phase", default="loss", dest="kill_phase",
                   choices=["loss", "allreduce", "checkpoint"],
                   help="faults: where inside the step the kill lands")
    p.add_argument("--dtype", default="float64",
                   choices=["float64", "float32"],
                   help="faults: compute dtype for the bit-identity gate")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_mp)

    p = sub.add_parser(
        "tier", help="software-managed tiered embedding store (hot DRAM / cold SCM)"
    )
    p.add_argument("action", choices=TIER_ACTIONS)
    p.add_argument("--hot-fraction", type=float, default=0.05, dest="hot_fraction",
                   help="train: hot-tier capacity as a fraction of rows")
    p.add_argument("--policy", default="freq", choices=["lru", "lfu", "freq"],
                   help="train: hot-tier admission/eviction policy")
    p.add_argument("--steps", type=int, default=8, help="train: optimizer steps")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--chunk-rows", type=int, default=4, dest="chunk_rows",
                   help="rows per migration chunk")
    p.add_argument("--hot-fractions", default="0.02,0.05,0.1",
                   dest="hot_fractions",
                   help="sweep: comma-separated hot-tier fractions")
    p.add_argument("--skews", default="0.9,1.05",
                   help="sweep: comma-separated Zipf exponents")
    p.add_argument("--policies", default="lru,freq",
                   help="sweep: comma-separated policies")
    p.add_argument("--rows", type=int, default=4096,
                   help="sweep: table rows")
    p.add_argument("--warmup", type=int, default=20_000,
                   help="sweep: cache warm-up accesses (excluded)")
    p.add_argument("--measure", type=int, default=40_000,
                   help="sweep: measured accesses per point")
    p.add_argument("--max-rel-err", type=float, default=0.25, dest="max_rel_err",
                   help="sweep: per-point measured-vs-analytic gate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_tier)

    p = sub.add_parser("train", help="functional training run on synthetic data")
    p.add_argument("--model", default="test:32x8")
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--examples", type=int, default=20_000)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_train)

    return parser


def main(argv: list[str] | None = None) -> int:
    from .hardware import CapacityError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CapacityError as err:
        print(f"error: does not fit — {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
