"""Content-addressed on-disk result cache for experiment grid points.

Every headline figure is produced by re-running deterministic functions of
a (config, seed) tuple; repeated ``python -m repro`` invocations and the
benchmark suite were recomputing identical points from scratch.  The cache
memoizes them on disk:

* **Key scheme** — ``sha256(canonical_json({namespace, code, params}))``
  where *namespace* identifies the point function, *code* is a hash of the
  function's source text (see :func:`code_token`) and *params* is the
  canonicalized keyword dict of the call.  Dataclasses (e.g.
  :class:`~repro.core.config.ModelConfig`), enums, numpy scalars/arrays
  and nested containers all canonicalize deterministically, so any change
  to the model config, the seeds, **or the point function's code** yields
  a different key — stale results can never be served.
* **Storage** — one JSON file per result under
  ``<root>/<namespace>/<key[:2]>/<key>.json`` (content-addressed layout;
  two-level fan-out keeps directories small).  Writes are atomic
  (tmp file + ``os.replace``) so concurrent workers never observe torn
  entries.  JSON round-trips Python floats exactly (``repr``-based), so a
  cache hit is bit-identical to the original computation.
* **Observability** — hits/misses/stores are counted in a
  :class:`~repro.obs.registry.MetricsRegistry` (labels: namespace).

The cache root defaults to ``$REPRO_CACHE_DIR`` or ``.repro-cache/`` under
the current directory.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import json
import os
import pathlib
import tempfile
import textwrap
from typing import Any

import numpy as np

from ..obs.registry import MetricsRegistry

__all__ = ["MISS", "ResultCache", "canonical", "canonical_json", "code_token", "fingerprint"]

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


class _Miss:
    """Sentinel distinguishing 'no cached value' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache MISS>"


MISS = _Miss()


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form.

    Handles dataclasses (by field), enums (by value), numpy scalars and
    arrays (arrays by dtype/shape/content digest), dicts (sorted keys) and
    sequences.  Raises ``TypeError`` for objects with no stable canonical
    form (e.g. open file handles) rather than guessing.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache keying")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of :func:`canonical`."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """sha256 hex digest of the canonical form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def code_token(fn: Any) -> str:
    """A short token identifying a function's *implementation*.

    Hashes the function's (dedented) source text so editing the point
    function invalidates its cached results; falls back to the qualified
    name when source is unavailable (builtins, REPL lambdas).
    """
    override = getattr(fn, "__code_token__", None)
    if override is not None:
        return str(override)
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', type(fn).__name__)}"
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return hashlib.sha256(name.encode()).hexdigest()[:16]
    return hashlib.sha256((name + "\n" + source).encode()).hexdigest()[:16]


class ResultCache:
    """Content-addressed JSON store memoizing experiment point results."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        metrics: MetricsRegistry | None = None,
        enabled: bool = True,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = pathlib.Path(root)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled

    # -- keying -------------------------------------------------------------

    def key(self, namespace: str, params: dict, code: str | None = None) -> str:
        """Cache key for one point: namespace + code token + params."""
        return fingerprint({"namespace": namespace, "code": code or "", "params": params})

    def key_for(self, fn, params: dict, namespace: str | None = None) -> str:
        """Key for calling ``fn(**params)`` — includes ``fn``'s code token."""
        ns = namespace or f"{fn.__module__}.{fn.__qualname__}"
        return self.key(ns, params, code=code_token(fn))

    def _path(self, namespace: str, key: str) -> pathlib.Path:
        safe_ns = namespace.replace(os.sep, "_").replace("/", "_") or "_"
        return self.root / safe_ns / key[:2] / f"{key}.json"

    # -- storage ------------------------------------------------------------

    def load(self, namespace: str, key: str) -> Any:
        """Return the cached value for ``key`` or the :data:`MISS` sentinel.

        Structurally-invalid entries — unparseable JSON, or JSON that is
        not a dict carrying a ``"value"`` key (torn write, foreign file,
        old format) — are treated as corrupt: the file is evicted, a
        ``runtime.cache.corrupt`` counter ticks, and the lookup counts as
        a miss so the point is simply recomputed.
        """
        if not self.enabled:
            return MISS
        path = self._path(namespace, key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self._count_miss(namespace)
            return MISS
        except json.JSONDecodeError:
            self._evict_corrupt(path, namespace)
            return MISS
        if not isinstance(entry, dict) or "value" not in entry:
            self._evict_corrupt(path, namespace)
            return MISS
        self.metrics.counter("runtime.cache.hits").inc()
        self.metrics.counter("runtime.cache.hits").labels(namespace=namespace).inc()
        return entry["value"]

    def _count_miss(self, namespace: str) -> None:
        self.metrics.counter("runtime.cache.misses").inc()
        self.metrics.counter("runtime.cache.misses").labels(namespace=namespace).inc()

    def _evict_corrupt(self, path: pathlib.Path, namespace: str) -> None:
        """Remove a structurally-invalid entry and account for it."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing eviction is benign
            pass
        self.metrics.counter("runtime.cache.corrupt").inc()
        self.metrics.counter("runtime.cache.corrupt").labels(namespace=namespace).inc()
        self._count_miss(namespace)

    def store(self, namespace: str, key: str, value: Any, params: dict | None = None) -> None:
        """Atomically persist ``value`` (must be JSON-serializable)."""
        if not self.enabled:
            return
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "namespace": namespace, "value": value}
        if params is not None:
            entry["params"] = canonical(params)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.metrics.counter("runtime.cache.stores").inc()

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """All cached entry files currently on disk."""
        if not self.root.exists():
            return []
        return sorted(self.root.rglob("*.json"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, float]:
        """Current hit/miss/store counts."""
        out = {}
        for name in ("hits", "misses", "stores", "corrupt"):
            metric = f"runtime.cache.{name}"
            out[name] = (
                self.metrics.get(metric).value if metric in self.metrics else 0.0
            )
        return out
