"""Parallel, memoized execution of independent experiment grid points.

The figure sweeps (Fig 11/12/13/15) and tuning trials are embarrassingly
parallel: every grid point is a pure function of its parameters (all seeds
included).  :class:`SweepRunner` executes such points across a
``ProcessPoolExecutor``, consults the content-addressed
:class:`~repro.runtime.cache.ResultCache` before computing anything, and
reports cache hits/misses, point latencies and worker utilization through
the shared :class:`~repro.obs.registry.MetricsRegistry` / span tracer.

Determinism contract: results are returned **in input order**, and every
point carries its own explicit seeds (see :func:`derive_seed`), so
``workers=8`` produces bit-identical results to serial execution — an
invariant pinned by ``tests/test_runtime.py``.

Worker-count selection: ``workers`` <= 1 (the default) runs serially in
process — zero overhead, full tracer fidelity.  ``workers`` >= 2 forks a
pool; sensible values are ``min(num_points, os.cpu_count())``, which
:func:`default_workers` computes.  Functions crossing the process boundary
must be module-level (picklable); the runner *pre-checks* picklability and
silently falls back to serial for closures, counting the event in
``runtime.sweep.serial_fallback``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..obs.registry import MetricsRegistry
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from ..resilience.retry import RetryPolicy
from .cache import MISS, ResultCache, code_token, fingerprint

__all__ = [
    "SweepRunner",
    "SweepPointError",
    "PointFailure",
    "available_cores",
    "derive_seed",
    "default_workers",
    "reserve_core",
    "release_core",
    "reserved_cores",
]

#: Runner-appropriate defaults: a couple of bounded retries with short
#: backoff.  Worker-process crashes (OOM kill, segfault) are usually
#: transient; deterministic exceptions fail again quickly and are reported.
DEFAULT_SWEEP_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_s=0.05,
    multiplier=4.0,
    max_delay_s=2.0,
    jitter=0.0,
    deadline_s=60.0,
)


@dataclass(frozen=True)
class PointFailure:
    """A grid point that failed every permitted attempt.

    In ``on_error="partial"`` mode these take the failed points' slots in
    the result list (successes keep theirs), so a sweep with one bad point
    still returns every good result.
    """

    namespace: str
    index: int
    params: dict
    attempts: int
    error: str
    error_type: str

    def describe(self) -> str:
        return (
            f"{self.namespace} point #{self.index} {self.params!r} failed "
            f"after {self.attempts} attempt(s): [{self.error_type}] {self.error}"
        )


class SweepPointError(RuntimeError):
    """A worker exception, wrapped to name the grid point that died.

    The raw pool exception gives no clue which point was responsible; this
    carries the namespace and the exact parameter dict.
    """

    def __init__(self, failure: PointFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A deterministic, order-independent-of-execution seed for one point.

    Stable across processes and Python versions (sha256 of the canonical
    parts, not ``hash()``), so a grid point's RNG stream depends only on
    *what* the point is, never on *when or where* it runs.
    """
    digest = fingerprint({"base": int(base_seed), "parts": list(parts)})
    return int(digest[:12], 16)


def available_cores() -> int:
    """CPU cores *this process may actually run on*.

    Containerized CI pins processes to a subset of the host's cores;
    ``os.cpu_count()`` reports the host total and would oversubscribe the
    pool.  ``os.sched_getaffinity`` reflects the pinned set (Linux); fall
    back to ``os.cpu_count()`` where it doesn't exist (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


# Cores claimed by service threads that run *concurrently with* compute —
# the prefetch pipeline's prep thread, the GradReducer comm thread.  A
# plain int guarded by the GIL would do, but the lock makes the
# reserve/release pairing explicit and safe under free-threaded builds.
_reserved_lock = threading.Lock()
_reserved_cores = 0


def reserve_core() -> None:
    """Claim one core for a background service thread (prefetch/comm).

    While reserved, :func:`default_workers` hands out one fewer worker so
    a sweep started mid-pipeline doesn't oversubscribe a small (2-core CI)
    machine.  Pair every call with :func:`release_core`; the pipeline does
    so in its start/stop lifecycle.
    """
    global _reserved_cores
    with _reserved_lock:
        _reserved_cores += 1


def release_core() -> None:
    """Return a core claimed by :func:`reserve_core`."""
    global _reserved_cores
    with _reserved_lock:
        _reserved_cores = max(0, _reserved_cores - 1)


def reserved_cores() -> int:
    """Cores currently claimed by active service threads."""
    with _reserved_lock:
        return _reserved_cores


def default_workers(num_points: int | None = None) -> int:
    """A sensible pool size: all *available* cores (respecting CPU
    affinity, see :func:`available_cores`) minus any cores reserved for
    active pipeline/comm service threads, but never more than the points
    and never less than one."""
    cores = max(1, available_cores() - reserved_cores())
    if num_points is None:
        return cores
    return max(1, min(cores, num_points))


def _timed_call(fn: Callable[..., Any], kwargs: dict) -> tuple[Any, float]:
    """Execute one point and measure it (runs inside pool workers)."""
    t0 = time.perf_counter()
    value = fn(**kwargs)
    return value, time.perf_counter() - t0


class _UnaryCall:
    """Adapter turning ``fn(value)`` into a kwargs-style point callable.

    Module-level class so instances pickle whenever ``fn`` does.
    """

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn
        # Delegate identity to the wrapped function so cache namespaces and
        # code tokens are stable across processes and invocations (an
        # instance repr would embed a memory address).
        self.__qualname__ = f"unary:{getattr(fn, '__qualname__', type(fn).__name__)}"
        self.__module__ = getattr(fn, "__module__", "?")
        self.__code_token__ = code_token(fn)

    def __call__(self, *, arg: Any) -> Any:
        return self.fn(arg)


class SweepRunner:
    """Executes independent grid points, in parallel, through the cache.

    Args:
        workers: pool size; <= 1 means serial in-process execution.
        cache: optional :class:`ResultCache`; when present, points are
            looked up before computing and stored after.
        metrics: registry receiving ``runtime.sweep.*`` and
            ``runtime.cache.*`` series (shared with the cache).
        tracer: span tracer; each :meth:`map` emits one ``runtime`` span.
        retry: bounded-retry policy for failing points and broken pools
            (worker-process crashes); defaults to
            :data:`DEFAULT_SWEEP_RETRY` (3 attempts, short backoff).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        mp_context=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if cache is not None and cache.metrics is not self.metrics:
            # share one registry so cache + sweep counters merge trivially
            cache.metrics = self.metrics
        self.cache = cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._mp_context = mp_context
        self.retry = retry if retry is not None else DEFAULT_SWEEP_RETRY

    # -- public API ---------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        points: Sequence[dict],
        namespace: str | None = None,
        use_cache: bool = True,
        on_error: str = "raise",
    ) -> list[Any]:
        """Evaluate ``fn(**point)`` for every point; results in input order.

        Cached results are returned without recomputation; the remaining
        misses run on the pool (or serially).  ``fn`` must be deterministic
        in its parameters for the cache to be sound.

        Failure semantics: each failing point is retried up to
        ``retry.max_attempts`` times (worker-process crashes restart the
        pool between attempts).  A point that fails every attempt either
        raises :class:`SweepPointError` (``on_error="raise"``, default) or
        leaves a :class:`PointFailure` in its result slot
        (``on_error="partial"``), preserving every successful result.
        Failures are never written to the cache.
        """
        if on_error not in ("raise", "partial"):
            raise ValueError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
        points = list(points)
        ns = namespace or f"{fn.__module__}.{fn.__qualname__}"
        results: list[Any] = [MISS] * len(points)
        cache = self.cache if use_cache else None
        token = code_token(fn) if cache is not None else ""

        miss_indices: list[int] = []
        keys: list[str | None] = [None] * len(points)
        for i, params in enumerate(points):
            if cache is not None:
                key = cache.key(ns, params, code=token)
                keys[i] = key
                value = cache.load(ns, key)
                if value is not MISS:
                    results[i] = value
                    continue
            miss_indices.append(i)

        t_start = time.perf_counter()
        with self.tracer.span(
            f"sweep:{ns}",
            "runtime",
            points=len(points),
            cached=len(points) - len(miss_indices),
            workers=self.workers,
        ):
            busy = self._execute(fn, points, miss_indices, results, ns, on_error)
        wall = time.perf_counter() - t_start

        if cache is not None:
            for i in miss_indices:
                if isinstance(results[i], PointFailure):
                    continue  # never memoize a failure
                cache.store(ns, keys[i], results[i], params=points[i])

        counter = self.metrics.counter("runtime.sweep.points")
        counter.inc(len(points))
        counter.labels(namespace=ns).inc(len(points))
        self.metrics.counter("runtime.sweep.computed").inc(len(miss_indices))
        if miss_indices and wall > 0:
            effective = min(max(self.workers, 1), len(miss_indices))
            self.metrics.gauge("runtime.sweep.utilization").set(
                min(1.0, busy / (wall * effective))
            )
            self.metrics.gauge("runtime.sweep.workers").set(effective)
        return results

    def map_values(
        self,
        fn: Callable[[Any], Any],
        values: Sequence[Any],
        namespace: str | None = None,
        use_cache: bool = False,
    ) -> list[Any]:
        """Like :meth:`map` for single-argument functions.

        Caching defaults off here because ad-hoc unary objectives (tuning
        closures) rarely have stable source to key on.
        """
        ns = namespace or f"{fn.__module__}.{getattr(fn, '__qualname__', repr(fn))}"
        return self.map(
            _UnaryCall(fn),
            [{"arg": v} for v in values],
            namespace=ns,
            use_cache=use_cache,
        )

    # -- execution ----------------------------------------------------------

    def _execute(
        self,
        fn: Callable[..., Any],
        points: list[dict],
        miss_indices: list[int],
        results: list[Any],
        ns: str,
        on_error: str,
    ) -> float:
        """Run the missing points; fills ``results``; returns busy seconds.

        Drives the bounded-retry loop: each round runs all still-pending
        points (one fresh pool per round, so a crashed worker process —
        which poisons the whole ``ProcessPoolExecutor`` — cannot take
        subsequent attempts down with it), then either retries the failures
        after a backoff or finalizes them as :class:`PointFailure`.
        """
        if not miss_indices:
            return 0.0
        busy = 0.0
        parallel = (
            self.workers >= 2 and len(miss_indices) > 1 and self._picklable(fn, points)
        )
        pending = list(miss_indices)
        attempt = 0  # rounds completed so far; all pending points share it
        errors: dict[int, BaseException] = {}
        while pending:
            if attempt >= 1:
                self.metrics.counter("runtime.sweep.point_retries").inc(len(pending))
                delay = self.retry.backoff_s(attempt)
                if delay > 0:
                    time.sleep(delay)
            # Once we have committed to process isolation, retries stay in a
            # pool even for a single pending point: a point that kills its
            # process must never be re-run inside the parent.
            if parallel:
                dt, failed = self._run_pool(fn, points, pending, results, errors)
            else:
                dt, failed = self._run_serial(fn, points, pending, results, errors)
            busy += dt
            attempt += 1
            if failed and attempt >= self.retry.max_attempts:
                for i in failed:
                    exc = errors[i]
                    failure = PointFailure(
                        namespace=ns,
                        index=i,
                        params=dict(points[i]),
                        attempts=attempt,
                        error=str(exc) or exc.__class__.__name__,
                        error_type=type(exc).__name__,
                    )
                    self.metrics.counter("runtime.sweep.point_failures").inc()
                    self.metrics.counter("runtime.sweep.point_failures").labels(
                        namespace=ns
                    ).inc()
                    if on_error == "raise":
                        raise SweepPointError(failure) from exc
                    results[i] = failure
                return busy
            pending = failed
        return busy

    def _run_pool(
        self,
        fn: Callable[..., Any],
        points: list[dict],
        pending: list[int],
        results: list[Any],
        errors: dict[int, BaseException],
    ) -> tuple[float, list[int]]:
        """One parallel round; returns (busy seconds, indices that failed)."""
        durations = self.metrics.histogram("runtime.sweep.point_seconds")
        busy = 0.0
        failed: list[int] = []
        pool_broke = False
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=max_workers, mp_context=self._mp_context
        ) as pool:
            futures = [(i, pool.submit(_timed_call, fn, points[i])) for i in pending]
            for i, future in futures:
                try:
                    value, dt = future.result()
                except BrokenProcessPool as exc:
                    # One crashed worker poisons every outstanding future;
                    # count the pool loss once, mark the rest for retry.
                    if not pool_broke:
                        pool_broke = True
                        self.metrics.counter("runtime.sweep.pool_restarts").inc()
                    errors[i] = exc
                    failed.append(i)
                except Exception as exc:
                    errors[i] = exc
                    failed.append(i)
                else:
                    results[i] = value
                    durations.observe(dt)
                    busy += dt
        return busy, failed

    def _run_serial(
        self,
        fn: Callable[..., Any],
        points: list[dict],
        pending: list[int],
        results: list[Any],
        errors: dict[int, BaseException],
    ) -> tuple[float, list[int]]:
        """One serial round; returns (busy seconds, indices that failed)."""
        durations = self.metrics.histogram("runtime.sweep.point_seconds")
        busy = 0.0
        failed: list[int] = []
        for i in pending:
            try:
                value, dt = _timed_call(fn, points[i])
            except Exception as exc:
                errors[i] = exc
                failed.append(i)
            else:
                results[i] = value
                durations.observe(dt)
                busy += dt
        return busy, failed

    def _picklable(self, fn: Callable[..., Any], points: list[dict]) -> bool:
        """Pre-flight check: can this work cross a process boundary?"""
        try:
            pickle.dumps(fn)
            return True
        except Exception:
            self.metrics.counter("runtime.sweep.serial_fallback").inc()
            return False
