"""Experiment runtime: parallel sweep execution + memoized results.

Public surface:

* :class:`SweepRunner` — executes independent grid points across a process
  pool with cache lookups, obs-integrated telemetry, and bounded retries
  for worker-process crashes (``on_error="partial"`` returns
  :class:`PointFailure` slots instead of raising :class:`SweepPointError`);
* :class:`ResultCache` — content-addressed on-disk JSON result store
  (config-hash -> value) with code-change invalidation;
* :func:`derive_seed` — deterministic per-point seed derivation;
* :func:`default_workers` — worker-count selection helper.

See ``DESIGN.md`` ("repro.runtime") for the cache key scheme and the
determinism contract (parallel == serial, bit for bit).
"""

from .cache import MISS, ResultCache, canonical, canonical_json, code_token, fingerprint
from .runner import (
    PointFailure,
    SweepPointError,
    SweepRunner,
    available_cores,
    default_workers,
    derive_seed,
    release_core,
    reserve_core,
    reserved_cores,
)

__all__ = [
    "MISS",
    "PointFailure",
    "ResultCache",
    "SweepPointError",
    "SweepRunner",
    "available_cores",
    "canonical",
    "canonical_json",
    "code_token",
    "default_workers",
    "derive_seed",
    "fingerprint",
    "release_core",
    "reserve_core",
    "reserved_cores",
]
