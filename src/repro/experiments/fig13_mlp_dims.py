"""Figure 13 — throughput under varying MLP dimensions.

Targets: normalized throughput stays near-flat until the stacks exceed
256^3, then falls, with the CPU dropping faster than the GPU (the GPU's
compute headroom absorbs wide GEMMs better).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import DEFAULT_CPU_BATCH, DEFAULT_GPU_BATCH, MLP_SWEEP, make_test_model
from ..hardware import BIG_BASIN
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["MlpPoint", "Fig13Result", "run", "render", "mlp_point"]


@dataclass(frozen=True)
class MlpPoint:
    mlp: str
    cpu_throughput: float
    gpu_throughput: float


@dataclass(frozen=True)
class Fig13Result:
    points: tuple[MlpPoint, ...]

    def normalized(self) -> list[tuple[str, float, float]]:
        """(mlp, cpu_rel, gpu_rel) normalized to the smallest stack."""
        base_cpu = self.points[0].cpu_throughput
        base_gpu = self.points[0].gpu_throughput
        return [
            (p.mlp, p.cpu_throughput / base_cpu, p.gpu_throughput / base_gpu)
            for p in self.points
        ]


def mlp_point(mlp: str, num_dense: int, num_sparse: int) -> dict:
    """One Fig 13 grid point as a JSON-friendly dict (picklable, cacheable)."""
    model = make_test_model(num_dense, num_sparse, mlp=mlp)
    cpu = cpu_cluster_throughput(model, DEFAULT_CPU_BATCH, 1, 1, 1).throughput
    plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    gpu = gpu_server_throughput(model, DEFAULT_GPU_BATCH, BIG_BASIN, plan).throughput
    return {"mlp": mlp, "cpu_throughput": cpu, "gpu_throughput": gpu}


def run(
    mlp_sweep: tuple[str, ...] = MLP_SWEEP,
    num_dense: int = 512,
    num_sparse: int = 64,
    runner=None,
) -> Fig13Result:
    """Sweep MLP stacks; pass a :class:`~repro.runtime.SweepRunner` to
    parallelize/memoize the grid points."""
    if runner is not None:
        raw = runner.map(
            mlp_point,
            [
                {"mlp": m, "num_dense": num_dense, "num_sparse": num_sparse}
                for m in mlp_sweep
            ],
            namespace="fig13.mlp",
        )
        return Fig13Result(tuple(MlpPoint(**d) for d in raw))
    return Fig13Result(
        tuple(MlpPoint(**mlp_point(m, num_dense, num_sparse)) for m in mlp_sweep)
    )


def render(result: Fig13Result) -> str:
    rows = [
        [mlp, f"{cpu_rel:.2f}", f"{gpu_rel:.2f}"]
        for mlp, cpu_rel, gpu_rel in result.normalized()
    ]
    return render_table(
        ["MLP dims", "CPU (normalized)", "GPU (normalized)"],
        rows,
        title="Figure 13: throughput vs MLP dimensions (normalized to smallest stack)",
    )
