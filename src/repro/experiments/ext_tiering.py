"""Tiered embedding store experiments (extension; ROADMAP item 2).

Two claims about :mod:`repro.tiering` are checked end to end:

* **Bit-identity** (:func:`run_train`): training a DLRM whose embedding
  tables are :class:`~repro.tiering.store.TieredEmbeddingTable` produces
  the *same bits* — every step loss and every weight — as the flat
  :class:`~repro.core.embedding.EmbeddingTable`, in float64 and float32,
  at any hot-tier fraction.  Tiering only changes simulated cost.

* **Measured vs analytic** (:func:`run_sweep`): the simulated tier-miss
  overhead charged by the functional store on a Zipf access stream must
  match the closed-form prediction (chunk-granular popularity pmf through
  :mod:`repro.tiering.analytic`, priced by
  :class:`~repro.tiering.costs.TierCostModel`) within a per-point relative
  error — the same cross-validation discipline the serving cache uses for
  its hit rates, extended to cost.

``python -m repro tier {train,sweep}`` drives both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..core.config import InteractionType, MLPSpec, ModelConfig, TableSpec, uniform_tables
from ..core.model import DLRM
from ..core.optim import Adagrad
from ..core.training import Trainer
from ..data.distributions import sample_discrete_zipf, zipf_probabilities
from ..obs import MetricsRegistry
from ..tiering.analytic import policy_hit_rate_pmf
from ..tiering.store import TieredEmbeddingTable, TieredStoreConfig

__all__ = [
    "TierTrainResult",
    "TierSweepPoint",
    "default_config",
    "run_train",
    "run_sweep",
    "chunk_popularity",
    "render_train",
    "render_sweep",
    "DEFAULT_HOT_FRACTIONS",
    "DEFAULT_SKEWS",
    "DEFAULT_POLICIES",
    "DEFAULT_MAX_REL_ERR",
]

#: Default sweep grid: hot fractions in the regime where the hot tier is
#: genuinely contended (miss rates far from 0, so the 25% gate on miss-
#: driven overhead is meaningful), two skews bracketing the paper's ~1.05.
DEFAULT_HOT_FRACTIONS = (0.02, 0.05, 0.1)
DEFAULT_SKEWS = (0.9, 1.05)
DEFAULT_POLICIES = ("lru", "freq")
#: Acceptance bound on |measured - predicted| / predicted per swept point.
DEFAULT_MAX_REL_ERR = 0.25


def default_config(dtype: str = "float64") -> ModelConfig:
    """A small DLRM for functional tiering runs (CI-sized)."""
    return ModelConfig(
        name=f"tier-test-{dtype}",
        num_dense=8,
        tables=uniform_tables(4, hash_size=2000, dim=16, mean_lookups=4.0),
        bottom_mlp=MLPSpec.from_notation("32^2"),
        top_mlp=MLPSpec.from_notation("32^2"),
        interaction=InteractionType.CONCAT,
        compute_dtype=dtype,
    )


@dataclass(frozen=True)
class TierTrainResult:
    """Flat-vs-tiered training comparison at one precision."""

    dtype: str
    hot_fraction: float
    policy: str
    chunk_rows: int
    steps: int
    losses_flat: tuple[float, ...]
    losses_tiered: tuple[float, ...]
    digest_flat: str
    digest_tiered: str
    #: Aggregate tier accounting across all tables (see TierStats.as_dict).
    tier_stats: dict[str, float]
    #: Tier counters observed on the Trainer's MetricsRegistry.
    metric_hits: float
    metric_misses: float

    @property
    def losses_identical(self) -> bool:
        return self.losses_flat == self.losses_tiered

    @property
    def digests_identical(self) -> bool:
        return self.digest_flat == self.digest_tiered

    @property
    def bit_identical(self) -> bool:
        return self.losses_identical and self.digests_identical


def _state_digest(model: DLRM) -> str:
    """sha256 over every weight tensor (tables in config order + dense)."""
    h = hashlib.sha256()
    for table in model.embedding_tables():
        h.update(np.ascontiguousarray(table.weight).tobytes())
    for p in model.dense_parameters():
        h.update(np.ascontiguousarray(p.value).tobytes())
    return h.hexdigest()


def run_train(
    hot_fraction: float = 0.05,
    policy: str = "freq",
    steps: int = 8,
    batch: int = 64,
    seed: int = 0,
    dtype: str = "float64",
    chunk_rows: int = 4,
) -> TierTrainResult:
    """Train the same model flat and tiered on identical batches.

    Both models are built from the same seed (tiered tables consume rng
    exactly like flat ones) and fed the same materialized batch list, so
    any numeric difference whatsoever fails the bit-identity claim.
    """
    from ..data.synthetic import SyntheticDataGenerator

    config = default_config(dtype)
    gen = SyntheticDataGenerator(config, rng=seed, seed_teacher=True)
    batches = [gen.batch(batch) for _ in range(steps)]
    tiering = TieredStoreConfig(
        hot_fraction=hot_fraction, policy=policy, chunk_rows=chunk_rows
    )

    def opt_factory(m: DLRM):
        return Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.01)

    flat_model = DLRM(config, rng=seed + 1)
    flat_trainer = Trainer(flat_model, opt_factory)
    flat_losses = [flat_trainer.train_step(b) for b in batches]

    metrics = MetricsRegistry()
    tiered_model = DLRM(config, rng=seed + 1, tiering=tiering)
    tiered_trainer = Trainer(tiered_model, opt_factory, metrics=metrics)
    tiered_losses = [tiered_trainer.train_step(b) for b in batches]

    agg: dict[str, float] = {}
    for table in tiered_model.embedding_tables():
        assert isinstance(table, TieredEmbeddingTable)
        for key, value in table.stats.as_dict().items():
            if key != "hit_rate":
                agg[key] = agg.get(key, 0.0) + value
    accesses = agg.get("hot_hits", 0.0) + agg.get("cold_misses", 0.0)
    agg["hit_rate"] = agg.get("hot_hits", 0.0) / accesses if accesses else 0.0

    def counter_total(name: str) -> float:
        if name not in metrics:
            return 0.0
        return sum(c.value for c in metrics.get(name).children().values())

    return TierTrainResult(
        dtype=dtype,
        hot_fraction=hot_fraction,
        policy=policy,
        chunk_rows=chunk_rows,
        steps=steps,
        losses_flat=tuple(flat_losses),
        losses_tiered=tuple(tiered_losses),
        digest_flat=_state_digest(flat_model),
        digest_tiered=_state_digest(tiered_model),
        tier_stats=agg,
        metric_hits=counter_total("tier_hot_hits"),
        metric_misses=counter_total("tier_cold_misses"),
    )


@dataclass(frozen=True)
class TierSweepPoint:
    """One (hot-fraction, skew, policy) point: measured vs analytic."""

    hot_fraction: float
    skew: float
    policy: str
    chunk_rows: int
    capacity_chunks: int
    accesses: int
    measured_hit_rate: float
    predicted_hit_rate: float
    measured_overhead_s: float
    predicted_overhead_s: float

    @property
    def rel_err(self) -> float:
        if self.predicted_overhead_s <= 0.0:
            return 0.0 if self.measured_overhead_s == 0.0 else float("inf")
        return abs(self.measured_overhead_s - self.predicted_overhead_s) / (
            self.predicted_overhead_s
        )


def chunk_popularity(num_rows: int, chunk_rows: int, skew: float) -> np.ndarray:
    """Exact access pmf over *chunks* for the discrete-Zipf row stream.

    :func:`repro.data.distributions.sample_discrete_zipf` maps rank ``r``
    to row ``((r + 1) * 2654435761) % num_rows`` (a bijection — the
    multiplier is prime); summing the rank pmf over each chunk's member
    rows gives the chunk pmf the analytic models need.
    """
    p_rank = zipf_probabilities(num_rows, skew)
    ranks = np.arange(num_rows, dtype=np.uint64)
    mixed = ((ranks + np.uint64(1)) * np.uint64(2654435761)) % np.uint64(num_rows)
    num_chunks = -(-num_rows // chunk_rows)
    chunk_p = np.zeros(num_chunks, dtype=np.float64)
    np.add.at(chunk_p, mixed.astype(np.int64) // chunk_rows, p_rank)
    return chunk_p


def run_sweep(
    hot_fractions: tuple[float, ...] = DEFAULT_HOT_FRACTIONS,
    skews: tuple[float, ...] = DEFAULT_SKEWS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    num_rows: int = 4096,
    dim: int = 16,
    chunk_rows: int = 4,
    warmup: int = 20_000,
    measure: int = 40_000,
    seed: int = 0,
    ema_decay: float = 0.9995,
) -> list[TierSweepPoint]:
    """Stream exact discrete-Zipf accesses through the functional store
    and compare its charged overhead against the analytic prediction.

    The cache warms for ``warmup`` accesses, then ``measure`` accesses are
    accounted — the analytic models describe the steady state, so the
    warm-up transient (compulsory fills, initial promotions) is excluded,
    mirroring the serving cross-validation's warm/raw bracket.
    """
    points: list[TierSweepPoint] = []
    for skew in skews:
        rng = np.random.default_rng(seed)
        stream = sample_discrete_zipf(rng, warmup + measure, num_rows, skew)
        for hot_fraction in hot_fractions:
            for policy in policies:
                spec = TableSpec(
                    name="sweep", hash_size=num_rows, dim=dim, mean_lookups=1.0
                )
                table = TieredEmbeddingTable(
                    spec,
                    np.random.default_rng(seed),
                    tiering=TieredStoreConfig(
                        hot_fraction=hot_fraction,
                        policy=policy,
                        chunk_rows=chunk_rows,
                        ema_decay=ema_decay,
                    ),
                )
                for lo in range(0, warmup, 4096):
                    table.record_accesses(stream[lo : min(lo + 4096, warmup)])
                snap = table.stats.snapshot()
                for lo in range(warmup, warmup + measure, 4096):
                    table.record_accesses(
                        stream[lo : min(lo + 4096, warmup + measure)]
                    )
                delta = table.stats.delta(snap)

                chunk_p = chunk_popularity(num_rows, chunk_rows, skew)
                h_pred = policy_hit_rate_pmf(
                    policy, chunk_p, table.capacity_chunks
                )
                row_b = table.bytes_per_row()
                # Insert-on-miss policies migrate a chunk per miss; the
                # frequency-admission hot set is stable in steady state.
                moves_per_miss = 0.0 if policy == "freq" else 1.0
                predicted = table.cost_model.predicted_overhead_s(
                    delta.accesses,
                    h_pred,
                    row_b,
                    row_b * chunk_rows,
                    moves_per_miss,
                )
                points.append(
                    TierSweepPoint(
                        hot_fraction=hot_fraction,
                        skew=skew,
                        policy=policy,
                        chunk_rows=chunk_rows,
                        capacity_chunks=table.capacity_chunks,
                        accesses=delta.accesses,
                        measured_hit_rate=delta.hit_rate,
                        predicted_hit_rate=h_pred,
                        measured_overhead_s=delta.overhead_s,
                        predicted_overhead_s=predicted,
                    )
                )
    return points


def render_train(results: list[TierTrainResult]) -> str:
    rows = [
        [
            r.dtype,
            f"{r.hot_fraction:.2f}",
            r.policy,
            r.steps,
            f"{r.tier_stats['hit_rate']:.3f}",
            f"{r.tier_stats['overhead_s'] * 1e3:.3f}",
            "yes" if r.losses_identical else "NO",
            "yes" if r.digests_identical else "NO",
        ]
        for r in results
    ]
    return render_table(
        ["dtype", "hot frac", "policy", "steps", "tier hit", "overhead ms",
         "losses ==", "digests =="],
        rows,
        title="Tiered vs flat embedding table (bit-identity)",
    )


def render_sweep(points: list[TierSweepPoint]) -> str:
    rows = [
        [
            f"{p.hot_fraction:.2f}",
            f"{p.skew:.2f}",
            p.policy,
            p.capacity_chunks,
            f"{p.measured_hit_rate:.3f}",
            f"{p.predicted_hit_rate:.3f}",
            f"{p.measured_overhead_s * 1e3:.2f}",
            f"{p.predicted_overhead_s * 1e3:.2f}",
            f"{p.rel_err * 100:.1f}%",
        ]
        for p in points
    ]
    return render_table(
        ["hot frac", "skew", "policy", "cap chunks", "hit meas", "hit pred",
         "ovh meas ms", "ovh pred ms", "rel err"],
        rows,
        title="Measured vs analytic tier-miss overhead",
    )
