"""Figure 14 — embedding placements on Big Basin vs Zion for M2.

Targets (paper §VI-B): on Big Basin, GPU-memory placement is best and
system memory ~4x slower; on Zion, system memory is best (its ~1 TB/s DRAM)
and GPU-memory placement is much slower than Big Basin's (no GPU-GPU direct
link in the prototype); remote placement is worst on both, with Zion only
slightly ahead of Big Basin.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import PRODUCTION_MODELS, PRODUCTION_SETUPS
from ..core.config import ModelConfig
from ..hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION, PlatformSpec
from ..obs.tracer import NullTracer, Tracer
from ..perf import gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["PlacementPoint", "Fig14Result", "run", "render"]

_STRATEGIES = (
    PlacementStrategy.GPU_MEMORY,
    PlacementStrategy.SYSTEM_MEMORY,
    PlacementStrategy.REMOTE_CPU,
)


@dataclass(frozen=True)
class PlacementPoint:
    platform: str
    strategy: PlacementStrategy
    throughput: float


@dataclass(frozen=True)
class Fig14Result:
    points: tuple[PlacementPoint, ...]

    def throughput(self, platform: str, strategy: PlacementStrategy) -> float:
        for p in self.points:
            if p.platform == platform and p.strategy is strategy:
                return p.throughput
        raise KeyError((platform, strategy))


def run(
    model: ModelConfig | None = None,
    batch: int | None = None,
    num_remote_ps: int = 8,
    platforms: tuple[PlatformSpec, ...] = (BIG_BASIN, ZION),
    tracer: Tracer | NullTracer | None = None,
) -> Fig14Result:
    model = model or PRODUCTION_MODELS["M2_prod"]()
    batch = batch or PRODUCTION_SETUPS["M2_prod"].gpu_batch
    points = []
    for platform in platforms:
        for strategy in _STRATEGIES:
            plan = plan_placement(
                model,
                platform,
                strategy,
                num_ps=num_remote_ps,
                ps_platform=DUAL_SOCKET_CPU,
            )
            report = gpu_server_throughput(
                model, batch, platform, plan, tracer=tracer
            )
            points.append(PlacementPoint(platform.name, strategy, report.throughput))
    return Fig14Result(tuple(points))


def render(result: Fig14Result) -> str:
    peak = max(p.throughput for p in result.points)
    rows = [
        [p.platform, p.strategy.value, f"{p.throughput:,.0f}", f"{p.throughput / peak:.2f}"]
        for p in result.points
    ]
    return render_table(
        ["platform", "placement", "ex/s", "vs best"],
        rows,
        title="Figure 14: M2 embedding placements on Big Basin vs Zion",
    )
