"""Figure 12 — hash-size scaling on CPU and GPU.

Targets: CPU throughput is flat with hash size (table size does not change
lookup cost); GPU throughput holds while tables fit in HBM (small tables
even replicate), drops sharply once tables spill into system memory, and
the model eventually stops fitting in the server at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import DEFAULT_CPU_BATCH, DEFAULT_GPU_BATCH, HASH_SWEEP, make_test_model
from ..hardware import BIG_BASIN, CapacityError
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import LocationKind, auto_plan

__all__ = ["HashPoint", "Fig12Result", "run", "render", "hash_point"]


@dataclass(frozen=True)
class HashPoint:
    hash_size: int
    cpu_throughput: float
    gpu_throughput: float | None  # None == infeasible on one Big Basin
    gpu_strategy: str | None
    replicated_tables: int
    system_spill_fraction: float


@dataclass(frozen=True)
class Fig12Result:
    points: tuple[HashPoint, ...]

    def cpu_flatness(self) -> float:
        """max/min CPU throughput across the sweep (1.0 == perfectly flat)."""
        values = [p.cpu_throughput for p in self.points]
        return max(values) / min(values)

    def gpu_feasible_points(self) -> list[HashPoint]:
        return [p for p in self.points if p.gpu_throughput is not None]


def hash_point(hash_size: int, num_dense: int, num_sparse: int) -> dict:
    """One Fig 12 grid point as a JSON-friendly dict (picklable, cacheable).

    ``CapacityError`` (model does not fit one Big Basin) is folded into the
    result rather than raised, so parallel execution never loses the
    infeasibility information.
    """
    model = make_test_model(num_dense, num_sparse, hash_size=hash_size)
    # CPU: scale sparse PS to the minimum that holds the tables, as the
    # paper holds a single PS only while the model fits it.
    from ..placement import model_embedding_footprint

    min_ps = max(1, int(-(-model_embedding_footprint(model) // 230e9)))
    cpu = cpu_cluster_throughput(model, DEFAULT_CPU_BATCH, 1, min_ps, 1).throughput
    try:
        plan = auto_plan(model, BIG_BASIN)
        gpu = gpu_server_throughput(
            model, DEFAULT_GPU_BATCH, BIG_BASIN, plan
        ).throughput
        kinds = plan.bytes_by_kind()
        total = sum(kinds.values())
        spill = kinds.get(LocationKind.SYSTEM, 0.0) / total if total else 0.0
        return {
            "hash_size": hash_size,
            "cpu_throughput": cpu,
            "gpu_throughput": gpu,
            "gpu_strategy": plan.strategy.value,
            "replicated_tables": len(plan.replicated_tables()),
            "system_spill_fraction": spill,
        }
    except CapacityError:
        return {
            "hash_size": hash_size,
            "cpu_throughput": cpu,
            "gpu_throughput": None,
            "gpu_strategy": None,
            "replicated_tables": 0,
            "system_spill_fraction": 1.0,
        }


def run(
    hash_sweep: tuple[int, ...] = HASH_SWEEP,
    num_dense: int = 1024,
    num_sparse: int = 64,
    runner=None,
) -> Fig12Result:
    """Sweep hash sizes; pass a :class:`~repro.runtime.SweepRunner` to
    parallelize/memoize the grid points."""
    if runner is not None:
        raw = runner.map(
            hash_point,
            [
                {"hash_size": h, "num_dense": num_dense, "num_sparse": num_sparse}
                for h in hash_sweep
            ],
            namespace="fig12.hash",
        )
        return Fig12Result(tuple(HashPoint(**d) for d in raw))
    return Fig12Result(
        tuple(
            HashPoint(**hash_point(h, num_dense, num_sparse)) for h in hash_sweep
        )
    )


def render(result: Fig12Result) -> str:
    rows = []
    for p in result.points:
        rows.append(
            [
                f"{p.hash_size:,}",
                f"{p.cpu_throughput:,.0f}",
                f"{p.gpu_throughput:,.0f}" if p.gpu_throughput else "infeasible",
                p.gpu_strategy or "-",
                p.replicated_tables,
                f"{p.system_spill_fraction:.0%}",
            ]
        )
    table = render_table(
        ["hash size", "CPU ex/s", "GPU ex/s", "GPU placement", "replicated", "DRAM spill"],
        rows,
        title="Figure 12: hash-size scaling (CPU flat; GPU drops as tables spill HBM)",
    )
    return table + f"\nCPU flatness (max/min): {result.cpu_flatness():.3f}"
