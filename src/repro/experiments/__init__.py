"""Experiment drivers: one module per figure/table of the paper.

Every module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the paper-style text output.  The benchmark
harness under ``benchmarks/`` is a thin wrapper over these drivers, and the
examples reuse them, so the figure logic lives in exactly one place.
"""

from . import (
    ext_fault_tolerance,
    ext_hash_accuracy,
    ext_mp_faults,
    ext_mp_scaling,
    report,
    fig01_production,
    fig02_workloads,
    fig05_utilization,
    fig06_07_embedding_stats,
    fig09_servers,
    fig10_feature_sweep,
    fig11_batch_scaling,
    fig12_hash_scaling,
    fig13_mlp_dims,
    fig14_placement,
    fig15_accuracy,
    table1_platforms,
    table2_models,
    table3_comparison,
)

__all__ = [
    "fig01_production",
    "fig02_workloads",
    "fig05_utilization",
    "fig06_07_embedding_stats",
    "fig09_servers",
    "fig10_feature_sweep",
    "fig11_batch_scaling",
    "fig12_hash_scaling",
    "fig13_mlp_dims",
    "fig14_placement",
    "fig15_accuracy",
    "table1_platforms",
    "table2_models",
    "table3_comparison",
    "report",
    "ext_fault_tolerance",
    "ext_hash_accuracy",
    "ext_mp_faults",
    "ext_mp_scaling",
]
