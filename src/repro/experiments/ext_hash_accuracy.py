"""Extension experiment — the hash-size / accuracy trade-off (§III-A.2).

"Due to collisions hashing algorithms create, lower hash sizes might cause
accuracy degradation, while providing the benefit of reducing the embedding
table sizes."  The paper states the trade-off but does not plot it; this is
a *functional* experiment that measures it:

* the teacher assigns a latent value to each of ``id_space`` raw ids;
* the student maps raw ids through the hashing trick into ``m`` rows, so
  smaller ``m`` forces more raw ids to share (and fight over) a row;
* students are trained on an identical budget per hash size, and NE on a
  shared held-out set quantifies the collision penalty against the memory
  saved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..core import (
    Adagrad,
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    Trainer,
    evaluate,
    hash_raw_ids,
    uniform_tables,
)
from ..core.embedding import RaggedIndices
from ..core.model import Batch

__all__ = ["HashPointResult", "HashAccuracyResult", "run", "render"]


@dataclass(frozen=True)
class HashPointResult:
    hash_size: int
    normalized_entropy: float
    table_bytes: int
    expected_ids_per_row: float


@dataclass(frozen=True)
class HashAccuracyResult:
    id_space: int
    points: tuple[HashPointResult, ...]
    baseline_ne: float  # NE at the largest (collision-light) hash size

    def ne_by_hash(self) -> dict[int, float]:
        return {p.hash_size: p.normalized_entropy for p in self.points}


class _RawIdTeacherData:
    """Raw-id stream with per-raw-id latent values; students see hashed ids."""

    def __init__(
        self,
        id_space: int,
        num_dense: int,
        mean_lookups: float,
        seed: int,
        noise: float = 0.25,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.id_space = id_space
        self.num_dense = num_dense
        self.mean_lookups = mean_lookups
        self.latents = rng.normal(0.0, 1.0 / np.sqrt(mean_lookups), size=id_space)
        self.dense_w = rng.normal(0.0, 1.0 / np.sqrt(num_dense), size=num_dense)
        self.noise = noise

    def raw_batch(self, rng: np.random.Generator, batch: int):
        dense = rng.normal(size=(batch, self.num_dense))
        lengths = np.maximum(rng.poisson(self.mean_lookups, size=batch), 1)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        # Zipf-ish skew over the raw id space
        u = rng.uniform(size=int(offsets[-1]))
        ranks = np.minimum(
            (np.exp(u * np.log(self.id_space))).astype(np.int64), self.id_space - 1
        )
        raw = (ranks * 2654435761) % self.id_space
        logits = dense @ self.dense_w
        np.add.at(logits, np.repeat(np.arange(batch), lengths), self.latents[raw])
        logits = logits - 0.5 + rng.normal(0.0, self.noise, size=batch)
        labels = (rng.uniform(size=batch) < 1 / (1 + np.exp(-logits))).astype(float)
        return dense, raw, offsets, labels

    def student_batch(self, rng: np.random.Generator, batch: int, hash_size: int) -> Batch:
        dense, raw, offsets, labels = self.raw_batch(rng, batch)
        hashed = hash_raw_ids(raw.astype(np.uint64), hash_size)
        return Batch(
            dense=dense,
            sparse={
                "ids": RaggedIndices(
                    values=hashed, offsets=offsets, safe_bound=hash_size
                )
            },
            labels=labels,
        )


def _student_config(hash_size: int) -> ModelConfig:
    from ..core import TableSpec

    return ModelConfig(
        name=f"hash-{hash_size}",
        num_dense=8,
        tables=(TableSpec("ids", hash_size, dim=16, mean_lookups=4.0),),
        bottom_mlp=MLPSpec((16,)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
    )


def run(
    id_space: int = 20_000,
    hash_sizes: tuple[int, ...] = (20_000, 2_000, 200, 20),
    example_budget: int = 40_000,
    batch: int = 256,
    lr: float = 0.1,
    seed: int = 0,
) -> HashAccuracyResult:
    """Train one student per hash size on a shared raw-id stream."""
    if id_space < max(hash_sizes):
        raise ValueError("id_space must cover the largest hash size")
    if len(hash_sizes) < 2:
        raise ValueError("need at least two hash sizes to compare")
    data = _RawIdTeacherData(id_space, num_dense=8, mean_lookups=4.0, seed=seed + 999)
    eval_rng = np.random.default_rng(seed + 5000)
    # Held-out raw examples, hashed per student at evaluation time.
    eval_raw = [data.raw_batch(eval_rng, 2048) for _ in range(2)]

    points = []
    for m in hash_sizes:
        config = _student_config(m)
        # rename the single table to "ids" to match the batch key
        model = DLRM(config, rng=seed + 1)
        trainer = Trainer(
            model,
            lambda mod: Adagrad(mod.dense_parameters(), mod.embedding_tables(), lr=lr),
        )
        train_rng = np.random.default_rng(seed)

        def stream():
            while True:
                yield data.student_batch(train_rng, batch, m)

        trainer.train(stream(), max_examples=example_budget)
        eval_batches = []
        for dense, raw, offsets, labels in eval_raw:
            hashed = hash_raw_ids(raw.astype(np.uint64), m)
            eval_batches.append(
                Batch(
                    dense=dense,
                    sparse={
                        "ids": RaggedIndices(
                            values=hashed, offsets=offsets, safe_bound=m
                        )
                    },
                    labels=labels,
                )
            )
        ne = evaluate(model, eval_batches)["normalized_entropy"]
        points.append(
            HashPointResult(
                hash_size=m,
                normalized_entropy=ne,
                table_bytes=config.embedding_bytes,
                expected_ids_per_row=id_space / m,
            )
        )
    baseline = points[0].normalized_entropy
    return HashAccuracyResult(
        id_space=id_space, points=tuple(points), baseline_ne=baseline
    )


def render(result: HashAccuracyResult) -> str:
    rows = [
        [
            f"{p.hash_size:,}",
            f"{p.expected_ids_per_row:.0f}",
            f"{p.table_bytes / 1e3:.0f} KB",
            f"{p.normalized_entropy:.4f}",
            f"{100 * (p.normalized_entropy - result.baseline_ne) / result.baseline_ne:+.2f}%",
        ]
        for p in result.points
    ]
    return render_table(
        ["hash size", "raw ids/row", "table size", "NE", "NE gap vs largest"],
        rows,
        title=(
            f"Extension: hash-size vs accuracy over {result.id_space:,} raw ids "
            "(§III-A.2's collision trade-off, measured)"
        ),
    )
