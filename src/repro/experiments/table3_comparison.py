"""Table III — CPU vs Big Basin GPU optimal-setup comparison.

For each production model, evaluate the paper's CPU production setup and
the tuned single-Big-Basin prototype, and report relative throughput and
power efficiency next to the paper's published ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import PRODUCTION_MODELS, PRODUCTION_SETUPS, ProductionSetup
from ..hardware import BIG_BASIN, DUAL_SOCKET_CPU
from ..obs.tracer import NullTracer, Tracer
from ..perf import ThroughputReport, cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["ModelComparison", "Table3Result", "run", "render"]


@dataclass(frozen=True)
class ModelComparison:
    model_name: str
    cpu: ThroughputReport
    gpu: ThroughputReport
    paper_throughput_ratio: float
    paper_efficiency_ratio: float

    @property
    def throughput_ratio(self) -> float:
        return self.gpu.throughput / self.cpu.throughput

    @property
    def efficiency_ratio(self) -> float:
        return self.gpu.perf_per_watt / self.cpu.perf_per_watt


@dataclass(frozen=True)
class Table3Result:
    comparisons: tuple[ModelComparison, ...]

    def by_name(self) -> dict[str, ModelComparison]:
        return {c.model_name: c for c in self.comparisons}


def evaluate_setup(
    model_name: str,
    setup: ProductionSetup,
    tracer: Tracer | NullTracer | None = None,
) -> ModelComparison:
    """Evaluate one row of Table III."""
    model = PRODUCTION_MODELS[model_name]()
    cpu = cpu_cluster_throughput(
        model,
        setup.cpu_batch_per_trainer,
        setup.cpu_trainers,
        setup.cpu_sparse_ps,
        setup.cpu_dense_ps,
        tracer=tracer,
    )
    if setup.gpu_placement is PlacementStrategy.REMOTE_CPU:
        plan = plan_placement(
            model,
            BIG_BASIN,
            setup.gpu_placement,
            num_ps=setup.gpu_remote_ps,
            ps_platform=DUAL_SOCKET_CPU,
        )
    else:
        plan = plan_placement(model, BIG_BASIN, setup.gpu_placement)
    gpu = gpu_server_throughput(
        model, setup.gpu_batch, BIG_BASIN, plan, tracer=tracer
    )
    return ModelComparison(
        model_name=model_name,
        cpu=cpu,
        gpu=gpu,
        paper_throughput_ratio=setup.paper_relative_throughput,
        paper_efficiency_ratio=setup.paper_power_efficiency,
    )


def run(tracer: Tracer | NullTracer | None = None) -> Table3Result:
    return Table3Result(
        tuple(
            evaluate_setup(name, setup, tracer=tracer)
            for name, setup in PRODUCTION_SETUPS.items()
        )
    )


def render(result: Table3Result) -> str:
    rows = []
    for c in result.comparisons:
        setup = PRODUCTION_SETUPS[c.model_name]
        rows.append(
            [
                c.model_name,
                f"{setup.cpu_trainers}T/{setup.cpu_sparse_ps + setup.cpu_dense_ps}PS",
                setup.gpu_placement.value,
                setup.gpu_batch,
                f"{c.cpu.throughput:,.0f}",
                f"{c.gpu.throughput:,.0f}",
                f"{c.throughput_ratio:.2f}x (paper {c.paper_throughput_ratio}x)",
                f"{c.efficiency_ratio:.2f}x (paper {c.paper_efficiency_ratio}x)",
            ]
        )
    return render_table(
        [
            "model",
            "CPU setup",
            "EMB placement",
            "GPU batch",
            "CPU ex/s",
            "GPU ex/s",
            "GPU/CPU throughput",
            "GPU/CPU power eff",
        ],
        rows,
        title="Table III: CPU vs Big Basin optimal setup comparison",
    )
