"""Extension — real-process fault injection vs. the recovery analytics.

The paper's resilience discussion (and PR 3's single-process harness)
prices checkpoints and crash recovery analytically.  This extension closes
that loop with *real* worker deaths: it trains the hybrid multi-process
trainer twice —

1. an **uninterrupted reference** run, and
2. a **faulted** run with sharded checkpointing enabled, a chosen rank
   SIGKILLed at a chosen step/phase, survivors drained, and the worker set
   restarted from the newest valid manifest
   (:func:`repro.distributed.mp.run_hybrid_ft`)

— then gates on the restored run being **bit-identical** (losses, dense
digest, every table digest) and cross-validates the measured recovery
costs against the analytical model: measured checkpoint write time vs.
:func:`~repro.resilience.recovery.checkpoint_write_time_s`, measured
restore vs. :func:`~repro.resilience.recovery.restore_time_s`, and the
goodput ledger's measured useful-work fraction vs.
:func:`~repro.resilience.recovery.expected_goodput_fraction`.

The analytics model a remote checkpoint store behind a NIC; the measured
path writes to a local filesystem — so the "platform" fed to the model is
a live probe of that filesystem (streaming bandwidth + create latency)
duck-typed into the ``PlatformSpec`` surface the recovery functions read.
Agreement is expected in order of magnitude, not percent: the point is
that one analytical form prices both transports.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from types import SimpleNamespace

from ..analysis import render_table
from ..core.config import ModelConfig
from ..distributed.mp import (
    HybridRunConfig,
    KillSpec,
    RestartPolicy,
    run_hybrid,
    run_hybrid_ft,
)
from ..resilience.recovery import (
    checkpoint_write_time_s,
    expected_goodput_fraction,
    restore_time_s,
    young_daly_interval_s,
)
from .ext_mp_scaling import default_config

__all__ = [
    "MpFaultsResult",
    "probe_disk",
    "run",
    "render",
]


@dataclass(frozen=True)
class MpFaultsResult:
    """One kill-and-restart experiment with its analytical cross-check."""

    workers: int
    steps: int
    batch_size: int
    dtype: str
    kill_rank: int
    kill_step: int
    kill_phase: str
    # -- the gates ----------------------------------------------------------
    losses_identical: bool
    state_identical: bool
    restarts_used: int
    crashes: int
    resumed_step: int
    lost_steps: int
    checkpoints: int
    # -- measured vs. predicted --------------------------------------------
    checkpoint_bytes: int
    measured_write_s: float
    predicted_write_s: float
    measured_restore_s: float
    predicted_restore_s: float
    measured_drain_s: float
    measured_goodput: float  # useful / attempted examples
    predicted_goodput: float
    young_daly_s: float
    disk_bw_gbps: float
    wall_s: float

    @property
    def bitwise_identical(self) -> bool:
        return self.losses_identical and self.state_identical


def probe_disk(directory: str | pathlib.Path, probe_mb: int = 8):
    """Duck-typed ``PlatformSpec`` view of a local filesystem.

    ``nic.bandwidth`` is the measured streaming write bandwidth of
    ``directory`` (one fsynced ``probe_mb``-sized file), ``nic.latency_s``
    the create+fsync cost of an empty file, and
    ``system_mem_effective_bandwidth`` the read-back bandwidth — the three
    numbers :func:`~repro.resilience.recovery.checkpoint_write_time_s` /
    :func:`restore_time_s` consume.
    """
    directory = pathlib.Path(directory)
    payload = os.urandom(probe_mb << 20)
    probe = directory / ".disk-probe"
    t0 = time.perf_counter()
    with open(probe, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    write_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    probe.read_bytes()
    read_s = time.perf_counter() - t0
    tiny = directory / ".disk-probe-tiny"
    t0 = time.perf_counter()
    with open(tiny, "wb") as fh:
        fh.flush()
        os.fsync(fh.fileno())
    latency_s = time.perf_counter() - t0
    probe.unlink()
    tiny.unlink()
    bandwidth = len(payload) / max(write_s, 1e-9)
    return SimpleNamespace(
        nic=SimpleNamespace(bandwidth=bandwidth, latency_s=latency_s),
        system_mem_effective_bandwidth=len(payload) / max(read_s, 1e-9),
    )


def run(
    workers: int = 2,
    steps: int = 8,
    batch_size: int = 256,
    checkpoint_every: int = 2,
    kill_rank: int = 1,
    kill_step: int = 5,
    kill_phase: str = "loss",
    restarts: int = 1,
    seed: int = 0,
    dtype: str = "float64",
    checkpoint_dir: str | None = None,
    config: ModelConfig | None = None,
) -> MpFaultsResult:
    """Kill ``kill_rank`` at ``kill_step``, restart, and cross-validate.

    ``checkpoint_dir`` defaults to a temporary directory cleaned up after
    the run; pass a path to keep the manifests for inspection.
    """
    config = config or default_config(dtype=dtype)
    base = dict(
        workers=workers,
        steps=steps,
        batch_size=batch_size,
        seed=seed,
        reduction="ordered",
    )
    reference = run_hybrid(config, HybridRunConfig(**base))

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-mp-faults-")
        checkpoint_dir = tmp.name
    try:
        faulted_run = HybridRunConfig(
            **base,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
        ft = run_hybrid_ft(
            config,
            faulted_run,
            policy=RestartPolicy(max_restarts=restarts),
            kills=[KillSpec(rank=kill_rank, step=kill_step, phase=kill_phase)],
        )
        ckpt_bytes = sum(
            p.stat().st_size
            for p in pathlib.Path(checkpoint_dir).glob("shard-*.npz")
        )
        platform = probe_disk(checkpoint_dir)
    finally:
        if tmp is not None:
            tmp.cleanup()

    measured_write = ft.checkpoint_write_s
    predicted_write = checkpoint_write_time_s(
        ckpt_bytes, platform, shards=workers
    )
    measured_restore = (
        sum(c.restore_s for c in ft.crashes) / len(ft.crashes)
        if ft.crashes
        else 0.0
    )
    predicted_restore = restore_time_s(ckpt_bytes, platform, shards=workers)
    # Goodput cross-check: the measured window saw exactly the injected
    # crashes, so the model's MTBF is wall time / crashes; its interval is
    # the measured time between checkpoints.
    interval_s = checkpoint_every * ft.result.mean_step_s
    mtbf_s = ft.wall_s / max(1, len(ft.crashes))
    predicted_goodput = expected_goodput_fraction(
        interval_s,
        max(measured_write, 1e-9),
        mtbf_s,
        restore_s=measured_restore,
    )
    return MpFaultsResult(
        workers=workers,
        steps=steps,
        batch_size=batch_size,
        dtype=dtype,
        kill_rank=kill_rank,
        kill_step=kill_step,
        kill_phase=kill_phase,
        losses_identical=ft.result.losses == reference.losses,
        state_identical=ft.result.state_digest() == reference.state_digest(),
        restarts_used=ft.restarts_used,
        crashes=len(ft.crashes),
        resumed_step=ft.crashes[0].resumed_step if ft.crashes else -1,
        lost_steps=sum(c.lost_steps for c in ft.crashes),
        checkpoints=len(ft.checkpoints),
        checkpoint_bytes=ckpt_bytes,
        measured_write_s=measured_write,
        predicted_write_s=predicted_write,
        measured_restore_s=measured_restore,
        predicted_restore_s=predicted_restore,
        measured_drain_s=max((c.drain_s for c in ft.crashes), default=0.0),
        measured_goodput=ft.goodput_fraction(),
        predicted_goodput=predicted_goodput,
        young_daly_s=young_daly_interval_s(mtbf_s, max(measured_write, 1e-9)),
        disk_bw_gbps=platform.nic.bandwidth / 1e9,
        wall_s=ft.wall_s,
    )


def render(result: MpFaultsResult) -> str:
    gate = "bit-identical" if result.bitwise_identical else "MISMATCH"
    rows = [
        [
            "checkpoint write (s)",
            f"{result.measured_write_s:.4f}",
            f"{result.predicted_write_s:.4f}",
        ],
        [
            "restore (s)",
            f"{result.measured_restore_s:.4f}",
            f"{result.predicted_restore_s:.4f}",
        ],
        [
            "goodput fraction",
            f"{result.measured_goodput:.3f}",
            f"{result.predicted_goodput:.3f}",
        ],
        ["drain (s)", f"{result.measured_drain_s:.4f}", "-"],
        ["young-daly interval (s)", "-", f"{result.young_daly_s:.3f}"],
    ]
    return render_table(
        ["recovery cost", "measured", "predicted"],
        rows,
        title=(
            f"MP fault injection — W={result.workers} {result.dtype}, "
            f"SIGKILL rank {result.kill_rank} @ step {result.kill_step} "
            f"({result.kill_phase}); resumed from step {result.resumed_step}, "
            f"{result.lost_steps} step(s) lost, {result.checkpoints} "
            f"checkpoint(s) of {result.checkpoint_bytes / 1e6:.2f} MB total "
            f"on a {result.disk_bw_gbps:.2f} GB/s store — restored run "
            f"{gate} to the uninterrupted reference"
        ),
    )
