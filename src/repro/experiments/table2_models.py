"""Table II — descriptions of the three production models.

Regenerates the model-description table from the sampled production
configs, including derived quantities (embedding GB, parameter counts)
that must land in the paper's stated orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import PRODUCTION_MODELS
from ..core.config import ModelConfig

__all__ = ["Table2Result", "run", "render"]


@dataclass(frozen=True)
class Table2Result:
    models: tuple[ModelConfig, ...]

    def by_name(self) -> dict[str, ModelConfig]:
        return {m.name: m for m in self.models}


def run() -> Table2Result:
    return Table2Result(tuple(build() for build in PRODUCTION_MODELS.values()))


def render(result: Table2Result) -> str:
    rows = []
    for m in result.models:
        desc = m.describe()
        rows.append(
            [
                m.name,
                m.num_sparse,
                m.num_dense,
                f"{desc['embedding_gb']:.0f} GB",
                f"{desc['mean_lookups']:.0f}",
                desc["bottom_mlp"],
                desc["top_mlp"],
                f"{m.total_parameters / 1e9:.1f}B",
            ]
        )
    return render_table(
        [
            "model",
            "# sparse",
            "# dense",
            "embedding size",
            "lookups/table",
            "bottom MLP",
            "top MLP",
            "total params",
        ],
        rows,
        title="Table II: production model descriptions",
    )
