"""Figure 11 — batch-size scaling on CPU and GPU.

Targets: CPU throughput peaks at a moderate batch and declines (cache
spill); GPU throughput rises roughly linearly while launch overheads
amortize, then saturates as communication balances compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import BATCH_SWEEP_CPU, BATCH_SWEEP_GPU, make_test_model
from ..core.config import ModelConfig
from ..hardware import BIG_BASIN
from ..obs.tracer import NullTracer, Tracer
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["Fig11Result", "run", "render", "cpu_point", "gpu_point"]


@dataclass(frozen=True)
class Fig11Result:
    cpu_batches: tuple[int, ...]
    cpu_throughput: tuple[float, ...]
    gpu_batches: tuple[int, ...]
    gpu_throughput: tuple[float, ...]

    @property
    def cpu_optimal_batch(self) -> int:
        best = max(range(len(self.cpu_batches)), key=lambda i: self.cpu_throughput[i])
        return self.cpu_batches[best]

    @property
    def gpu_saturation_ratio(self) -> float:
        """Throughput gain over the last batch doubling — ~1 means saturated."""
        return self.gpu_throughput[-1] / self.gpu_throughput[-2]


def default_model() -> ModelConfig:
    return make_test_model(1024, 64, name="fig11")


def cpu_point(model: ModelConfig, batch: int) -> float:
    """One CPU grid point (module-level: picklable and cache-keyable)."""
    return cpu_cluster_throughput(model, batch, 1, 1, 1).throughput


def gpu_point(model: ModelConfig, batch: int) -> float:
    """One GPU grid point (re-plans placement; deterministic per params)."""
    plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    return gpu_server_throughput(model, batch, BIG_BASIN, plan).throughput


def run(
    model: ModelConfig | None = None,
    cpu_batches: tuple[int, ...] = BATCH_SWEEP_CPU,
    gpu_batches: tuple[int, ...] = BATCH_SWEEP_GPU,
    tracer: Tracer | NullTracer | None = None,
    runner=None,
) -> Fig11Result:
    """Sweep batch sizes; with a :class:`~repro.runtime.SweepRunner` the grid
    points execute in parallel and/or hit the on-disk result cache (the
    serial ``runner=None`` path is unchanged and keeps per-point tracing)."""
    model = model or default_model()
    if runner is not None:
        cpu = tuple(
            runner.map(
                cpu_point,
                [{"model": model, "batch": b} for b in cpu_batches],
                namespace="fig11.cpu",
            )
        )
        gpu = tuple(
            runner.map(
                gpu_point,
                [{"model": model, "batch": b} for b in gpu_batches],
                namespace="fig11.gpu",
            )
        )
        return Fig11Result(cpu_batches, cpu, gpu_batches, gpu)
    cpu = tuple(
        cpu_cluster_throughput(model, b, 1, 1, 1, tracer=tracer).throughput
        for b in cpu_batches
    )
    plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    gpu = tuple(
        gpu_server_throughput(model, b, BIG_BASIN, plan, tracer=tracer).throughput
        for b in gpu_batches
    )
    return Fig11Result(cpu_batches, cpu, gpu_batches, gpu)


def render(result: Fig11Result) -> str:
    cpu_rows = [
        [b, f"{t:,.0f}", f"{t / max(result.cpu_throughput):.2f}"]
        for b, t in zip(result.cpu_batches, result.cpu_throughput)
    ]
    gpu_rows = [
        [b, f"{t:,.0f}", f"{t / max(result.gpu_throughput):.2f}"]
        for b, t in zip(result.gpu_batches, result.gpu_throughput)
    ]
    cpu_table = render_table(
        ["batch/trainer", "ex/s", "vs peak"],
        cpu_rows,
        title=f"Figure 11 (left): CPU batch scaling — optimum at {result.cpu_optimal_batch}",
    )
    gpu_table = render_table(
        ["global batch", "ex/s", "vs peak"],
        gpu_rows,
        title="Figure 11 (right): GPU batch scaling (saturating)",
    )
    return cpu_table + "\n\n" + gpu_table
