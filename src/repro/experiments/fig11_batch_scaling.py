"""Figure 11 — batch-size scaling on CPU and GPU.

Targets: CPU throughput peaks at a moderate batch and declines (cache
spill); GPU throughput rises roughly linearly while launch overheads
amortize, then saturates as communication balances compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import BATCH_SWEEP_CPU, BATCH_SWEEP_GPU, make_test_model
from ..core.config import ModelConfig
from ..hardware import BIG_BASIN
from ..obs.tracer import NullTracer, Tracer
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["Fig11Result", "run", "render"]


@dataclass(frozen=True)
class Fig11Result:
    cpu_batches: tuple[int, ...]
    cpu_throughput: tuple[float, ...]
    gpu_batches: tuple[int, ...]
    gpu_throughput: tuple[float, ...]

    @property
    def cpu_optimal_batch(self) -> int:
        best = max(range(len(self.cpu_batches)), key=lambda i: self.cpu_throughput[i])
        return self.cpu_batches[best]

    @property
    def gpu_saturation_ratio(self) -> float:
        """Throughput gain over the last batch doubling — ~1 means saturated."""
        return self.gpu_throughput[-1] / self.gpu_throughput[-2]


def default_model() -> ModelConfig:
    return make_test_model(1024, 64, name="fig11")


def run(
    model: ModelConfig | None = None,
    cpu_batches: tuple[int, ...] = BATCH_SWEEP_CPU,
    gpu_batches: tuple[int, ...] = BATCH_SWEEP_GPU,
    tracer: Tracer | NullTracer | None = None,
) -> Fig11Result:
    model = model or default_model()
    cpu = tuple(
        cpu_cluster_throughput(model, b, 1, 1, 1, tracer=tracer).throughput
        for b in cpu_batches
    )
    plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    gpu = tuple(
        gpu_server_throughput(model, b, BIG_BASIN, plan, tracer=tracer).throughput
        for b in gpu_batches
    )
    return Fig11Result(cpu_batches, cpu, gpu_batches, gpu)


def render(result: Fig11Result) -> str:
    cpu_rows = [
        [b, f"{t:,.0f}", f"{t / max(result.cpu_throughput):.2f}"]
        for b, t in zip(result.cpu_batches, result.cpu_throughput)
    ]
    gpu_rows = [
        [b, f"{t:,.0f}", f"{t / max(result.gpu_throughput):.2f}"]
        for b, t in zip(result.gpu_batches, result.gpu_throughput)
    ]
    cpu_table = render_table(
        ["batch/trainer", "ex/s", "vs peak"],
        cpu_rows,
        title=f"Figure 11 (left): CPU batch scaling — optimum at {result.cpu_optimal_batch}",
    )
    gpu_table = render_table(
        ["global batch", "ex/s", "vs peak"],
        gpu_rows,
        title="Figure 11 (right): GPU batch scaling (saturating)",
    )
    return cpu_table + "\n\n" + gpu_table
