"""Figure 15 — accuracy gap vs batch size (real numpy training).

This is a *functional* experiment: an actual DLRM is trained on synthetic
teacher-labeled click data.  The paper's protocol is followed:

* a fixed example budget (larger batches therefore take proportionally
  fewer optimizer steps — the mechanism behind big-batch quality loss);
* the learning rate is re-tuned per batch size ("manual tuning" is a
  log-grid sweep; the AutoML variant uses the Bayesian strategy);
* quality is normalized entropy on one shared held-out set;
* the reported number is the percent NE gap vs the small-batch baseline,
  which the paper finds grows with batch size even after tuning.

A second driver reproduces the §VI-C observation that the GPU setup
(fewer workers, tighter synchronization) can reach slightly *better*
quality than the asynchronous many-worker CPU setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..core import (
    Adagrad,
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    Trainer,
    bayesian_search,
    evaluate,
    grid_search,
    ne_gap_percent,
    uniform_tables,
)
from ..data import SyntheticDataGenerator
from ..distributed import EASGDConfig, EASGDTrainer

__all__ = [
    "BatchPoint",
    "Fig15Result",
    "SyncModeResult",
    "accuracy_model",
    "train_eval_point",
    "run",
    "run_sync_mode_comparison",
    "render",
]


def accuracy_model() -> ModelConfig:
    """A small DLRM sized for real (numpy) training in seconds."""
    return ModelConfig(
        name="fig15",
        num_dense=16,
        tables=uniform_tables(6, 2000, dim=16, mean_lookups=3.0),
        bottom_mlp=MLPSpec((32, 16)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
    )


@dataclass(frozen=True)
class BatchPoint:
    batch_size: int
    tuned_lr: float
    normalized_entropy: float
    ne_gap_percent: float  # vs the baseline batch
    steps_taken: int


@dataclass(frozen=True)
class Fig15Result:
    baseline_batch: int
    baseline_ne: float
    points: tuple[BatchPoint, ...]

    def gaps(self) -> list[float]:
        return [p.ne_gap_percent for p in self.points]

    def monotone_fraction(self) -> float:
        """Fraction of adjacent batch-size pairs where the gap grows."""
        gaps = self.gaps()
        if len(gaps) < 2:
            return 1.0
        ups = sum(1 for a, b in zip(gaps, gaps[1:]) if b >= a)
        return ups / (len(gaps) - 1)


def _train_and_eval(
    config: ModelConfig,
    batch_size: int,
    lr: float,
    example_budget: int,
    eval_batches: list,
    teacher,
    data_seed: int,
    model_seed: int,
) -> tuple[float, int]:
    gen = SyntheticDataGenerator(config, rng=data_seed, teacher=teacher)
    model = DLRM(config, rng=model_seed)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
    )
    result = trainer.train(gen.batches(batch_size), max_examples=example_budget)
    ne = evaluate(model, eval_batches)["normalized_entropy"]
    return ne, result.steps


def train_eval_point(
    batch_size: int,
    lr: float,
    example_budget: int,
    data_seed: int,
    model_seed: int,
    teacher_seed: int,
    eval_seed: int,
    num_eval_batches: int = 3,
    eval_batch_size: int = 2048,
) -> dict:
    """One fully self-contained Fig 15 training run (picklable, cacheable).

    Rebuilds the teacher and the held-out evaluation batches from their
    seeds; :class:`~repro.data.ClickModel` is pure after ``__init__`` (label
    draws come from the *generator's* RNG), so a reconstructed teacher is
    bit-identical to one shared in-process.
    """
    from ..data import ClickModel

    config = accuracy_model()
    teacher = ClickModel(config, rng=teacher_seed)
    eval_gen = SyntheticDataGenerator(config, rng=eval_seed, teacher=teacher)
    eval_batches = [eval_gen.batch(eval_batch_size) for _ in range(num_eval_batches)]
    ne, steps = _train_and_eval(
        config, batch_size, lr, example_budget, eval_batches, teacher,
        data_seed, model_seed,
    )
    return {"ne": float(ne), "steps": int(steps)}


def run(
    baseline_batch: int = 128,
    gpu_batches: tuple[int, ...] = (256, 512, 1024, 2048),
    example_budget: int = 24_000,
    tuning_trials: int = 5,
    num_seeds: int = 3,
    seed: int = 0,
    use_bayesian: bool = False,
    runner=None,
) -> Fig15Result:
    """Tune LR per batch size, train on the shared budget, report NE gaps.

    NE is averaged over ``num_seeds`` model initializations — at this model
    scale a single run's NE noise is comparable to the batch-size effect,
    so the gap is measured on the seed-averaged quality (the paper
    similarly trains on "high volumes of data" to resolve ~0.1% gaps).

    With a :class:`~repro.runtime.SweepRunner` (and ``use_bayesian=False``)
    every (batch, lr, seed) training run becomes an independent grid point
    executed in parallel and/or served from the result cache; the point
    grid and the best-LR selection replicate :func:`grid_search` exactly,
    so the parallel path is numerically identical to the serial one
    (Bayesian search is inherently sequential and stays serial).
    """
    if example_budget < baseline_batch:
        raise ValueError("example_budget must cover at least one baseline batch")
    if num_seeds < 1:
        raise ValueError("num_seeds must be >= 1")
    if runner is not None and not use_bayesian:
        return _run_parallel(
            baseline_batch, gpu_batches, example_budget, tuning_trials,
            num_seeds, seed, runner,
        )
    config = accuracy_model()
    # One shared teacher; the held-out evaluation stream uses a *different*
    # RNG than the training streams (same distribution, disjoint examples —
    # sharing the raw stream would let large-batch arms train on the exact
    # eval batches).
    from ..data import ClickModel

    teacher = ClickModel(config, rng=seed + 999)
    eval_gen = SyntheticDataGenerator(config, rng=seed + 5000, teacher=teacher)
    eval_batches = [eval_gen.batch(2048) for _ in range(3)]
    data_seed = seed  # identical training stream family for every arm

    search = bayesian_search if use_bayesian else grid_search
    results: dict[int, tuple[float, float, int]] = {}
    for batch in (baseline_batch, *gpu_batches):

        def objective(lr: float, batch=batch) -> float:
            # Tune on the real budget, averaged over two seeds for stability.
            nes = [
                _train_and_eval(
                    config, batch, lr, example_budget, eval_batches, teacher,
                    data_seed, seed + 1 + s,
                )[0]
                for s in range(2)
            ]
            return float(np.mean(nes))

        kwargs = {"num": tuning_trials}
        if use_bayesian:
            kwargs["rng"] = seed
        best = search(objective, 5e-3, 0.5, **kwargs).best
        nes, steps = [], 0
        for s in range(num_seeds):
            ne, steps = _train_and_eval(
                config, batch, best.learning_rate, example_budget, eval_batches,
                teacher, data_seed, seed + 101 + s,
            )
            nes.append(ne)
        results[batch] = (best.learning_rate, float(np.mean(nes)), steps)

    return _assemble(baseline_batch, gpu_batches, results)


def _assemble(
    baseline_batch: int,
    gpu_batches: tuple[int, ...],
    results: dict[int, tuple[float, float, int]],
) -> Fig15Result:
    baseline_ne = results[baseline_batch][1]
    points = tuple(
        BatchPoint(
            batch_size=batch,
            tuned_lr=results[batch][0],
            normalized_entropy=results[batch][1],
            ne_gap_percent=ne_gap_percent(results[batch][1], baseline_ne),
            steps_taken=results[batch][2],
        )
        for batch in gpu_batches
    )
    return Fig15Result(
        baseline_batch=baseline_batch, baseline_ne=baseline_ne, points=points
    )


def _run_parallel(
    baseline_batch: int,
    gpu_batches: tuple[int, ...],
    example_budget: int,
    tuning_trials: int,
    num_seeds: int,
    seed: int,
    runner,
) -> Fig15Result:
    """Grid-search Fig 15 as two flat point sweeps over a SweepRunner.

    Phase 1 evaluates every (batch, lr, tuning-seed) combination; phase 2
    runs the ``num_seeds`` final trainings at each batch's tuned LR.  The
    LR grid (log-spaced, ``tuning_trials`` points) and the argmin rule
    (first minimum in LR order, NE meaned over two tuning seeds) replicate
    the serial :func:`~repro.core.tuning.grid_search` path bit for bit.
    """
    if tuning_trials < 2:
        raise ValueError(f"num must be >= 2, got {tuning_trials}")
    common = {
        "example_budget": example_budget,
        "data_seed": seed,
        "teacher_seed": seed + 999,
        "eval_seed": seed + 5000,
    }
    lrs = [float(lr) for lr in np.logspace(np.log10(5e-3), np.log10(0.5), tuning_trials)]
    batches = (baseline_batch, *gpu_batches)
    tune_points = [
        {"batch_size": b, "lr": lr, "model_seed": seed + 1 + s, **common}
        for b in batches
        for lr in lrs
        for s in range(2)
    ]
    tune_raw = runner.map(train_eval_point, tune_points, namespace="fig15.tune")

    best_lrs: dict[int, float] = {}
    idx = 0
    for b in batches:
        best_lr, best_loss = None, None
        for lr in lrs:
            loss = float(np.mean([tune_raw[idx]["ne"], tune_raw[idx + 1]["ne"]]))
            idx += 2
            if best_loss is None or loss < best_loss:  # first minimum wins ties
                best_lr, best_loss = lr, loss
        best_lrs[b] = best_lr

    final_points = [
        {"batch_size": b, "lr": best_lrs[b], "model_seed": seed + 101 + s, **common}
        for b in batches
        for s in range(num_seeds)
    ]
    final_raw = runner.map(train_eval_point, final_points, namespace="fig15.final")

    results: dict[int, tuple[float, float, int]] = {}
    idx = 0
    for b in batches:
        chunk = final_raw[idx : idx + num_seeds]
        idx += num_seeds
        results[b] = (
            best_lrs[b],
            float(np.mean([r["ne"] for r in chunk])),
            chunk[-1]["steps"],
        )
    return _assemble(baseline_batch, gpu_batches, results)


@dataclass(frozen=True)
class SyncModeResult:
    """§VI-C: CPU-style async many-worker vs GPU-style tight sync."""

    async_ne: float  # EASGD, many workers
    sync_ne: float  # single worker (GPU-server-style)

    @property
    def gpu_style_gap_percent(self) -> float:
        """Negative == the GPU-style setup reached better quality."""
        return ne_gap_percent(self.sync_ne, self.async_ne)


def run_sync_mode_comparison(
    num_async_workers: int = 4,
    batch_size: int = 128,
    example_budget: int = 40_000,
    lr: float = 0.05,
    seed: int = 0,
) -> SyncModeResult:
    from ..data import ClickModel

    config = accuracy_model()
    teacher = ClickModel(config, rng=seed + 999)
    eval_gen = SyntheticDataGenerator(config, rng=seed + 5000, teacher=teacher)
    eval_batches = [eval_gen.batch(2048) for _ in range(2)]

    gen_async = SyntheticDataGenerator(config, rng=seed, teacher=teacher)
    easgd = EASGDTrainer(
        config, EASGDConfig(num_workers=num_async_workers, tau=8), lr=lr, rng=seed + 1
    )
    easgd.train(gen_async.batches(batch_size), max_examples=example_budget)
    async_ne = evaluate(easgd.center_dlrm(), eval_batches)["normalized_entropy"]

    gen_sync = SyntheticDataGenerator(config, rng=seed, teacher=teacher)
    model = DLRM(config, rng=seed + 1)
    trainer = Trainer(
        model, lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr)
    )
    trainer.train(gen_sync.batches(batch_size), max_examples=example_budget)
    sync_ne = evaluate(model, eval_batches)["normalized_entropy"]
    return SyncModeResult(async_ne=async_ne, sync_ne=sync_ne)


def render(result: Fig15Result) -> str:
    rows = [
        [
            p.batch_size,
            f"{p.tuned_lr:.4f}",
            p.steps_taken,
            f"{p.normalized_entropy:.4f}",
            f"{p.ne_gap_percent:+.2f}%",
        ]
        for p in result.points
    ]
    table = render_table(
        ["batch", "tuned lr", "steps", "NE", "gap vs baseline"],
        rows,
        title=(
            f"Figure 15: NE gap vs batch size after LR tuning "
            f"(baseline batch {result.baseline_batch}, NE {result.baseline_ne:.4f})"
        ),
    )
    return table
