"""Table I — hardware platform details.

Regenerates the platform-comparison table directly from the hardware specs
so any drift between code and paper is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..hardware import BIG_BASIN, DUAL_SOCKET_CPU, GB, TB, ZION, PlatformSpec

__all__ = ["Table1Result", "run", "render"]


@dataclass(frozen=True)
class Table1Result:
    platforms: tuple[PlatformSpec, ...]

    def by_name(self) -> dict[str, PlatformSpec]:
        return {p.name: p for p in self.platforms}


def run() -> Table1Result:
    return Table1Result((DUAL_SOCKET_CPU, BIG_BASIN, ZION))


def _fmt_mem(size: float) -> str:
    if size >= TB:
        return f"~{size / TB:.0f} TB"
    return f"{size / GB:.0f} GB"


def render(result: Table1Result) -> str:
    rows = []
    for p in result.platforms:
        rows.append(
            [
                p.name,
                f"{p.num_gpus}x {p.gpu.name}" if p.has_gpus else "-",
                _fmt_mem(p.gpu.mem_capacity) if p.has_gpus else "-",
                _fmt_mem(p.system_memory),
                f"{p.num_cpu_sockets} sockets",
                p.nic.name,
                f"{p.nameplate_watts:.0f} W",
            ]
        )
    return render_table(
        [
            "platform",
            "accelerators",
            "accel memory",
            "system memory",
            "CPU",
            "interconnect",
            "power",
        ],
        rows,
        title="Table I: hardware platform details",
    )
