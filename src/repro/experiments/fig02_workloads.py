"""Figure 2 — training frequency vs duration per workload family.

Regenerates the fleet population and reports each family's runs/day and
mean duration; recommendation workloads (News Feed, Search) must dominate
training frequency.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..fleet import sample_fleet_runs

__all__ = ["FamilyStats", "Fig2Result", "run", "render"]


@dataclass(frozen=True)
class FamilyStats:
    family: str
    model_kind: str
    runs_per_day: float
    mean_duration_hours: float
    p95_duration_hours: float


@dataclass(frozen=True)
class Fig2Result:
    families: tuple[FamilyStats, ...]
    num_days: int

    def by_family(self) -> dict[str, FamilyStats]:
        return {f.family: f for f in self.families}

    def recommendation_share(self) -> float:
        total = sum(f.runs_per_day for f in self.families)
        rec = sum(
            f.runs_per_day for f in self.families if f.model_kind == "recommendation"
        )
        return rec / total


def run(seed: int = 0, num_days: int = 7) -> Fig2Result:
    runs = sample_fleet_runs(seed, num_days=num_days)
    grouped: dict[str, list] = collections.defaultdict(list)
    kinds: dict[str, str] = {}
    for r in runs:
        grouped[r.family].append(r.duration_hours)
        kinds[r.family] = r.model_kind
    stats = tuple(
        FamilyStats(
            family=family,
            model_kind=kinds[family],
            runs_per_day=len(durations) / num_days,
            mean_duration_hours=float(np.mean(durations)),
            p95_duration_hours=float(np.percentile(durations, 95)),
        )
        for family, durations in sorted(grouped.items())
    )
    return Fig2Result(families=stats, num_days=num_days)


def render(result: Fig2Result) -> str:
    rows = [
        [
            f.family,
            f.model_kind,
            f"{f.runs_per_day:.0f}",
            f"{f.mean_duration_hours:.1f}",
            f"{f.p95_duration_hours:.1f}",
        ]
        for f in result.families
    ]
    table = render_table(
        ["workload", "model kind", "runs/day", "mean hours", "p95 hours"],
        rows,
        title=f"Figure 2: workload frequency and duration over {result.num_days} days",
    )
    share = result.recommendation_share()
    return table + f"\nrecommendation share of training runs: {share:.0%}"
