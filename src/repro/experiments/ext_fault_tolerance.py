"""Extension experiment — fault tolerance economics (§III-A.6, §IV-B).

The paper motivates its asynchronous production design with resilience:
"at the scale of hundreds of machines, host failures are routine" — but it
reports no numbers for what a failure *costs*.  This experiment measures
two such curves in the event-level cluster simulation:

1. **Goodput vs. checkpoint interval** (async mode, MTBF-sampled sparse-PS
   crashes).  Frequent checkpoints burn throughput on write stalls; rare
   checkpoints lose large rollback windows per crash.  The measured
   optimum is compared against the first-order Young/Daly prediction
   ``sqrt(2 * checkpoint_cost * MTBF)`` and the analytical goodput
   fraction from :func:`repro.resilience.expected_goodput_fraction`.

2. **Sync vs. async under an identical fault plan** (one scheduled
   sparse-PS crash).  Fully-synchronous training stalls the whole cluster
   through recovery and rolls everything back to the last checkpoint;
   EASGD/Hogwild async loses only the crashed shard's window and keeps the
   survivors training — the quantitative form of the paper's
   async-resilience argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import make_test_model
from ..core.config import ModelConfig
from ..distributed import ClusterConfig, SyncMode, simulate_cpu_cluster
from ..resilience import (
    ComponentKind,
    FaultEvent,
    FaultPlan,
    checkpoint_write_time_s,
    expected_goodput_fraction,
    model_checkpoint_bytes,
    restore_time_s,
    young_daly_interval_s,
)

__all__ = [
    "IntervalPoint",
    "ModeOutcome",
    "FaultToleranceResult",
    "interval_point",
    "mode_point",
    "run",
    "render",
]

#: Checkpoint intervals swept (simulated seconds).
INTERVAL_SWEEP: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8)


def default_model() -> ModelConfig:
    """Small enough to simulate fast, big enough that restore time is real."""
    return make_test_model(128, 8, mlp="128^2", hash_size=200_000, dim=32)


@dataclass(frozen=True)
class IntervalPoint:
    """Measured + analytic goodput at one checkpoint interval."""

    interval_s: float
    goodput: float
    goodput_fraction: float  # measured, vs failure-free throughput
    analytic_fraction: float  # Young/Daly-style first-order prediction
    lost_examples: int
    crashes: int
    checkpoints_taken: int
    checkpoint_time_s: float


@dataclass(frozen=True)
class ModeOutcome:
    """One sync mode's outcome under the scripted crash scenario."""

    sync_mode: str
    goodput: float
    throughput: float
    availability: float
    goodput_fraction: float  # vs the failure-free baseline
    lost_examples: int
    crashes: int
    stall_time_s: float
    recovery_time_s: float


@dataclass(frozen=True)
class FaultToleranceResult:
    failure_free_goodput: float
    checkpoint_cost_s: float
    cluster_mtbf_s: float
    young_daly_s: float
    interval_points: tuple[IntervalPoint, ...]
    mode_outcomes: tuple[ModeOutcome, ...]

    def best_interval_s(self) -> float:
        """The measured-goodput-optimal checkpoint interval."""
        return max(self.interval_points, key=lambda p: p.goodput).interval_s

    def outcome(self, mode: str) -> ModeOutcome:
        for o in self.mode_outcomes:
            if o.sync_mode == mode:
                return o
        raise KeyError(mode)


# -- grid-point functions (module-level: picklable for SweepRunner) ----------


def _model_from_spec(spec: dict) -> ModelConfig:
    return make_test_model(**spec)


def interval_point(
    model_spec: dict,
    num_trainers: int,
    num_sparse_ps: int,
    num_dense_ps: int,
    batch_per_trainer: int,
    mtbf_s: float,
    interval_s: float,
    horizon_s: float,
    seed: int,
) -> dict:
    """One checkpoint-interval grid point (async, MTBF-sampled PS crashes).

    Returns the JSON-friendly resilience summary so the point is cacheable
    by :class:`~repro.runtime.ResultCache`.
    """
    model = _model_from_spec(model_spec)
    cfg = ClusterConfig(
        num_trainers=num_trainers,
        num_sparse_ps=num_sparse_ps,
        num_dense_ps=num_dense_ps,
        batch_per_trainer=batch_per_trainer,
        sync_mode=SyncMode.ASYNC,
        fault_plan=FaultPlan(sparse_ps_mtbf_s=mtbf_s, seed=seed),
        checkpoint_interval_s=interval_s,
        seed=seed,
    )
    return simulate_cpu_cluster(model, cfg, horizon_s=horizon_s).resilience_summary()


def mode_point(
    model_spec: dict,
    num_trainers: int,
    num_sparse_ps: int,
    num_dense_ps: int,
    batch_per_trainer: int,
    sync_mode: str,
    crash_time_s: float,
    interval_s: float,
    horizon_s: float,
    seed: int,
) -> dict:
    """One sync-mode grid point under a single scheduled sparse-PS crash."""
    model = _model_from_spec(model_spec)
    plan = FaultPlan(
        scheduled_crashes=(
            FaultEvent(kind=ComponentKind.SPARSE_PS, index=1, time_s=crash_time_s),
        ),
        seed=seed,
    )
    cfg = ClusterConfig(
        num_trainers=num_trainers,
        num_sparse_ps=num_sparse_ps,
        num_dense_ps=num_dense_ps,
        batch_per_trainer=batch_per_trainer,
        sync_mode=sync_mode,
        fault_plan=plan,
        checkpoint_interval_s=interval_s,
        seed=seed,
    )
    return simulate_cpu_cluster(model, cfg, horizon_s=horizon_s).resilience_summary()


def run(
    model: ModelConfig | None = None,
    num_trainers: int = 8,
    num_sparse_ps: int = 4,
    num_dense_ps: int = 1,
    batch_per_trainer: int = 200,
    horizon_s: float = 2.0,
    mtbf_s: float = 2.0,
    intervals: tuple[float, ...] = INTERVAL_SWEEP,
    seed: int = 0,
    runner=None,
) -> FaultToleranceResult:
    """Measure both curves; ``runner`` parallelizes/caches the grid points.

    ``mtbf_s`` is the per-sparse-PS mean time between failures; the
    cluster-level MTBF used for the Young/Daly prediction is
    ``mtbf_s / num_sparse_ps`` (any-of failure rate).
    """
    if model is None:
        model = default_model()
        model_spec = {"num_dense": 128, "num_sparse": 8, "mlp": "128^2",
                      "hash_size": 200_000, "dim": 32}
    else:
        model_spec = None  # serial path only; model objects don't cache
    common = dict(
        num_trainers=num_trainers,
        num_sparse_ps=num_sparse_ps,
        num_dense_ps=num_dense_ps,
        batch_per_trainer=batch_per_trainer,
        horizon_s=horizon_s,
        seed=seed,
    )

    # Failure-free baseline: same cluster, no plan, no checkpoints.
    base_cfg = ClusterConfig(
        num_trainers=num_trainers,
        num_sparse_ps=num_sparse_ps,
        num_dense_ps=num_dense_ps,
        batch_per_trainer=batch_per_trainer,
        seed=seed,
    )
    baseline = simulate_cpu_cluster(model, base_cfg, horizon_s=horizon_s)
    base_goodput = baseline.goodput

    platform = base_cfg.platform
    ckpt_cost = checkpoint_write_time_s(
        model_checkpoint_bytes(model), platform, shards=num_sparse_ps
    )
    restore_s = restore_time_s(
        2 * model.embedding_bytes, platform, shards=num_sparse_ps
    )
    cluster_mtbf = mtbf_s / num_sparse_ps
    yd = young_daly_interval_s(cluster_mtbf, ckpt_cost)

    # -- curve 1: goodput vs checkpoint interval (async, random crashes) ----
    grid = [dict(common, model_spec=model_spec, mtbf_s=mtbf_s, interval_s=tau)
            for tau in intervals]
    if runner is not None and model_spec is not None:
        summaries = runner.map(interval_point, grid, namespace="ext_faults.interval")
    elif model_spec is not None:
        summaries = [interval_point(**p) for p in grid]
    else:
        summaries = [
            _interval_point_model(
                model, **{k: v for k, v in p.items() if k != "model_spec"}
            )
            for p in grid
        ]
    points = tuple(
        IntervalPoint(
            interval_s=tau,
            goodput=s["goodput"],
            goodput_fraction=s["goodput"] / base_goodput if base_goodput else 0.0,
            analytic_fraction=expected_goodput_fraction(
                tau, ckpt_cost, cluster_mtbf, restore_s
            ),
            lost_examples=int(s["lost_examples"]),
            crashes=int(s["crashes"]),
            checkpoints_taken=int(s["checkpoints_taken"]),
            checkpoint_time_s=s["checkpoint_time_s"],
        )
        for tau, s in zip(intervals, summaries)
    )

    # -- curve 2: sync vs async under one scheduled sparse-PS crash ---------
    crash_t = 0.5 * horizon_s
    mode_interval = 0.125 * horizon_s
    outcomes = []
    for mode in (SyncMode.ASYNC, SyncMode.SYNC):
        kwargs = dict(common, sync_mode=mode, crash_time_s=crash_t,
                      interval_s=mode_interval)
        if model_spec is not None:
            s = mode_point(model_spec=model_spec, **kwargs)
        else:
            s = _mode_point_model(model, **kwargs)
        outcomes.append(
            ModeOutcome(
                sync_mode=mode,
                goodput=s["goodput"],
                throughput=s["throughput"],
                availability=s["availability"],
                goodput_fraction=s["goodput"] / base_goodput if base_goodput else 0.0,
                lost_examples=int(s["lost_examples"]),
                crashes=int(s["crashes"]),
                stall_time_s=s["stall_time_s"],
                recovery_time_s=s["recovery_time_s"],
            )
        )

    return FaultToleranceResult(
        failure_free_goodput=base_goodput,
        checkpoint_cost_s=ckpt_cost,
        cluster_mtbf_s=cluster_mtbf,
        young_daly_s=yd,
        interval_points=points,
        mode_outcomes=tuple(outcomes),
    )


def _interval_point_model(model: ModelConfig, *, mtbf_s, interval_s, horizon_s,
                          seed, **cluster_kw) -> dict:
    cfg = ClusterConfig(
        sync_mode=SyncMode.ASYNC,
        fault_plan=FaultPlan(sparse_ps_mtbf_s=mtbf_s, seed=seed),
        checkpoint_interval_s=interval_s,
        seed=seed,
        **cluster_kw,
    )
    return simulate_cpu_cluster(model, cfg, horizon_s=horizon_s).resilience_summary()


def _mode_point_model(model: ModelConfig, *, sync_mode, crash_time_s, interval_s,
                      horizon_s, seed, **cluster_kw) -> dict:
    plan = FaultPlan(
        scheduled_crashes=(
            FaultEvent(kind=ComponentKind.SPARSE_PS, index=1, time_s=crash_time_s),
        ),
        seed=seed,
    )
    cfg = ClusterConfig(
        sync_mode=sync_mode,
        fault_plan=plan,
        checkpoint_interval_s=interval_s,
        seed=seed,
        **cluster_kw,
    )
    return simulate_cpu_cluster(model, cfg, horizon_s=horizon_s).resilience_summary()


def render(result: FaultToleranceResult) -> str:
    interval_rows = [
        [
            f"{p.interval_s * 1e3:.0f} ms",
            f"{p.goodput:,.0f}",
            f"{100 * p.goodput_fraction:.1f}%",
            f"{100 * p.analytic_fraction:.1f}%",
            f"{p.crashes}",
            f"{p.lost_examples:,}",
            f"{p.checkpoints_taken}",
        ]
        for p in result.interval_points
    ]
    part1 = render_table(
        ["ckpt interval", "goodput ex/s", "vs failure-free", "Young/Daly pred.",
         "crashes", "lost ex", "ckpts"],
        interval_rows,
        title=(
            "Extension: goodput vs checkpoint interval (async, sparse-PS "
            f"MTBF-sampled crashes; cluster MTBF {result.cluster_mtbf_s * 1e3:.0f} ms, "
            f"ckpt cost {result.checkpoint_cost_s * 1e3:.1f} ms, "
            f"Young/Daly optimum {result.young_daly_s * 1e3:.0f} ms, "
            f"measured best {result.best_interval_s() * 1e3:.0f} ms)"
        ),
    )
    mode_rows = [
        [
            o.sync_mode,
            f"{o.goodput:,.0f}",
            f"{100 * o.goodput_fraction:.1f}%",
            f"{100 * o.availability:.1f}%",
            f"{o.lost_examples:,}",
            f"{o.stall_time_s * 1e3:.0f} ms",
            f"{o.recovery_time_s * 1e3:.0f} ms",
        ]
        for o in result.mode_outcomes
    ]
    part2 = render_table(
        ["sync mode", "goodput ex/s", "vs failure-free", "availability",
         "lost ex", "stall", "recovery"],
        mode_rows,
        title=(
            "Extension: sync vs async under one sparse-PS crash "
            f"(failure-free goodput {result.failure_free_goodput:,.0f} ex/s; "
            "§III-A.6's async-resilience argument, measured)"
        ),
    )
    return part1 + "\n\n" + part2
