"""Figure 1 — relative throughput of M1/M2/M3 across hardware and placement.

The figure shows, per production model, throughput normalized to the CPU
production setup for: Big Basin with its best placement, and Zion with
system-memory placement.  The headline shapes: throughput grows
CPU -> Big Basin -> Zion for M1/M2; M3 scales poorly on Big Basin (remote
placement, below CPU) while Zion recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import PRODUCTION_MODELS, PRODUCTION_SETUPS
from ..hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["ModelThroughputs", "Fig1Result", "run", "render"]


@dataclass(frozen=True)
class ModelThroughputs:
    model_name: str
    cpu: float
    big_basin: float
    big_basin_placement: str
    zion: float

    @property
    def big_basin_relative(self) -> float:
        return self.big_basin / self.cpu

    @property
    def zion_relative(self) -> float:
        return self.zion / self.cpu


@dataclass(frozen=True)
class Fig1Result:
    models: tuple[ModelThroughputs, ...]

    def by_name(self) -> dict[str, ModelThroughputs]:
        return {m.model_name: m for m in self.models}


def run() -> Fig1Result:
    out = []
    for name, setup in PRODUCTION_SETUPS.items():
        model = PRODUCTION_MODELS[name]()
        cpu = cpu_cluster_throughput(
            model,
            setup.cpu_batch_per_trainer,
            setup.cpu_trainers,
            setup.cpu_sparse_ps,
            setup.cpu_dense_ps,
        ).throughput
        if setup.gpu_placement is PlacementStrategy.REMOTE_CPU:
            bb_plan = plan_placement(
                model,
                BIG_BASIN,
                setup.gpu_placement,
                num_ps=setup.gpu_remote_ps,
                ps_platform=DUAL_SOCKET_CPU,
            )
        else:
            bb_plan = plan_placement(model, BIG_BASIN, setup.gpu_placement)
        big_basin = gpu_server_throughput(
            model, setup.gpu_batch, BIG_BASIN, bb_plan
        ).throughput
        zion_plan = plan_placement(model, ZION, PlacementStrategy.SYSTEM_MEMORY)
        zion = gpu_server_throughput(model, setup.gpu_batch, ZION, zion_plan).throughput
        out.append(
            ModelThroughputs(
                model_name=name,
                cpu=cpu,
                big_basin=big_basin,
                big_basin_placement=setup.gpu_placement.value,
                zion=zion,
            )
        )
    return Fig1Result(tuple(out))


def render(result: Fig1Result) -> str:
    rows = [
        [
            m.model_name,
            "1.00x",
            f"{m.big_basin_relative:.2f}x ({m.big_basin_placement})",
            f"{m.zion_relative:.2f}x (system_memory)",
        ]
        for m in result.models
    ]
    return render_table(
        ["model", "CPU cluster", "Big Basin", "Zion"],
        rows,
        title="Figure 1: relative training throughput (normalized to production CPU setup)",
    )
