"""Figure 5 — utilization distributions of a ranking model at fixed scale.

Replays many runs of one ranking model (same trainer/PS counts) through the
event-level cluster simulation with run-to-run configuration and hardware
jitter, then summarizes the per-resource utilization distributions.  The
reproduction targets: trainers show high CPU utilization with small spread;
parameter servers show lower means with a wider spread and longer tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import DistributionSummary, render_table, summarize
from ..configs import make_test_model
from ..core.config import ModelConfig
from ..fleet import UtilizationSamples, collect_utilization_samples

__all__ = ["Fig5Result", "run", "render"]


@dataclass(frozen=True)
class Fig5Result:
    summaries: dict[str, DistributionSummary]
    samples: UtilizationSamples

    @property
    def trainer_cpu(self) -> DistributionSummary:
        return self.summaries["trainer_cpu"]

    @property
    def sparse_ps_mem(self) -> DistributionSummary:
        return self.summaries["sparse_ps_mem"]


def default_model() -> ModelConfig:
    """A mid-size ranking model for the fixed-scale study."""
    return make_test_model(512, 32, name="fig5-ranking")


def run(
    num_runs: int = 30,
    num_trainers: int = 10,
    num_sparse_ps: int = 8,
    num_dense_ps: int = 2,
    seed: int = 0,
    model: ModelConfig | None = None,
) -> Fig5Result:
    samples = collect_utilization_samples(
        model or default_model(),
        num_runs=num_runs,
        num_trainers=num_trainers,
        num_sparse_ps=num_sparse_ps,
        num_dense_ps=num_dense_ps,
        horizon_s=0.5,
        seed=seed,
    )
    summaries = {name: summarize(arr) for name, arr in samples.as_dict().items()}
    return Fig5Result(summaries=summaries, samples=samples)


def render(result: Fig5Result) -> str:
    rows = []
    for name, s in result.summaries.items():
        rows.append(
            [
                name,
                f"{s.mean:.2f}",
                f"{s.std:.3f}",
                f"{s.p5:.2f}",
                f"{s.median:.2f}",
                f"{s.p95:.2f}",
                f"{s.tail_ratio:.2f}",
            ]
        )
    return render_table(
        ["resource", "mean", "std", "p5", "median", "p95", "p95/median"],
        rows,
        title="Figure 5: utilization distributions at fixed scale (fraction of capacity)",
    )
