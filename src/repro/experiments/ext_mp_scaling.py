"""Extension — measured multi-process scaling vs. the simulator's prediction.

The paper's scaling story (§IV–V) is told through an analytical model; this
extension closes the loop with *real* processes: it trains the same model
with :func:`repro.distributed.mp.run_hybrid` at 1/2/4/8 workers, measures
the per-step wall time, and cross-validates each point against
:func:`repro.distributed.mp.predict_step_time` — the event-simulator
composition of measured sub-batch compute time and socketpair
latency/bandwidth.  Reported per point: measured step time, predicted step
time, relative error, and speedup over the single-process baseline.

On an oversubscribed host (fewer cores than workers) the predictor models
OS time-sharing, so the curves stay meaningful — speedup saturates at the
core count and the relative-error bound still holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from ..distributed.mp import (
    CommProfile,
    HybridRunConfig,
    predict_step_time,
    probe_comm,
    run_hybrid,
)
from ..runtime.runner import available_cores

__all__ = [
    "ScalingPoint",
    "MpScalingResult",
    "default_config",
    "run",
    "sweep",
    "render",
    "render_sweep",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (workers, global batch) measurement with its prediction."""

    workers: int
    batch_size: int
    measured_step_s: float
    predicted_step_s: float
    sub_batch_step_s: float
    speedup: float  # single-process step time / measured step time
    rel_err: float  # |measured - predicted| / measured
    comm_s: float

    @property
    def within(self) -> float:
        """Relative error as a percentage (display convenience)."""
        return 100.0 * self.rel_err


@dataclass(frozen=True)
class MpScalingResult:
    points: tuple[ScalingPoint, ...]
    serial_step_s: float
    cores: int
    latency_us: float
    bandwidth_gbps: float
    barrier_us: float
    config_name: str
    mlp: str
    reduction: str


def default_config(
    mlp_width: int = 64,
    mlp_depth: int = 2,
    dim: int = 16,
    num_tables: int = 8,
    hash_size: int = 4000,
    mean_lookups: float = 4.0,
    dtype: str = "float32",
) -> ModelConfig:
    """A small-but-real DLRM for wall-clock scaling runs.

    The bottom stack ends at the embedding dimension (DOT interaction
    contract); widths parameterize the MLP-dim sweep.
    """
    return ModelConfig(
        name=f"mp-scaling-{mlp_width}^{mlp_depth}-d{dim}",
        num_dense=16,
        tables=uniform_tables(num_tables, hash_size, dim=dim, mean_lookups=mean_lookups),
        bottom_mlp=MLPSpec(tuple([mlp_width] * (mlp_depth - 1) + [dim])),
        top_mlp=MLPSpec(tuple([mlp_width] * mlp_depth)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype,
    )


def _measure_sub_batch(config: ModelConfig, local_batch: int, steps: int, reps: int, seed: int) -> float:
    """Single-process full-step seconds at ``local_batch`` via the bench
    harness's ``timed_train`` (the predictor's compute input)."""
    from repro.bench.harness import timed_train
    from ..data import SyntheticDataGenerator
    from ..runtime.runner import derive_seed

    gen = SyntheticDataGenerator(config, rng=derive_seed(seed, "data", 0))
    batches = [gen.batch(local_batch) for _ in range(steps)]
    return timed_train(config, batches, "fused", reps, warmup=1)


def run(
    worker_counts: tuple[int, ...] = (1, 2, 4),
    batch_size: int = 512,
    steps: int = 4,
    seed: int = 0,
    reps: int = 2,
    reduction: str = "ordered",
    config: ModelConfig | None = None,
    comm: CommProfile | None = None,
    cores: int | None = None,
) -> MpScalingResult:
    """Measure the hybrid trainer at each worker count and predict it.

    ``comm`` (socketpair probe) and ``cores`` default to live measurements
    of this host; inject fixed values for reproducible tests.
    """
    config = config or default_config()
    comm = comm or probe_comm()
    cores = available_cores() if cores is None else cores

    serial_step_s = _measure_sub_batch(config, batch_size, steps, reps, seed)
    points = []
    for world in worker_counts:
        if batch_size % world:
            raise ValueError(f"batch_size {batch_size} not divisible by {world}")
        local = batch_size // world
        sub_s = (
            serial_step_s
            if world == 1
            else _measure_sub_batch(config, local, steps, reps, seed)
        )
        best = None
        for _ in range(reps):
            res = run_hybrid(
                config,
                HybridRunConfig(
                    workers=world,
                    steps=steps,
                    batch_size=batch_size,
                    seed=seed,
                    reduction=reduction,
                ),
            )
            best = res if best is None or res.step_time_s < best.step_time_s else best
        pred = predict_step_time(
            config,
            world=world,
            local_batch=local,
            sub_batch_step_s=sub_s,
            comm=comm,
            cores=cores,
            reduction=reduction,
        )
        measured = best.step_time_s
        points.append(
            ScalingPoint(
                workers=world,
                batch_size=batch_size,
                measured_step_s=measured,
                predicted_step_s=pred.total_s,
                sub_batch_step_s=sub_s,
                speedup=serial_step_s / measured,
                rel_err=abs(measured - pred.total_s) / measured,
                comm_s=best.comm_s,
            )
        )
    return MpScalingResult(
        points=tuple(points),
        serial_step_s=serial_step_s,
        cores=cores,
        latency_us=comm.latency_s * 1e6,
        bandwidth_gbps=comm.bandwidth_bps / 1e9,
        barrier_us=comm.barrier_s * 1e6,
        config_name=config.name,
        mlp=config.top_mlp.notation(),
        reduction=reduction,
    )


def sweep(
    worker_counts: tuple[int, ...] = (1, 2, 4),
    batch_sizes: tuple[int, ...] = (256, 512),
    mlp_widths: tuple[int, ...] = (64, 128),
    steps: int = 4,
    seed: int = 0,
    reps: int = 2,
    reduction: str = "ordered",
) -> list[MpScalingResult]:
    """The batch-size x MLP-dim grid of scaling curves (shared comm probe)."""
    comm = probe_comm()
    cores = available_cores()
    results = []
    for width in mlp_widths:
        for batch in batch_sizes:
            results.append(
                run(
                    worker_counts=worker_counts,
                    batch_size=batch,
                    steps=steps,
                    seed=seed,
                    reps=reps,
                    reduction=reduction,
                    config=default_config(mlp_width=width),
                    comm=comm,
                    cores=cores,
                )
            )
    return results


def render(result: MpScalingResult) -> str:
    rows = [
        [
            str(p.workers),
            str(p.batch_size),
            f"{p.measured_step_s * 1e3:.2f}",
            f"{p.predicted_step_s * 1e3:.2f}",
            f"{p.within:.1f}%",
            f"{p.speedup:.2f}x",
            f"{p.comm_s * 1e3:.2f}",
        ]
        for p in result.points
    ]
    return render_table(
        ["workers", "batch", "measured ms", "predicted ms", "rel err", "speedup", "comm ms"],
        rows,
        title=(
            f"MP scaling — {result.config_name} ({result.reduction}), "
            f"{result.cores} cores, link {result.bandwidth_gbps:.1f} GB/s @ "
            f"{result.latency_us:.0f}us, barrier {result.barrier_us:.0f}us"
        ),
    )


def render_sweep(results: list[MpScalingResult]) -> str:
    return "\n\n".join(render(r) for r in results)
