"""Extension experiment — online serving of the trained model.

The paper characterizes *training* efficiency, but its models exist to
serve live click traffic (§II-A); the same batch-size and memory-system
economics (§V-B) govern the serving side.  Four measured views over the
:mod:`repro.serving` event simulation:

1. **Throughput–latency curve** (``run_curve``) — sweep offered load as a
   fraction of pool saturation and measure latency quantiles; the serving
   analogue of the paper's throughput-vs-batch-size trade-off.
2. **SLO-constrained capacity** (``run_slo``) — smallest replica pool per
   target QPS under a p99 bound, with the fleet-style power bill; the
   headroom above the work-conserving bound is the price of tail latency.
3. **Hot-row cache cross-validation** (``run_cache``) — measured LRU/LFU
   hit rates on Zipf traffic vs the analytic predictions in
   :mod:`repro.placement.cache` (Che approximation / top-k mass), plus
   the latency the cache buys.
4. **Checkpoint-refresh staleness** (``run_staleness``) — serve real
   scores from a stale snapshot, refresh to a trained checkpoint
   mid-traffic (:meth:`repro.core.Trainer.save_checkpoint` format), and
   measure the model-quality recovery alongside the refresh's latency
   cost.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace

import numpy as np

from ..analysis import render_table
from ..configs import make_test_model
from ..core.config import ModelConfig
from ..serving import (
    DEFAULT_CURVE_LOADS,
    SLO,
    CacheConfig,
    ServingConfig,
    TrafficConfig,
    plan_serving_capacity,
    replica_capacity_qps,
    simulate_serving,
    throughput_latency_curve,
)

__all__ = [
    "CurvePoint",
    "ServingCurveResult",
    "CapacityPoint",
    "ServingSLOResult",
    "CachePoint",
    "ServingCacheResult",
    "StalenessPhase",
    "ServingStalenessResult",
    "steady_state_hit_rate",
    "run_curve",
    "run_slo",
    "run_cache",
    "run_staleness",
    "render_curve",
    "render_slo",
    "render_cache",
    "render_staleness",
]


def default_model() -> ModelConfig:
    """Small enough that the event loop runs in seconds, big enough that
    the cache-capacity sweep spans interesting hit rates."""
    return make_test_model(64, 8, hash_size=50_000)


def _default_config(
    num_replicas: int, platform: str, cache: CacheConfig, seed: int
) -> ServingConfig:
    return ServingConfig(
        num_replicas=num_replicas, platform=platform, cache=cache, seed=seed
    )


# -- 1. throughput-latency curve ---------------------------------------------


@dataclass(frozen=True)
class CurvePoint:
    load_fraction: float
    offered_qps: float
    completed_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch: float
    cache_hit_rate: float
    warm_cache_hit_rate: float


@dataclass(frozen=True)
class ServingCurveResult:
    model_name: str
    platform: str
    num_replicas: int
    per_replica_capacity_qps: float
    predicted_cache_hit_rate: float
    slo: SLO
    points: tuple[CurvePoint, ...]

    @property
    def p99_monotone(self) -> bool:
        """p99 must rise with load over the congestion-dominated regime."""
        p = [pt.p99_ms for pt in self.points]
        return all(a <= b for a, b in zip(p, p[1:]))

    def slo_violations(self) -> list[float]:
        """Load fractions whose p99 breaks the SLO."""
        bound = self.slo.p99_ms
        if bound is None:
            return []
        return [pt.load_fraction for pt in self.points if pt.p99_ms > bound]

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "platform": self.platform,
            "replicas": self.num_replicas,
            "per_replica_capacity_qps": self.per_replica_capacity_qps,
            "predicted_cache_hit_rate": self.predicted_cache_hit_rate,
            "slo_p99_ms": self.slo.p99_ms,
            "p99_monotone": self.p99_monotone,
            "points": [
                {
                    "load_fraction": p.load_fraction,
                    "offered_qps": p.offered_qps,
                    "completed_qps": p.completed_qps,
                    "p50_ms": p.p50_ms,
                    "p95_ms": p.p95_ms,
                    "p99_ms": p.p99_ms,
                    "mean_batch": p.mean_batch,
                    "cache_hit_rate": p.cache_hit_rate,
                    "warm_cache_hit_rate": p.warm_cache_hit_rate,
                }
                for p in self.points
            ],
        }


def run_curve(
    model: ModelConfig | None = None,
    num_replicas: int = 2,
    platform: str = "cpu",
    cache_rows: int = 4096,
    policy: str = "lru",
    loads: tuple[float, ...] = DEFAULT_CURVE_LOADS,
    requests_per_point: int = 2000,
    slo: SLO = SLO(p99_ms=25.0),
    seed: int = 0,
) -> ServingCurveResult:
    model = model or default_model()
    cfg = _default_config(
        num_replicas, platform, CacheConfig(capacity_rows=cache_rows, policy=policy), seed
    )
    curve = throughput_latency_curve(
        model, cfg, loads=loads, requests_per_point=requests_per_point, seed=seed
    )
    per_replica = replica_capacity_qps(model, cfg)
    points = tuple(
        CurvePoint(
            load_fraction=frac,
            offered_qps=qps,
            completed_qps=res.completed_qps,
            p50_ms=res.p50_ms,
            p95_ms=res.p95_ms,
            p99_ms=res.p99_ms,
            mean_batch=float(np.mean(res.batch_sizes)) if len(res.batch_sizes) else 0.0,
            cache_hit_rate=res.measured_cache_hit_rate,
            warm_cache_hit_rate=res.warm_cache_hit_rate,
        )
        for frac, (qps, res) in zip(loads, curve)
    )
    return ServingCurveResult(
        model_name=model.name,
        platform=platform,
        num_replicas=num_replicas,
        per_replica_capacity_qps=per_replica,
        predicted_cache_hit_rate=curve[0][1].predicted_cache_hit_rate,
        slo=slo,
        points=points,
    )


def render_curve(result: ServingCurveResult) -> str:
    rows = [
        [
            f"{p.load_fraction:.0%}",
            f"{p.offered_qps:,.0f}",
            f"{p.completed_qps:,.0f}",
            f"{p.p50_ms:.2f}",
            f"{p.p95_ms:.2f}",
            f"{p.p99_ms:.2f}",
            f"{p.mean_batch:.1f}",
            f"{100 * p.cache_hit_rate:.1f}%",
        ]
        for p in result.points
    ]
    return render_table(
        ["load", "offered qps", "completed qps", "p50 ms", "p95 ms", "p99 ms",
         "mean batch", "cache hit"],
        rows,
        title=(
            f"Extension: throughput-latency curve — {result.model_name} on "
            f"{result.platform}, {result.num_replicas} replicas "
            f"(saturation {result.per_replica_capacity_qps * result.num_replicas:,.0f} qps; "
            f"p99 monotone: {result.p99_monotone})"
        ),
    )


# -- 2. SLO-constrained capacity ---------------------------------------------


@dataclass(frozen=True)
class CapacityPoint:
    target_qps: float
    num_replicas: int
    lower_bound_replicas: int  # work-conserving bound (demand / saturation)
    feasible: bool
    p99_ms: float
    power_watts: float
    qps_per_watt: float


@dataclass(frozen=True)
class ServingSLOResult:
    model_name: str
    platform: str
    slo: SLO
    per_replica_capacity_qps: float
    points: tuple[CapacityPoint, ...]

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "platform": self.platform,
            "slo_p99_ms": self.slo.p99_ms,
            "per_replica_capacity_qps": self.per_replica_capacity_qps,
            "points": [
                {
                    "target_qps": p.target_qps,
                    "replicas": p.num_replicas,
                    "lower_bound_replicas": p.lower_bound_replicas,
                    "feasible": p.feasible,
                    "p99_ms": p.p99_ms,
                    "power_watts": p.power_watts,
                    "qps_per_watt": p.qps_per_watt,
                }
                for p in self.points
            ],
        }


def run_slo(
    model: ModelConfig | None = None,
    platform: str = "cpu",
    cache_rows: int = 4096,
    policy: str = "lru",
    slo: SLO = SLO(p99_ms=5.0),
    target_multiples: tuple[float, ...] = (1.5, 3.0, 6.0),
    requests_per_point: int = 1200,
    seed: int = 0,
) -> ServingSLOResult:
    """Capacity plans at several demand levels (multiples of one replica's
    saturation throughput)."""
    model = model or default_model()
    cfg = _default_config(
        1, platform, CacheConfig(capacity_rows=cache_rows, policy=policy), seed
    )
    per_replica = replica_capacity_qps(model, cfg)
    points = []
    for mult in target_multiples:
        target = mult * per_replica
        plan = plan_serving_capacity(
            model, target, slo, cfg, requests_per_point=requests_per_point, seed=seed
        )
        lower = max(1, int(np.ceil(target / per_replica)))
        points.append(
            CapacityPoint(
                target_qps=target,
                num_replicas=plan.num_replicas,
                lower_bound_replicas=lower,
                feasible=plan.feasible,
                p99_ms=plan.p99_ms,
                power_watts=plan.power_watts,
                qps_per_watt=plan.qps_per_watt,
            )
        )
    return ServingSLOResult(
        model_name=model.name,
        platform=platform,
        slo=slo,
        per_replica_capacity_qps=per_replica,
        points=tuple(points),
    )


def render_slo(result: ServingSLOResult) -> str:
    rows = [
        [
            f"{p.target_qps:,.0f}",
            f"{p.num_replicas}",
            f"{p.lower_bound_replicas}",
            "yes" if p.feasible else "NO",
            f"{p.p99_ms:.2f}",
            f"{p.power_watts:,.0f}",
            f"{p.qps_per_watt:.2f}",
        ]
        for p in result.points
    ]
    return render_table(
        ["target qps", "replicas", "lower bound", "feasible", "p99 ms", "watts",
         "qps/W"],
        rows,
        title=(
            f"Extension: SLO-constrained capacity — {result.model_name} on "
            f"{result.platform}, p99 <= {result.slo.p99_ms} ms "
            f"(replica saturation {result.per_replica_capacity_qps:,.0f} qps; "
            "headroom above the lower bound is the price of tail latency)"
        ),
    )


# -- 3. hot-row cache cross-validation ---------------------------------------


@dataclass(frozen=True)
class CachePoint:
    policy: str
    capacity_rows: int
    measured_hit_rate: float  # raw in-window, includes cold-start misses
    warm_hit_rate: float  # cold-start (first-touch) misses excluded
    steady_state_hit_rate: float  # long-stream, warm-up discarded
    predicted_hit_rate: float
    p99_ms: float

    @property
    def abs_error(self) -> float:
        """Steady-state measurement vs analytic prediction — the
        like-for-like pair (both model a warmed cache)."""
        return abs(self.steady_state_hit_rate - self.predicted_hit_rate)

    @property
    def brackets_prediction(self) -> bool:
        """Finite-window consistency: raw (pessimistic) and warm
        (optimistic) estimates should bracket the steady-state value."""
        return self.measured_hit_rate <= self.predicted_hit_rate + 0.02 and (
            self.predicted_hit_rate <= self.warm_hit_rate + 0.02
        )


@dataclass(frozen=True)
class ServingCacheResult:
    model_name: str
    qps: float
    num_requests: int
    no_cache_p99_ms: float
    points: tuple[CachePoint, ...]

    @property
    def max_abs_error(self) -> float:
        return max(p.abs_error for p in self.points)

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "qps": self.qps,
            "requests": self.num_requests,
            "no_cache_p99_ms": self.no_cache_p99_ms,
            "max_abs_error": self.max_abs_error,
            "points": [
                {
                    "policy": p.policy,
                    "capacity_rows": p.capacity_rows,
                    "measured_hit_rate": p.measured_hit_rate,
                    "warm_hit_rate": p.warm_hit_rate,
                    "steady_state_hit_rate": p.steady_state_hit_rate,
                    "predicted_hit_rate": p.predicted_hit_rate,
                    "abs_error": p.abs_error,
                    "brackets_prediction": p.brackets_prediction,
                    "p99_ms": p.p99_ms,
                }
                for p in self.points
            ],
        }


def steady_state_hit_rate(
    policy: str,
    num_rows: int,
    capacity_rows: int,
    skew: float = 1.05,
    accesses: int = 200_000,
    warmup_fraction: float = 0.5,
    seed: int = 0,
) -> float:
    """Measured steady-state hit rate of one :class:`HotRowCache` on a
    long synthetic Zipf stream, warm-up window discarded.

    This is the like-for-like counterpart of the analytic predictions in
    :mod:`repro.placement.cache` (Che approximation for LRU, top-k mass
    for LFU), both of which model a warmed cache.
    """
    from ..data.distributions import sample_discrete_zipf
    from ..serving.cache import HotRowCache

    rng = np.random.default_rng(seed)
    cache = HotRowCache(min(capacity_rows, num_rows), policy)
    stream = sample_discrete_zipf(rng, accesses, num_rows, skew=skew)
    cut = int(len(stream) * warmup_fraction)
    cache.access(stream[:cut])
    h0, a0 = cache.hits, cache.accesses
    cache.access(stream[cut:])
    measured = cache.accesses - a0
    return (cache.hits - h0) / measured if measured else 0.0


def run_cache(
    model: ModelConfig | None = None,
    num_replicas: int = 1,
    platform: str = "cpu",
    load_fraction: float = 0.7,
    capacities: tuple[int, ...] = (1024, 4096, 16384),
    policies: tuple[str, ...] = ("lru", "lfu"),
    num_requests: int = 6000,
    steady_accesses: int = 200_000,
    seed: int = 0,
) -> ServingCacheResult:
    """Measured vs analytic hit rate per (policy, capacity).

    Two measurements per point: the *in-window* serving rates (raw and
    warm, which bracket the steady state over a finite traffic window)
    and the *steady-state* rate on a long dedicated Zipf stream with the
    warm-up discarded — the latter is what the analytics predict, so
    ``abs_error`` compares those two.  Single replica so one cache sees
    the whole stream (the analytic model's regime).
    """
    model = model or default_model()
    base = _default_config(num_replicas, platform, CacheConfig(), seed)
    qps = load_fraction * num_replicas * replica_capacity_qps(model, base)
    traffic = TrafficConfig(qps=qps, duration_s=num_requests / qps, seed=seed)
    baseline = simulate_serving(model, traffic, base)
    hash_size = model.tables[0].hash_size
    points = []
    for policy in policies:
        for rows in capacities:
            cfg = replace(base, cache=CacheConfig(capacity_rows=rows, policy=policy))
            res = simulate_serving(model, traffic, cfg)
            points.append(
                CachePoint(
                    policy=policy,
                    capacity_rows=rows,
                    measured_hit_rate=res.measured_cache_hit_rate,
                    warm_hit_rate=res.warm_cache_hit_rate,
                    steady_state_hit_rate=steady_state_hit_rate(
                        policy, hash_size, rows, skew=traffic.skew,
                        accesses=steady_accesses, seed=seed,
                    ),
                    predicted_hit_rate=res.predicted_cache_hit_rate,
                    p99_ms=res.p99_ms,
                )
            )
    return ServingCacheResult(
        model_name=model.name,
        qps=qps,
        num_requests=baseline.arrived,
        no_cache_p99_ms=baseline.p99_ms,
        points=tuple(points),
    )


def render_cache(result: ServingCacheResult) -> str:
    rows = [
        [
            p.policy,
            f"{p.capacity_rows:,}",
            f"{100 * p.measured_hit_rate:.1f}%",
            f"{100 * p.warm_hit_rate:.1f}%",
            f"{100 * p.steady_state_hit_rate:.1f}%",
            f"{100 * p.predicted_hit_rate:.1f}%",
            f"{100 * p.abs_error:.1f} pts",
            f"{p.p99_ms:.2f}",
        ]
        for p in result.points
    ]
    return render_table(
        ["policy", "rows/table", "raw hit", "warm hit", "steady", "predicted",
         "|error|", "p99 ms"],
        rows,
        title=(
            f"Extension: hot-row cache vs analytics — {result.model_name}, "
            f"{result.num_requests:,} requests at {result.qps:,.0f} qps "
            f"(no-cache p99 {result.no_cache_p99_ms:.2f} ms; "
            f"max |error| {100 * result.max_abs_error:.1f} pts)"
        ),
    )


# -- 4. checkpoint-refresh staleness -----------------------------------------


@dataclass(frozen=True)
class StalenessPhase:
    scenario: str  # "stale", "refreshed", "fresh"
    log_loss: float
    normalized_entropy: float
    p99_ms: float
    refreshes: int
    completed: int


@dataclass(frozen=True)
class ServingStalenessResult:
    model_name: str
    train_steps: int
    phases: tuple[StalenessPhase, ...]

    def phase(self, scenario: str) -> StalenessPhase:
        for p in self.phases:
            if p.scenario == scenario:
                return p
        raise KeyError(scenario)

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "train_steps": self.train_steps,
            "phases": [
                {
                    "scenario": p.scenario,
                    "log_loss": p.log_loss,
                    "normalized_entropy": p.normalized_entropy,
                    "p99_ms": p.p99_ms,
                    "refreshes": p.refreshes,
                    "completed": p.completed,
                }
                for p in self.phases
            ],
        }


def _log_loss(scores: np.ndarray, labels: np.ndarray) -> float:
    eps = 1e-7
    p = np.clip(scores, eps, 1 - eps)
    return float(-np.mean(labels * np.log(p) + (1 - labels) * np.log(1 - p)))


def _normalized_entropy(scores: np.ndarray, labels: np.ndarray) -> float:
    base = float(np.clip(labels.mean(), 1e-7, 1 - 1e-7))
    h = -(base * np.log(base) + (1 - base) * np.log(1 - base))
    return _log_loss(scores, labels) / h if h > 0 else float("inf")


def run_staleness(
    model: ModelConfig | None = None,
    num_replicas: int = 2,
    qps: float = 1000.0,
    duration_s: float = 1.5,
    train_steps: int = 150,
    batch_size: int = 512,
    seed: int = 0,
) -> ServingStalenessResult:
    """Quality cost of serving a stale snapshot, and what a mid-traffic
    checkpoint refresh buys back.

    Trains a student on teacher-labeled data, snapshots it early (stale)
    and late (fresh), then serves teacher-labeled traffic three ways:
    stale throughout, stale-then-refreshed at mid-window, fresh
    throughout.  Log loss orders stale > refreshed > fresh; the refresh
    run also pays the rollout's latency hit.
    """
    if model is None:
        model = make_test_model(64, 8, hash_size=2000)
    from ..core import Adagrad, DLRM, Trainer
    from ..data import SyntheticDataGenerator

    gen = SyntheticDataGenerator(model, rng=seed, seed_teacher=True)
    assert gen.teacher is not None
    student = DLRM(model, rng=seed + 1)
    trainer = Trainer(
        student,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
    )
    traffic = TrafficConfig(qps=qps, duration_s=duration_s, seed=seed + 2)
    with tempfile.TemporaryDirectory() as tmp:
        stale_path = os.path.join(tmp, "stale.npz")
        fresh_path = os.path.join(tmp, "fresh.npz")
        early = max(1, train_steps // 10)
        for _ in range(early):
            trainer.train_step(gen.batch(batch_size))
        trainer.save_checkpoint(stale_path)
        for _ in range(train_steps - early):
            trainer.train_step(gen.batch(batch_size))
        trainer.save_checkpoint(fresh_path)

        cache = CacheConfig(capacity_rows=512, policy="lru")
        phases = []
        for scenario, start_path, refresh in (
            ("stale", stale_path, None),
            ("refreshed", stale_path, fresh_path),
            ("fresh", fresh_path, None),
        ):
            from ..core.checkpoint import load_checkpoint

            serving_model = DLRM(model, rng=0)
            load_checkpoint(start_path, serving_model)
            cfg = ServingConfig(
                num_replicas=num_replicas,
                cache=cache,
                execute=True,
                refresh_at_s=(0.5 * duration_s,) if refresh else (),
                refresh_path=refresh,
                seed=seed,
            )
            res = simulate_serving(
                model, traffic, cfg, model=serving_model, teacher=gen.teacher
            )
            phases.append(
                StalenessPhase(
                    scenario=scenario,
                    log_loss=_log_loss(res.scores, res.labels),
                    normalized_entropy=_normalized_entropy(res.scores, res.labels),
                    p99_ms=res.p99_ms,
                    refreshes=res.refreshes,
                    completed=res.completed,
                )
            )
    return ServingStalenessResult(
        model_name=model.name, train_steps=train_steps, phases=tuple(phases)
    )


def render_staleness(result: ServingStalenessResult) -> str:
    rows = [
        [
            p.scenario,
            f"{p.log_loss:.4f}",
            f"{p.normalized_entropy:.4f}",
            f"{p.p99_ms:.2f}",
            f"{p.refreshes}",
            f"{p.completed:,}",
        ]
        for p in result.phases
    ]
    return render_table(
        ["snapshot", "log loss", "NE", "p99 ms", "refreshes", "completed"],
        rows,
        title=(
            f"Extension: checkpoint-refresh staleness — {result.model_name}, "
            f"student trained {result.train_steps} steps "
            "(refresh swaps stale->fresh weights mid-traffic and pays the "
            "rollout pause in p99)"
        ),
    )
