"""Figures 6 and 7 — embedding-table hash sizes and feature lengths.

Figure 6 scatters hash size against mean feature length per table for each
production model; Figure 7 shows the feature-length distributions with KDE
overlays.  The reproduction reports, per model: mean/min/max hash size
(targets: means of 5.7M / 7.3M / 3.7M in the 30..20M range), the power-law
exponent of feature lengths, access concentration (Gini), and the
correlation between table size and access frequency (the paper notes the
most-accessed tables are often small).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import GaussianKDE, fit_power_law_alpha, gini_coefficient, render_table
from ..configs import PRODUCTION_MODELS

__all__ = ["ModelEmbeddingStats", "Fig67Result", "run", "render"]


@dataclass(frozen=True)
class ModelEmbeddingStats:
    model_name: str
    num_tables: int
    mean_hash_size: float
    min_hash_size: int
    max_hash_size: int
    mean_feature_length: float
    max_feature_length: float
    power_law_alpha: float
    access_gini: float
    size_access_correlation: float
    kde_grid: np.ndarray
    kde_density: np.ndarray


@dataclass(frozen=True)
class Fig67Result:
    models: tuple[ModelEmbeddingStats, ...]

    def by_name(self) -> dict[str, ModelEmbeddingStats]:
        return {m.model_name: m for m in self.models}


def _stats_for(model_name: str) -> ModelEmbeddingStats:
    model = PRODUCTION_MODELS[model_name]()
    hash_sizes = np.array([t.hash_size for t in model.tables], dtype=np.float64)
    lengths = np.array([t.mean_lookups for t in model.tables])
    grid = np.linspace(0.0, float(lengths.max()) * 1.1, 200)
    kde = GaussianKDE(lengths)
    if len(lengths) >= 3:
        corr = float(np.corrcoef(hash_sizes, lengths)[0, 1])
    else:
        corr = float("nan")
    return ModelEmbeddingStats(
        model_name=model_name,
        num_tables=len(model.tables),
        mean_hash_size=float(hash_sizes.mean()),
        min_hash_size=int(hash_sizes.min()),
        max_hash_size=int(hash_sizes.max()),
        mean_feature_length=float(lengths.mean()),
        max_feature_length=float(lengths.max()),
        power_law_alpha=fit_power_law_alpha(lengths, x_min=max(lengths.min(), 0.5)),
        access_gini=gini_coefficient(lengths),
        size_access_correlation=corr,
        kde_grid=grid,
        kde_density=kde(grid),
    )


def run() -> Fig67Result:
    return Fig67Result(tuple(_stats_for(name) for name in PRODUCTION_MODELS))


def render(result: Fig67Result) -> str:
    rows = [
        [
            m.model_name,
            m.num_tables,
            f"{m.mean_hash_size / 1e6:.1f}M",
            f"{m.min_hash_size:,}",
            f"{m.max_hash_size / 1e6:.0f}M",
            f"{m.mean_feature_length:.1f}",
            f"{m.power_law_alpha:.2f}",
            f"{m.access_gini:.2f}",
            f"{m.size_access_correlation:+.2f}",
        ]
        for m in result.models
    ]
    return render_table(
        [
            "model",
            "#tables",
            "mean hash",
            "min hash",
            "max hash",
            "mean lookups",
            "length alpha",
            "access gini",
            "size-access corr",
        ],
        rows,
        title="Figures 6-7: per-table hash sizes and feature-length distributions",
    )
