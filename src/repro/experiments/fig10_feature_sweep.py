"""Figure 10 — throughput vs (dense, sparse) feature counts on CPU and GPU.

Sweeps the §V test-suite grid (dense 64..4096 x sparse 4..128, MLP 512^3,
hash 100000, batch 200 CPU / 1600 GPU) and reports CPU throughput, GPU
throughput, and the efficiency comparison against Big Basin's 7.3x power
premium.  Targets: GPU throughput higher everywhere; GPU power efficiency
best for dense-heavy models and below CPU in the sparse-heavy corner.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import render_table
from ..configs import (
    DEFAULT_CPU_BATCH,
    DEFAULT_GPU_BATCH,
    DENSE_SWEEP,
    SPARSE_SWEEP,
    make_test_model,
)
from ..hardware import BIG_BASIN, DUAL_SOCKET_CPU
from ..perf import cpu_cluster_throughput, gpu_server_throughput
from ..placement import PlacementStrategy, plan_placement

__all__ = ["SweepPoint", "Fig10Result", "run", "render"]

#: Big Basin's power-capacity premium over the dual-socket CPU server; a
#: GPU/CPU throughput ratio above this wins on power efficiency (§V-A).
POWER_PREMIUM = BIG_BASIN.nameplate_watts / DUAL_SOCKET_CPU.nameplate_watts


@dataclass(frozen=True)
class SweepPoint:
    num_dense: int
    num_sparse: int
    cpu_throughput: float
    gpu_throughput: float

    @property
    def speedup(self) -> float:
        return self.gpu_throughput / self.cpu_throughput

    @property
    def gpu_power_efficient(self) -> bool:
        return self.speedup > POWER_PREMIUM


@dataclass(frozen=True)
class Fig10Result:
    points: tuple[SweepPoint, ...]

    def at(self, num_dense: int, num_sparse: int) -> SweepPoint:
        for p in self.points:
            if p.num_dense == num_dense and p.num_sparse == num_sparse:
                return p
        raise KeyError(f"no sweep point ({num_dense}, {num_sparse})")


def run(
    dense_sweep: tuple[int, ...] = DENSE_SWEEP,
    sparse_sweep: tuple[int, ...] = SPARSE_SWEEP,
) -> Fig10Result:
    points = []
    for nd in dense_sweep:
        for ns in sparse_sweep:
            model = make_test_model(nd, ns)
            cpu = cpu_cluster_throughput(
                model, DEFAULT_CPU_BATCH, 1, 1, 1
            ).throughput
            plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
            gpu = gpu_server_throughput(
                model, DEFAULT_GPU_BATCH, BIG_BASIN, plan
            ).throughput
            points.append(SweepPoint(nd, ns, cpu, gpu))
    return Fig10Result(tuple(points))


def render(result: Fig10Result) -> str:
    rows = [
        [
            p.num_dense,
            p.num_sparse,
            f"{p.cpu_throughput:,.0f}",
            f"{p.gpu_throughput:,.0f}",
            f"{p.speedup:.1f}x",
            "GPU" if p.gpu_power_efficient else "CPU",
        ]
        for p in result.points
    ]
    return render_table(
        ["dense", "sparse", "CPU ex/s", "GPU ex/s", "GPU speedup", "perf/W winner"],
        rows,
        title=(
            "Figure 10: feature-count sweep "
            f"(power premium {POWER_PREMIUM:.1f}x; speedup above it => GPU wins on perf/W)"
        ),
    )
