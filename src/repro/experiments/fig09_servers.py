"""Figure 9 — histograms of trainer and parameter-server counts.

Samples a month of ranking workflows, allocating servers per run from
throughput tiers (trainers) and memory footprints (parameter servers).
Targets: over 40% of runs share the modal trainer count, while the PS-count
distribution is much wider.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

import numpy as np

from ..analysis import render_bars
from ..fleet import sample_ranking_model, sample_server_counts

__all__ = ["Fig9Result", "run", "render"]


@dataclass(frozen=True)
class Fig9Result:
    trainer_histogram: dict[int, int]
    ps_histogram: dict[int, int]
    num_runs: int

    @property
    def modal_trainer_share(self) -> float:
        return max(self.trainer_histogram.values()) / self.num_runs

    @property
    def distinct_trainer_counts(self) -> int:
        return len(self.trainer_histogram)

    @property
    def distinct_ps_counts(self) -> int:
        return len(self.ps_histogram)

    @property
    def ps_spread(self) -> float:
        """Coefficient of variation of the PS counts."""
        values = []
        for count, n in self.ps_histogram.items():
            values.extend([count] * n)
        arr = np.array(values, dtype=np.float64)
        return float(arr.std() / arr.mean())


def run(num_runs: int = 400, seed: int = 0) -> Fig9Result:
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    rng = np.random.default_rng(seed)
    trainers: collections.Counter = collections.Counter()
    ps: collections.Counter = collections.Counter()
    for _ in range(num_runs):
        model = sample_ranking_model(rng)
        counts = sample_server_counts(rng, model)
        trainers[counts.trainers] += 1
        ps[counts.parameter_servers] += 1
    return Fig9Result(
        trainer_histogram=dict(sorted(trainers.items())),
        ps_histogram=dict(sorted(ps.items())),
        num_runs=num_runs,
    )


def render(result: Fig9Result) -> str:
    trainer_bars = render_bars(
        [f"{k} trainers" for k in result.trainer_histogram],
        [float(v) for v in result.trainer_histogram.values()],
        title="Figure 9 (left): number of trainers per workflow",
    )
    ps_bars = render_bars(
        [f"{k} PS" for k in result.ps_histogram],
        [float(v) for v in result.ps_histogram.values()],
        title="Figure 9 (right): number of parameter servers per workflow",
    )
    footer = (
        f"modal trainer share: {result.modal_trainer_share:.0%} (paper: >40%) | "
        f"distinct trainer counts: {result.distinct_trainer_counts} | "
        f"distinct PS counts: {result.distinct_ps_counts}"
    )
    return "\n".join([trainer_bars, "", ps_bars, footer])
