"""Unified benchmark harness and suites (``python -m repro.bench``).

Replaces the historical ``benchmarks/bench_kernels.py`` and
``benchmarks/bench_dense.py`` scripts (which live on as thin shims): one
timing protocol, one entry schema, one regression gate, with suites for
the sparse kernels, the fused dense path, and the registered compute
backends.
"""

from .harness import (
    GATE_FACTOR,
    STEP_MIN_SPEEDUP,
    SWEEP_MIN_SPEEDUP,
    best_of,
    check,
    entry,
    main,
    render,
    run_suites,
    timed_infer,
    timed_train,
)
from .suites import SUITES

__all__ = [
    "GATE_FACTOR",
    "STEP_MIN_SPEEDUP",
    "SWEEP_MIN_SPEEDUP",
    "SUITES",
    "best_of",
    "check",
    "entry",
    "main",
    "render",
    "run_suites",
    "timed_infer",
    "timed_train",
]
