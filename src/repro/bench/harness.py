"""Unified benchmark harness: timing protocol, entry schema, CI gate.

Every benchmark in :mod:`repro.bench.suites` produces an *entry* — a dict
with ``old_s`` / ``new_s`` / ``speedup`` (ratios measured in the same
process, so machine speed cancels) plus optional extras.  The harness
provides:

* :func:`best_of` — the shared timing protocol: warm-up rounds (which
  also warm the workspace arena to steady state), then best-of-N wall
  time (min is the robust estimator under scheduler noise; means drift
  badly on shared boxes).
* :func:`timed_train` / :func:`timed_infer` — end-to-end per-step wall
  time of a full :class:`~repro.core.Trainer` loop (or ``predict_proba``
  sweep) under a named compute backend, via the backend seam.
* :func:`check` — the single regression gate: entries with
  ``gate: true`` are compared by *speedup ratio* against the committed
  baseline (fails on a > ``GATE_FACTOR`` regression); entries carrying
  ``min_speedup`` are additionally held to that absolute floor.
* :func:`main` — the CLI behind ``python -m repro.bench``.

Usage::

    python -m repro.bench --quick --out BENCH_backends.json
    python -m repro.bench --quick --check BENCH_backends.json
    python -m repro.bench --quick --suite backends
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.core import DLRM, Adagrad, ModelConfig, Trainer

GATE_FACTOR = 1.25
#: Absolute floor for the fig15 sweep-runner entry: parallel workers +
#: result cache must at least halve wall clock (memoization alone
#: suffices on single-core machines).
SWEEP_MIN_SPEEDUP = 2.0
#: Absolute floor for the headline fused train step at batch 2048 on the
#: interaction-heavy config.
STEP_MIN_SPEEDUP = 2.0
#: Absolute floor for the 4-worker hybrid-parallel train step — attached
#: only when the host actually has >= 4 cores (the ``mp`` suite measures
#: honest oversubscription slowdowns elsewhere, which must not gate).
MP_MIN_SPEEDUP = 2.0
#: Absolute floor for the pipelined-vs-unpipelined hybrid train step on
#: the prep-heavy config — attached only when the host has >= 4 cores
#: (workers + prep + comm threads need real parallelism; on fewer cores
#: the row still reports its honest ratio but only the ratio gate holds).
PIPELINE_MIN_SPEEDUP = 1.15


def best_of(fn, reps: int, warmup: int = 2) -> float:
    """Best-of-``reps`` wall time of ``fn()`` after ``warmup`` discarded runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def entry(old_s: float, new_s: float, *, gate: bool = True, **extra) -> dict:
    """The common benchmark-entry schema (``speedup`` = old / new)."""
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s,
            "gate": gate, **extra}


# ---------------------------------------------------------------------------
# end-to-end timing through the backend seam
# ---------------------------------------------------------------------------


def timed_train(config: ModelConfig, batches, backend, reps: int,
                warmup: int = 2, lr: float = 0.01) -> float:
    """Per-batch seconds of a full train step under ``backend``."""
    model = DLRM(config, rng=0, backend=backend)
    trainer = Trainer(
        model,
        lambda m: Adagrad(
            m.dense_parameters(), m.embedding_tables(), lr=lr, backend=m.backend
        ),
    )

    def run():
        for b in batches:
            trainer.train_step(b)

    return best_of(run, reps, warmup=warmup) / len(batches)


def timed_infer(config: ModelConfig, batches, backend, reps: int,
                warmup: int = 2) -> float:
    """Per-batch seconds of ``predict_proba`` under ``backend``."""
    model = DLRM(config, rng=0, backend=backend)

    def run():
        for b in batches:
            model.predict_proba(b)

    return best_of(run, reps, warmup=warmup) / len(batches)


# ---------------------------------------------------------------------------
# suite runner / gate / report
# ---------------------------------------------------------------------------


def run_suites(quick: bool, names=None) -> dict:
    """Run the named suites (default: all) and merge their entries."""
    from .suites import SUITES

    names = list(SUITES) if names is None else list(names)
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        raise ValueError(f"unknown suite(s) {unknown}; known: {list(SUITES)}")
    benchmarks: dict = {}
    for name in names:
        for key, e in SUITES[name](quick).items():
            if key in benchmarks:
                raise ValueError(f"duplicate benchmark name {key!r}")
            benchmarks[key] = e
    return {
        "meta": {
            "mode": "quick" if quick else "full",
            "suites": names,
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": benchmarks,
    }


def check(current: dict, baseline_path: str) -> int:
    """The single regression gate over every entry of every suite.

    Ratio gate: ``gate: true`` entries must keep ``speedup`` within
    ``GATE_FACTOR`` of the committed baseline's.  Absolute gate: entries
    carrying ``min_speedup`` must meet that floor outright (for the
    fig15 sweep ``speedup`` is already serial over the best runner
    time, so one comparison covers both historical styles).
    """
    path = pathlib.Path(baseline_path)
    if not path.is_file():
        print(f"baseline {baseline_path} not found; generate it with "
              f"`python -m repro.bench --quick --out {baseline_path}`")
        return 1
    baseline = json.loads(path.read_text())
    failures = []
    for name, e in current["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if e.get("gate") and base is not None:
            floor = base["speedup"] / GATE_FACTOR
            if e["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {e['speedup']:.2f}x < floor {floor:.2f}x "
                    f"(baseline {base['speedup']:.2f}x / {GATE_FACTOR})"
                )
        if "min_speedup" in e and e["speedup"] < e["min_speedup"]:
            failures.append(
                f"{name}: speedup {e['speedup']:.2f}x < required "
                f"{e['min_speedup']:.2f}x (absolute floor)"
            )
    if failures:
        print("REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"regression gate passed ({len(current['benchmarks'])} benchmarks)")
    return 0


def render(results: dict) -> str:
    meta = results["meta"]
    lines = [
        f"benchmarks ({meta['mode']} mode, suites {'+'.join(meta['suites'])}, "
        f"{meta['cpu_count']} cpus, numpy {meta['numpy']})"
    ]
    for name, e in results["benchmarks"].items():
        if "serial_s" in e:
            lines.append(
                f"  {name:<30} serial {e['serial_s']:.2f} s   "
                f"4w cold {e['parallel4_cold_s']:.2f} s ({e['parallel_speedup']:.2f}x)   "
                f"warm {e['parallel4_warm_s']:.3f} s ({e['cached_speedup']:.0f}x)"
            )
            continue
        tags = []
        if "batch" in e:
            tags.append(f"B={e['batch']}")
        if "resolved" in e and e["resolved"] != e.get("backend"):
            tags.append(f"-> {e['resolved']}")
        tag = f" ({', '.join(tags)})" if tags else ""
        lines.append(
            f"  {name:<30} old {e['old_s'] * 1e3:9.3f} ms   "
            f"new {e['new_s'] * 1e3:9.3f} ms   {e['speedup']:5.2f}x{tag}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    from .suites import SUITES

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified kernel / dense-path / backend benchmark suites",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--suite", action="append", choices=list(SUITES),
                        help="run only this suite (repeatable; default: all)")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if gated speedups regress >%.2fx vs BASELINE"
                             % GATE_FACTOR)
    args = parser.parse_args(argv)
    results = run_suites(quick=args.quick, names=args.suite)
    print(render(results))
    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        return check(results, args.check)
    return 0
