"""The benchmark suites behind ``python -m repro.bench``.

Three suites, all emitting the common entry schema of
:mod:`repro.bench.harness`:

* ``kernels`` — the sparse-path kernels (:mod:`repro.core.kernels`)
  against the historical ``naive_*`` implementations they replaced, plus
  the Figure 15 sweep through the parallel/memoized
  :class:`~repro.runtime.SweepRunner` against the serial path.
* ``dense`` — the fused dense kernels (:mod:`repro.core.dense_kernels`)
  against their ``naive_*`` references, plus end-to-end train steps
  (``"fused"`` backend vs ``"numpy"`` reference) on MLP-heavy and
  interaction-heavy configs.
* ``backends`` — every registered compute backend
  (:mod:`repro.core.backends`) timed through the same
  :func:`~repro.bench.harness.timed_train` / ``timed_infer`` loop
  against the ``"numpy"`` reference row.

Interpreting the end-to-end numbers: the speedup is config-dependent.
Where GEMMs dominate (wide-MLP configs), both paths run the same
near-peak BLAS calls and the fused win is the allocation/temporary
traffic around them (~1.1-1.5x).  Where the pairwise-dot interaction and
elementwise traffic dominate (many tables, small dim — the M3 shape),
the naive path's zeros+scatter+symmetrize round trips and ``np.where``
ReLUs are most of the step and fusion wins >2x.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.core import (
    Batch,
    DLRM,
    EmbeddingTable,
    RaggedIndices,
    Workspace,
    dense_kernels,
    kernels,
    known_backends,
)
from repro.core.config import InteractionType, MLPSpec, ModelConfig, TableSpec

from .harness import (
    MP_MIN_SPEEDUP,
    PIPELINE_MIN_SPEEDUP,
    STEP_MIN_SPEEDUP,
    SWEEP_MIN_SPEEDUP,
    best_of,
    entry,
    timed_infer,
    timed_train,
)


# ---------------------------------------------------------------------------
# shared input builders
# ---------------------------------------------------------------------------


def _make_ragged(rng, batch: int, hash_size: int, mean: float = 30.0):
    lengths = rng.poisson(mean, size=batch).astype(np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    values = rng.integers(0, hash_size, size=int(offsets[-1]))
    return RaggedIndices(values=values, offsets=offsets, safe_bound=hash_size)


def _make_config(num_dense, n_tables, hash_size, dim, mean_lookups, bottom, top,
                 interaction, dtype) -> ModelConfig:
    tables = [
        TableSpec(f"t{i}", hash_size=hash_size, dim=dim, mean_lookups=mean_lookups)
        for i in range(n_tables)
    ]
    return ModelConfig(
        name="bench", num_dense=num_dense, tables=tables,
        bottom_mlp=MLPSpec(bottom), top_mlp=MLPSpec(top),
        interaction=interaction, compute_dtype=dtype,
    )


def _make_batches(config: ModelConfig, batch: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        dense = rng.standard_normal((batch, config.num_dense))
        sparse = {}
        for t in config.tables:
            lengths = np.maximum(
                rng.poisson(t.mean_lookups, size=batch), 1
            ).astype(np.int64)
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            values = rng.integers(0, t.hash_size, size=int(offsets[-1]))
            sparse[t.name] = RaggedIndices(
                values=values, offsets=offsets, safe_bound=t.hash_size
            )
        labels = rng.integers(0, 2, size=batch)
        out.append(Batch(dense, sparse, labels))
    return out


# ---------------------------------------------------------------------------
# kernels suite: sparse-path kernels old vs new, plus the fig15 sweep
# ---------------------------------------------------------------------------


def _old_fwd_bwd(weight, ind, grad_out, truncation):
    """The pre-optimization pooled fwd+bwd, composed from naive kernels."""
    v, o = kernels.naive_truncate_ragged(ind.values, ind.offsets, truncation)
    if (v < 0).any() or (v >= weight.shape[0]).any():  # two-pass bounds check
        raise IndexError("out of range")
    rows = weight[v]
    pooled = kernels.naive_segment_sum(rows, o)
    per_lookup = np.repeat(grad_out, np.diff(o), axis=0)
    return pooled, kernels.naive_coalesce_rows(v, per_lookup)


def _new_fwd_bwd(table, ind, grad_out):
    out = table.forward(ind)
    table.backward(grad_out)
    return out, table.pop_grad()


def bench_embedding(batch: int, reps: int) -> dict:
    rng = np.random.default_rng(0)
    spec = TableSpec("bench", hash_size=100_000, dim=64, mean_lookups=30.0, truncation=32)
    table = EmbeddingTable(spec, rng)
    ind = _make_ragged(rng, batch, spec.hash_size)
    grad = rng.standard_normal((batch, spec.dim))
    old_s = best_of(lambda: _old_fwd_bwd(table.weight, ind, grad, 32), reps)
    new_s = best_of(lambda: _new_fwd_bwd(table, ind, grad), reps)
    return entry(old_s, new_s)


def bench_segment_pool(reps: int) -> dict:
    rng = np.random.default_rng(1)
    ind = _make_ragged(rng, 2048, 100_000)
    rows = rng.standard_normal((ind.total_lookups, 64))
    old_s = best_of(lambda: kernels.naive_segment_sum(rows, ind.offsets), reps)
    new_s = best_of(lambda: kernels.segment_sum(rows, ind.offsets), reps)
    return entry(old_s, new_s)


def bench_coalesce(reps: int) -> dict:
    rng = np.random.default_rng(2)
    indices = rng.integers(0, 100_000, size=60_000)
    grads = rng.standard_normal((60_000, 64))
    old_s = best_of(lambda: kernels.naive_coalesce_rows(indices, grads), reps)
    new_s = best_of(lambda: kernels.coalesce_rows(indices, grads), reps)
    return entry(old_s, new_s)


def bench_truncate(reps: int) -> dict:
    rng = np.random.default_rng(3)
    ind = _make_ragged(rng, 8192, 100_000)
    old_s = best_of(
        lambda: kernels.naive_truncate_ragged(ind.values, ind.offsets, 24), reps
    )
    new_s = best_of(lambda: kernels.truncate_ragged(ind.values, ind.offsets, 24), reps)
    return entry(old_s, new_s)


def bench_fig15_sweep(quick: bool) -> dict:
    from repro.experiments import fig15_accuracy as f15
    from repro.runtime import ResultCache, SweepRunner

    kw = dict(
        baseline_batch=64,
        gpu_batches=(128,) if quick else (128, 256),
        example_budget=2048 if quick else 8192,
        tuning_trials=2 if quick else 3,
        num_seeds=1 if quick else 2,
        seed=0,
    )
    t0 = time.perf_counter()
    serial = f15.run(**kw)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        runner = SweepRunner(workers=4, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        cold = f15.run(**kw, runner=runner)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = f15.run(**kw, runner=runner)
        warm_s = time.perf_counter() - t0
    if not (serial == cold == warm):  # determinism contract, checked for free
        raise AssertionError("fig15 runner results diverged from serial")
    return {
        "serial_s": serial_s,
        "parallel4_cold_s": cold_s,
        "parallel4_warm_s": warm_s,
        "parallel_speedup": serial_s / cold_s,
        "cached_speedup": serial_s / warm_s,
        "speedup": serial_s / min(cold_s, warm_s),
        "min_speedup": SWEEP_MIN_SPEEDUP,
        "gate": False,  # gated on the absolute min_speedup floor instead
    }


def run_kernels(quick: bool) -> dict:
    reps = 5 if quick else 12
    return {
        "embedding_fwd_bwd_b512": bench_embedding(512, reps),
        "embedding_fwd_bwd_b2048": bench_embedding(2048, reps),
        "segment_pool": bench_segment_pool(reps),
        "coalesce": bench_coalesce(reps),
        "truncate": bench_truncate(reps),
        "fig15_sweep": bench_fig15_sweep(quick),
    }


# ---------------------------------------------------------------------------
# dense suite: fused dense kernels old vs new, plus end-to-end train steps
# ---------------------------------------------------------------------------


def bench_linear(reps: int) -> dict:
    """Forward + backward of a 512->512 layer at batch 2048 (float64)."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2048, 512))
    w = rng.standard_normal((512, 512))
    b = rng.standard_normal(512)
    g = rng.standard_normal((2048, 512))
    wg = np.zeros_like(w)
    bg = np.zeros_like(b)
    ws = Workspace()
    out = ws.get("y", (2048, 512), x.dtype)
    gin = ws.get("gin", (2048, 512), x.dtype)
    wbuf = ws.get("wg", w.shape, x.dtype)
    bbuf = ws.get("bg", b.shape, x.dtype)

    def old():
        dense_kernels.naive_linear_forward(x, w, b)
        dw, db, _ = dense_kernels.naive_linear_backward(g, x, w)
        wg_l = wg + dw  # historical accumulate allocates  # noqa: F841
        bg_l = bg + db  # noqa: F841

    def new():
        dense_kernels.linear_forward(x, w, b, out)
        dense_kernels.linear_backward(g, x, w, wg, bg, gin, wbuf, bbuf)

    return entry(best_of(old, reps), best_of(new, reps))


def bench_relu(reps: int) -> dict:
    """Forward + backward over a (2048, 1024) activation (float64)."""
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2048, 1024))
    g = rng.standard_normal((2048, 1024))
    ws = Workspace()
    y = ws.get("y", x.shape, x.dtype)
    gx = ws.get("gx", x.shape, x.dtype)
    m = ws.get("m", x.shape, np.bool_)

    def old():
        out, mask = dense_kernels.naive_relu_forward(x)
        dense_kernels.naive_relu_backward(g, mask)

    def new():
        dense_kernels.relu_forward(x, y)
        dense_kernels.relu_backward(g, y, gx, m)

    return entry(best_of(old, reps), best_of(new, reps))


def bench_bce(reps: int) -> dict:
    """Loss forward + logit gradient at batch 65536 (float64)."""
    rng = np.random.default_rng(2)
    logits = rng.standard_normal(65536)
    labels = rng.integers(0, 2, size=65536).astype(np.float64)
    ws = Workspace()
    bufs = [ws.get(k, logits.shape, np.float64)
            for k in ("e", "per", "tmp", "sig", "den")]
    pos = ws.get("pos", logits.shape, np.bool_)
    grad = ws.get("grad", logits.shape, np.float64)

    def old():
        dense_kernels.naive_bce_forward(logits, labels)
        dense_kernels.naive_bce_backward(logits, labels)

    def new():
        dense_kernels.bce_forward(logits, labels, *bufs, pos)
        dense_kernels.bce_backward(bufs[3], labels, grad)

    return entry(best_of(old, reps), best_of(new, reps))


def _dot_setup(batch: int, n_vec: int, dim: int):
    rng = np.random.default_rng(3)
    stack = rng.standard_normal((batch, n_vec, dim))
    tril = np.tril_indices(n_vec, k=-1)
    num_pairs = len(tril[0])
    grad_pairs = rng.standard_normal((batch, num_pairs))
    return stack, tril, num_pairs, grad_pairs


def bench_dot_forward(reps: int) -> dict:
    """Pairwise-dot forward at (2048, 101 vectors, dim 32)."""
    stack, tril, num_pairs, _ = _dot_setup(2048, 101, 32)
    dense = stack[:, 0, :].copy()
    flat = (tril[0] * 101 + tril[1]).astype(np.intp)
    ws = Workspace()
    gram = ws.get("gram", (2048, 101, 101), stack.dtype)
    pairs = ws.get("pairs", (2048, num_pairs), stack.dtype)
    out = ws.get("out", (2048, 32 + num_pairs), stack.dtype)
    old = best_of(lambda: dense_kernels.naive_dot_forward(stack, tril, dense), reps)
    new = best_of(
        lambda: dense_kernels.dot_forward(stack, flat, dense, gram, pairs, out), reps
    )
    return entry(old, new)


def bench_dot_backward(reps: int) -> dict:
    """Pairwise-dot backward at (2048, 101 vectors, dim 32)."""
    stack, tril, num_pairs, grad_pairs = _dot_setup(2048, 101, 32)
    pair_map = dense_kernels.symmetric_pair_map(101, tril)
    ws = Workspace()
    ext = ws.get("ext", (2048, num_pairs + 1), stack.dtype)
    gram = ws.get("gram", (2048, 101, 101), stack.dtype)
    gstack = ws.get("gs", stack.shape, stack.dtype)
    old = best_of(
        lambda: dense_kernels.naive_dot_backward(stack, tril, grad_pairs), reps
    )
    new = best_of(
        lambda: dense_kernels.dot_backward(
            stack, pair_map, grad_pairs, ext, gram, gstack
        ),
        reps,
    )
    return entry(old, new)


def bench_adagrad_dense(reps: int) -> dict:
    """Dense Adagrad update over a 1024x1024 parameter (float64)."""
    rng = np.random.default_rng(4)
    value = rng.standard_normal((1024, 1024))
    grad = rng.standard_normal((1024, 1024))
    state = np.abs(rng.standard_normal((1024, 1024)))
    ws = Workspace()
    t = ws.get("t", value.shape, value.dtype)
    u = ws.get("u", value.shape, value.dtype)
    old = best_of(
        lambda: dense_kernels.naive_adagrad_dense_step(value, grad, state, 0.01, 1e-10),
        reps,
    )
    new = best_of(
        lambda: dense_kernels.adagrad_dense_step(value, grad, state, 0.01, 1e-10, t, u),
        reps,
    )
    return entry(old, new)


def bench_adagrad_sparse(reps: int) -> dict:
    """Row-sparse Adagrad over 20k unique rows of a 100k x 64 table."""
    rng = np.random.default_rng(5)
    weight = rng.standard_normal((100_000, 64))
    state = np.abs(rng.standard_normal((100_000, 64)))
    rows = np.sort(rng.choice(100_000, size=20_000, replace=False))
    values = rng.standard_normal((20_000, 64))
    ws = Workspace()
    t = ws.get_rows("t", len(rows), (64,), weight.dtype)
    u = ws.get_rows("u", len(rows), (64,), weight.dtype)
    old = best_of(
        lambda: dense_kernels.naive_adagrad_sparse_step(
            weight, state, rows, values, 0.01, 1e-10
        ),
        reps,
    )
    new = best_of(
        lambda: dense_kernels.adagrad_sparse_step(
            weight, state, rows, values, 0.01, 1e-10, t, u
        ),
        reps,
    )
    return entry(old, new)


#: Interaction-heavy config (the production-M3 shape: ~120 tables, small
#: dim): the pairwise-dot triangle is (121 choose 2) = 7260 pairs, and the
#: naive path's (B, 121, 121) zeros/scatter/symmetrize round trips dominate.
INTERACTION_CONFIG = _make_config(
    16, 120, 1000, 16, 1.0, (32, 16), (64,), InteractionType.DOT, "float32"
)

#: MLP-heavy config (the production-M1/M2 shape: wide stacked MLPs, concat
#: interaction): GEMM-bound, so the fused win is the smaller remainder.
MLP_CONFIG = _make_config(
    256, 8, 5000, 64, 2.0, (512, 256, 64), (512, 512, 256),
    InteractionType.CONCAT, "float32",
)


def bench_train_step(config: ModelConfig, batch: int, quick: bool,
                     **extra) -> dict:
    n_batches = 2 if quick else 4
    reps = 3 if quick else 5
    batches = _make_batches(config, batch, n_batches)
    old = timed_train(config, batches, "numpy", reps=reps)
    new = timed_train(config, batches, "fused", reps=reps)
    return entry(old, new, batch=batch, **extra)


def run_dense(quick: bool) -> dict:
    reps = 5 if quick else 12
    return {
        "linear_fwd_bwd": bench_linear(reps),
        "relu_fwd_bwd": bench_relu(reps),
        "bce_fwd_bwd": bench_bce(reps),
        "dot_forward": bench_dot_forward(reps),
        "dot_backward": bench_dot_backward(reps),
        "adagrad_dense": bench_adagrad_dense(reps),
        "adagrad_sparse": bench_adagrad_sparse(reps),
        "train_step_mlp_b512": bench_train_step(MLP_CONFIG, 512, quick),
        "train_step_mlp_b2048": bench_train_step(MLP_CONFIG, 2048, quick),
        "train_step_interaction_b512": bench_train_step(
            INTERACTION_CONFIG, 512, quick
        ),
        "train_step_interaction_b2048": bench_train_step(
            INTERACTION_CONFIG, 2048, quick, min_speedup=STEP_MIN_SPEEDUP
        ),
    }


# ---------------------------------------------------------------------------
# backends suite: every registered backend vs the numpy reference row
# ---------------------------------------------------------------------------

#: Mid-sized interaction shape: big enough that the backend choice moves
#: the needle, small enough for the CI quick mode.
BACKEND_CONFIG = _make_config(
    16, 60, 1000, 16, 1.0, (32, 16), (64,), InteractionType.DOT, "float32"
)


def run_backends(quick: bool) -> dict:
    batch = 512 if quick else 2048
    reps = 3 if quick else 6
    batches = _make_batches(BACKEND_CONFIG, batch, 2)
    base_train = timed_train(BACKEND_CONFIG, batches, "numpy", reps=reps)
    base_infer = timed_infer(BACKEND_CONFIG, batches, "numpy", reps=reps)
    results = {
        "backend_train_numpy": entry(
            base_train, base_train, gate=False, backend="numpy", batch=batch
        ),
        "backend_infer_numpy": entry(
            base_infer, base_infer, gate=False, backend="numpy", batch=batch
        ),
    }
    force_threaded = bool(os.environ.get("REPRO_BENCH_FORCE_THREADED"))
    for name in known_backends():
        if name == "numpy":
            continue
        backend: object = name
        extra = {}
        if name == "threaded" and force_threaded:
            # REPRO_BENCH_FORCE_THREADED pins an explicit 2-worker pool so
            # single-core CI still times the threaded GEMM path instead of
            # silently resolving to fused (name-based resolution falls back
            # below 2 cores; explicit instances never do).
            from repro.core.backends.threaded import ThreadedBackend

            backend = ThreadedBackend(workers=2, min_rows=4)
            extra["forced"] = True
        # record what the name resolved to (threaded falls back to fused
        # on single-core machines), so baselines stay interpretable
        resolved = DLRM(BACKEND_CONFIG, rng=0, backend=backend).backend.name
        train_s = timed_train(BACKEND_CONFIG, batches, backend, reps=reps)
        infer_s = timed_infer(BACKEND_CONFIG, batches, backend, reps=reps)
        # only the fused row is ratio-gated: it resolves identically on
        # every machine, while threaded depends on the runner's core count
        gated = name == "fused"
        results[f"backend_train_{name}"] = entry(
            base_train, train_s, gate=gated, backend=name,
            resolved=resolved, batch=batch, **extra,
        )
        results[f"backend_infer_{name}"] = entry(
            base_infer, infer_s, gate=False, backend=name,
            resolved=resolved, batch=batch, **extra,
        )
    return results


# ---------------------------------------------------------------------------
# mp suite: multi-process hybrid-parallel training vs the serial trainer
# ---------------------------------------------------------------------------

#: Hybrid-parallel bench shape: a handful of mid-size tables and a DOT
#: interaction so the sharded sparse exchange and the replicated dense
#: allreduce both carry real traffic without dwarfing the compute.
MP_CONFIG = _make_config(
    16, 8, 4000, 16, 4.0, (32, 16), (64,), InteractionType.DOT, "float32"
)


def run_mp(quick: bool) -> dict:
    """Serial fused train step vs the multi-process hybrid trainer.

    The speedup column is honest about the host: on a single core the
    W-worker rows report the oversubscription *slowdown* (processes
    time-share one core and pay communication on top), so the absolute
    ``MP_MIN_SPEEDUP`` floor is attached to the 4-worker row only when
    the runner actually has >= 4 cores.  The ratio gate is safe on any
    host: the committed baseline comes from the 1-core container, and
    more cores only raises the hybrid rows' speedup.
    """
    from repro.distributed.mp import HybridRunConfig, run_hybrid
    from repro.runtime import available_cores

    batch = 256 if quick else 512
    steps = 6 if quick else 10
    reps = 2 if quick else 3
    cores = available_cores()
    batches = _make_batches(MP_CONFIG, batch, 2)
    serial_s = timed_train(MP_CONFIG, batches, "fused", reps=reps)
    results = {
        "mp_serial_fused": entry(
            serial_s, serial_s, gate=False, batch=batch, cores=cores
        ),
    }
    for world in (2, 4):
        run = HybridRunConfig(
            workers=world, steps=steps, batch_size=batch,
            reduction="ordered", warmup_steps=2,
        )
        best = min(run_hybrid(MP_CONFIG, run).step_time_s for _ in range(reps))
        e = entry(
            serial_s, best, gate=True, batch=batch, cores=cores,
            workers=world, reduction="ordered",
        )
        if world == 4 and cores >= 4:
            e["min_speedup"] = MP_MIN_SPEEDUP
        results[f"mp_hybrid_w{world}"] = e
    return results


# ---------------------------------------------------------------------------
# tiering suite: flat embedding tables vs the tiered store's accounting
# ---------------------------------------------------------------------------

#: Tiering bench shape: embedding-heavy (many lookups per table) so the
#: tier accounting path — frequency stats, chunk policy, cost charging —
#: is exercised on every step, while the dense path stays small.
TIERING_CONFIG = _make_config(
    8, 4, 4000, 16, 8.0, (32, 16), (64,), InteractionType.CONCAT, "float32"
)


def _timed_tiered_train(config: ModelConfig, batches, tiering, reps: int) -> float:
    """Per-batch seconds of a train step on a tiered-table model."""
    from repro.core import Adagrad, Trainer

    model = DLRM(config, rng=0, backend="fused", tiering=tiering)
    trainer = Trainer(
        model,
        lambda m: Adagrad(
            m.dense_parameters(), m.embedding_tables(), lr=0.01, backend=m.backend
        ),
    )

    def run():
        for b in batches:
            trainer.train_step(b)

    return best_of(run, reps) / len(batches)


def run_tiering(quick: bool) -> dict:
    """Flat train step vs the same step on tiered embedding tables.

    The tiered store is numerically a no-op (bit-identical weights), so
    ``speedup`` here is the *accounting overhead factor* — old is the
    flat step, new is the tiered step, and the ratio gate fails the
    build if per-step tier bookkeeping regresses > ``GATE_FACTOR`` vs
    the committed baseline.
    """
    from repro.tiering import TieredStoreConfig

    batch = 256 if quick else 1024
    reps = 3 if quick else 6
    batches = _make_batches(TIERING_CONFIG, batch, 2)
    flat_s = timed_train(TIERING_CONFIG, batches, "fused", reps=reps)
    results = {
        "tiering_train_flat": entry(
            flat_s, flat_s, gate=False, batch=batch, backend="fused"
        ),
    }
    for policy in ("freq", "lru"):
        tiering = TieredStoreConfig(
            hot_fraction=0.05, chunk_rows=8, policy=policy
        )
        tiered_s = _timed_tiered_train(TIERING_CONFIG, batches, tiering, reps)
        results[f"tiering_train_{policy}"] = entry(
            flat_s, tiered_s, gate=policy == "freq", batch=batch,
            policy=policy, hot_fraction=0.05, chunk_rows=8,
        )
    return results


# ---------------------------------------------------------------------------
# pipeline suite: inline batch prep vs the prefetched data path
# ---------------------------------------------------------------------------

#: Prep-heavy bench shape: many tables with long lookup streams and small
#: MLPs, so batch materialization + plan construction (truncation, bounds,
#: CSR concat, coalesce argsorts) is a large share of the step — the
#: regime where the prefetch pipeline has real work to hide.
PIPELINE_CONFIG = _make_config(
    8, 12, 8000, 16, 24.0, (16, 8), (16,), InteractionType.CONCAT, "float32"
)


def _timed_pipelined_train(
    config: ModelConfig, batch: int, steps: int, pipeline: bool, reps: int
) -> float:
    """Per-step seconds of a Trainer run fed from a live generator stream.

    Generation + planning are timed *inside* the run on purpose — that is
    the work the pipeline moves off the critical path; pre-built batch
    lists would bench an empty prep stage.
    """
    from repro.core import Adagrad, Trainer
    from repro.data import SyntheticDataGenerator

    def run():
        gen = SyntheticDataGenerator(config, rng=0)
        model = DLRM(config, rng=1, backend="fused")
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=0.01,
                backend=m.backend,
            ),
            pipeline=pipeline,
        )
        trainer.train(gen.batches(batch), max_steps=steps)

    return best_of(run, reps, warmup=1) / steps


def run_pipeline(quick: bool) -> dict:
    """Unpipelined data path vs the double-buffered prefetch pipeline.

    Two comparisons on the prep-heavy config: the single-process Trainer
    (prefetch hides generation + planning behind compute) and the hybrid
    trainer (additionally overlaps the id-plan and sparse-value exchanges
    with compute on the reducer's comm thread).  Both pipelined rows are
    bit-identical to their unpipelined baselines by construction — these
    rows bench the *overlap*, the determinism suite pins the numerics.

    Like the ``mp`` suite, the absolute ``PIPELINE_MIN_SPEEDUP`` floor is
    attached only when the host has >= 4 cores; a single-core runner
    reports the honest (possibly ~1.0x) ratio and is held to the ratio
    gate against the committed single-core baseline.
    """
    from repro.distributed.mp import HybridRunConfig, run_hybrid
    from repro.runtime import available_cores

    batch = 256 if quick else 512
    steps = 6 if quick else 10
    reps = 2 if quick else 3
    cores = available_cores()
    inline_s = _timed_pipelined_train(PIPELINE_CONFIG, batch, steps, False, reps)
    piped_s = _timed_pipelined_train(PIPELINE_CONFIG, batch, steps, True, reps)
    trainer_e = entry(
        inline_s, piped_s, gate=True, batch=batch, cores=cores, steps=steps
    )
    results = {"pipeline_trainer": trainer_e}
    hybrid_s = {}
    for pipelined in (False, True):
        run = HybridRunConfig(
            workers=2, steps=steps, batch_size=batch,
            reduction="ordered", warmup_steps=2, pipeline=pipelined,
        )
        hybrid_s[pipelined] = min(
            run_hybrid(PIPELINE_CONFIG, run).step_time_s for _ in range(reps)
        )
    e = entry(
        hybrid_s[False], hybrid_s[True], gate=True, batch=batch, cores=cores,
        workers=2, reduction="ordered",
    )
    if cores >= 4:
        e["min_speedup"] = PIPELINE_MIN_SPEEDUP
    results["pipeline_hybrid_w2"] = e
    return results


SUITES = {
    "kernels": run_kernels,
    "dense": run_dense,
    "backends": run_backends,
    "mp": run_mp,
    "tiering": run_tiering,
    "pipeline": run_pipeline,
}
