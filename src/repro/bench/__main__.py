"""Entry point for ``python -m repro.bench``."""

from .harness import main

if __name__ == "__main__":
    raise SystemExit(main())
