"""Calibration fitting: tune efficiency factors against published ratios.

The shipped :class:`~repro.perf.calibration.Calibration` was tuned by hand
against Table III; this module automates that process so the model can be
re-fit when the cost equations change.  Coordinate descent over selected
calibration fields minimizes the squared log-error between the model's
GPU/CPU throughput ratios and the paper's published values — log-space
because the targets are ratios and under/over-shooting should cost
symmetrically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Callable

from ..configs.production import PRODUCTION_MODELS, PRODUCTION_SETUPS
from ..hardware.specs import BIG_BASIN, DUAL_SOCKET_CPU
from ..placement.planner import plan_placement
from ..placement.strategies import PlacementStrategy
from .calibration import DEFAULT_CALIBRATION, Calibration
from .pipeline import cpu_cluster_throughput, gpu_server_throughput

__all__ = ["FitResult", "table3_ratio_loss", "fit_calibration"]

#: Table III's published GPU/CPU throughput ratios — the fitting targets.
TABLE3_TARGETS = {
    name: setup.paper_relative_throughput
    for name, setup in PRODUCTION_SETUPS.items()
}

_CALIB_FIELD_NAMES = {f.name for f in fields(Calibration)}


def table3_ratio_loss(calib: Calibration) -> float:
    """Sum of squared log-errors of the Table III throughput ratios."""
    loss = 0.0
    for name, setup in PRODUCTION_SETUPS.items():
        model = PRODUCTION_MODELS[name]()
        cpu = cpu_cluster_throughput(
            model,
            setup.cpu_batch_per_trainer,
            setup.cpu_trainers,
            setup.cpu_sparse_ps,
            setup.cpu_dense_ps,
            calib=calib,
        ).throughput
        if setup.gpu_placement is PlacementStrategy.REMOTE_CPU:
            plan = plan_placement(
                model, BIG_BASIN, setup.gpu_placement,
                num_ps=setup.gpu_remote_ps, ps_platform=DUAL_SOCKET_CPU,
            )
        else:
            plan = plan_placement(model, BIG_BASIN, setup.gpu_placement)
        gpu = gpu_server_throughput(
            model, setup.gpu_batch, BIG_BASIN, plan, calib=calib
        ).throughput
        ratio = gpu / cpu
        loss += (math.log(ratio) - math.log(TABLE3_TARGETS[name])) ** 2
    return loss


@dataclass(frozen=True)
class FitResult:
    """Outcome of a calibration fit."""

    calibration: Calibration
    loss: float
    initial_loss: float
    evaluations: int

    @property
    def improved(self) -> bool:
        return self.loss < self.initial_loss - 1e-12


def fit_calibration(
    knobs: tuple[str, ...] = (
        "host_input_per_table_s",
        "remote_iteration_overhead_s",
        "ps_service_efficiency",
    ),
    start: Calibration = DEFAULT_CALIBRATION,
    objective: Callable[[Calibration], float] | None = None,
    rounds: int = 3,
    step_factor: float = 1.3,
) -> FitResult:
    """Coordinate descent over ``knobs`` (multiplicative steps).

    Each round tries scaling every knob up and down by ``step_factor``,
    keeping any move that lowers the objective; the step shrinks every
    round.  Bounded-fraction fields are clamped to (0, 1].

    Raises:
        ValueError: for unknown knob names or bad parameters.
    """
    unknown = set(knobs) - _CALIB_FIELD_NAMES
    if unknown:
        raise ValueError(f"unknown calibration fields: {sorted(unknown)}")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if step_factor <= 1.0:
        raise ValueError("step_factor must exceed 1")
    objective = objective or table3_ratio_loss

    evaluations = 0

    def evaluate(c: Calibration) -> float:
        nonlocal evaluations
        evaluations += 1
        return objective(c)

    current = start
    current_loss = initial_loss = evaluate(current)
    factor = step_factor
    fraction_fields = {
        "cpu_parallel_efficiency",
        "ps_service_efficiency",
        "async_overlap_fraction",
        "pcie_concurrency_per_socket",
    }
    for _ in range(rounds):
        for knob in knobs:
            base = getattr(current, knob)
            for direction in (factor, 1.0 / factor):
                candidate_value = base * direction
                if knob in fraction_fields:
                    candidate_value = min(candidate_value, 1.0)
                try:
                    candidate = replace(current, **{knob: candidate_value})
                except ValueError:
                    continue
                loss = evaluate(candidate)
                if loss < current_loss:
                    current, current_loss = candidate, loss
                    base = candidate_value
        factor = 1.0 + (factor - 1.0) / 2.0
    return FitResult(
        calibration=current,
        loss=current_loss,
        initial_loss=initial_loss,
        evaluations=evaluations,
    )
