"""Iteration-time assembly: model config + platform + placement -> throughput.

This is the analytical performance model behind every throughput figure in
the reproduction.  One training iteration is decomposed into the operator
costs of :mod:`repro.perf.ops`, mapped onto the platform's resources
(roofline compute, memory bandwidth, interconnects, NICs), and composed
into an iteration time.  Stages that production software pipelines
(host-side embedding work vs. GPU dense work; compute vs. async
communication) are combined with ``max``; stages on the critical path are
summed.

Scenarios:

* :func:`cpu_cluster_throughput` — the production CPU baseline: N trainers
  with Hogwild threads + EASGD against dense/sparse parameter servers
  (paper Figure 4).
* :func:`gpu_server_throughput` — a Big Basin or Zion server (optionally
  several, for multi-node GPU placement) with any embedding placement from
  :mod:`repro.placement`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import ModelConfig
from ..hardware.device import OpCost, op_time
from ..hardware.interconnect import allreduce_time, alltoall_time, transfer_time
from ..hardware.power import ClusterPower
from ..hardware.specs import DUAL_SOCKET_CPU, DeviceSpec, PlatformSpec
from ..obs.tracer import NullTracer, Tracer
from ..placement.strategies import LocationKind, PlacementPlan, PlacementStrategy
from .calibration import DEFAULT_CALIBRATION, Calibration
from . import ops

__all__ = [
    "IterationBreakdown",
    "ThroughputReport",
    "cpu_cluster_throughput",
    "gpu_server_throughput",
    "READER_EXAMPLES_PER_SEC",
    "SPAN_CATEGORIES",
]

#: Span taxonomy for iteration components (see ``repro.obs``): which
#: Chrome-trace category each :class:`IterationBreakdown` component maps to.
SPAN_CATEGORIES: dict[str, str] = {
    "overhead": "runtime",
    "critical_path": "compute",
    "compute": "compute",
    "dense_compute": "compute",
    "nic": "comm",
    "dense_sync": "comm",
    "emb_alltoall": "comm",
    "emb_internode": "comm",
    "remote_rpc": "comm",
    "host_input": "memory",
    "emb_replicated": "memory",
    "emb_hbm": "memory",
    "host_pipeline_excess": "memory",
    "host_pipeline": "memory",
    "host_pipeline_overlapped": "memory",
}

#: One reader server keeps up with roughly this many examples/s (readers are
#: scaled so data loading is never the bottleneck, §IV-B.2).
READER_EXAMPLES_PER_SEC = 150_000.0


@dataclass(frozen=True)
class IterationBreakdown:
    """Per-iteration time components.

    ``components`` are the charged (critical-path) segments summing to the
    iteration time; ``hidden`` are pipelined segments that ran under the
    critical path and were not charged.
    """

    components: dict[str, float]
    hidden: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def bottleneck(self) -> str:
        return max(self.components, key=self.components.get)

    def trace(
        self,
        tracer: Tracer | NullTracer,
        label: str,
        t0: float | None = None,
        *,
        tid: int = 0,
        **attrs,
    ) -> float:
        """Emit this breakdown as one ``iteration`` span with a child span
        per component, laid out sequentially on the tracer's synthetic
        timeline (``t0 = tracer.reserve(...)`` when not given).

        Hidden (pipelined) segments are recorded at the iteration start with
        an ``overlapped`` attribute so trace viewers show them stacked under
        the critical path.  Returns the iteration end time.
        """
        if not tracer.enabled:
            return 0.0
        if t0 is None:
            t0 = tracer.reserve(self.total)
        parent = tracer.begin(label, "iteration", t0=t0, tid=tid, **attrs)
        t = t0
        for name, dur in self.components.items():
            tracer.record(
                name, SPAN_CATEGORIES.get(name, "compute"), t0=t, duration=dur, tid=tid
            )
            t += dur
        for name, dur in self.hidden.items():
            tracer.record(
                name,
                SPAN_CATEGORIES.get(name, "compute"),
                t0=t0,
                duration=min(dur, self.total),
                tid=tid,
                overlapped=True,
            )
        tracer.end(parent, t1=t0 + self.total)
        return t0 + self.total


@dataclass(frozen=True)
class ThroughputReport:
    """Outcome of one performance-model evaluation."""

    setup: str
    model_name: str
    global_batch: int
    iteration_time_s: float
    throughput: float  # examples / second
    breakdown: IterationBreakdown
    power: ClusterPower
    utilizations: dict[str, float]
    notes: tuple[str, ...] = ()

    @property
    def perf_per_watt(self) -> float:
        return self.throughput / self.power.nameplate_watts

    def describe(self) -> str:
        parts = [
            f"{self.setup}: {self.throughput:,.0f} ex/s",
            f"iter {self.iteration_time_s * 1e3:.2f} ms @ batch {self.global_batch}",
            f"bottleneck {self.breakdown.bottleneck}",
            f"{self.perf_per_watt:.2f} ex/s/W over {self.power.total_servers} servers",
        ]
        return " | ".join(parts)

    def to_dict(self) -> dict:
        """JSON-serializable summary for downstream tooling."""
        return {
            "setup": self.setup,
            "model": self.model_name,
            "global_batch": self.global_batch,
            "iteration_time_s": self.iteration_time_s,
            "throughput": self.throughput,
            "perf_per_watt": self.perf_per_watt,
            "bottleneck": self.breakdown.bottleneck,
            "components": dict(self.breakdown.components),
            "hidden": dict(self.breakdown.hidden),
            "utilizations": dict(self.utilizations),
            "power_watts": self.power.nameplate_watts,
            "servers": self.power.total_servers,
            "notes": list(self.notes),
        }


def _aggregate_cpu_device(platform: PlatformSpec, calib: Calibration) -> DeviceSpec:
    """All CPU sockets of a server as one roofline device, with the
    multi-threaded (Hogwild) parallel-efficiency discount applied."""
    sock = platform.cpu_socket
    n = platform.num_cpu_sockets
    return DeviceSpec(
        name=f"{platform.name}-cpu-x{n}",
        peak_flops=sock.peak_flops * n * calib.cpu_parallel_efficiency,
        mem_bandwidth=sock.mem_bandwidth * n,
        mem_capacity=platform.system_memory,
        launch_overhead_s=sock.launch_overhead_s,
        compute_efficiency=sock.compute_efficiency,
        bandwidth_efficiency=sock.bandwidth_efficiency,
    )


def _cache_penalty(model: ModelConfig, batch: int, calib: Calibration) -> float:
    """Throughput penalty once activations spill the trainer's LLC."""
    ws = ops.activation_working_set_bytes(model, batch)
    if ws <= calib.cpu_llc_bytes:
        return 1.0
    return (ws / calib.cpu_llc_bytes) ** calib.cache_penalty_exponent


def _dense_compute_cost(model: ModelConfig, batch: int) -> OpCost:
    """Bottom MLP + interaction + top MLP + scorer, forward and backward,
    plus the dense optimizer step."""
    cost = ops.mlp_cost(model.num_dense, model.bottom_mlp, batch, backward=False)
    cost = cost + ops.mlp_cost(model.num_dense, model.bottom_mlp, batch, backward=True)
    cost = cost + ops.interaction_cost(model, batch, backward=False)
    cost = cost + ops.interaction_cost(model, batch, backward=True)
    cost = cost + ops.mlp_cost(model.interaction_features, model.top_mlp, batch, backward=False)
    cost = cost + ops.mlp_cost(model.interaction_features, model.top_mlp, batch, backward=True)
    cost = cost + ops.dense_optimizer_cost(model)
    return cost


def _auto_readers(throughput: float) -> int:
    return max(1, math.ceil(throughput / READER_EXAMPLES_PER_SEC))


# ---------------------------------------------------------------------------
# CPU distributed baseline (Figure 4 pipeline)
# ---------------------------------------------------------------------------


def cpu_cluster_throughput(
    model: ModelConfig,
    batch_per_trainer: int,
    num_trainers: int,
    num_sparse_ps: int,
    num_dense_ps: int,
    platform: PlatformSpec = DUAL_SOCKET_CPU,
    num_readers: int | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | NullTracer | None = None,
) -> ThroughputReport:
    """Throughput of the production CPU setup: data-parallel trainers with
    EASGD dense sync and remote sparse parameter servers.

    Per-trainer iteration time is ``overhead + max(local compute, NIC)``
    (Hogwild threads overlap compute with communication); cluster throughput
    is the trainer aggregate capped by sparse-PS memory/NIC service capacity
    and dense-PS sync capacity.
    """
    if min(batch_per_trainer, num_trainers, num_sparse_ps, num_dense_ps) < 1:
        raise ValueError("batch and server counts must be >= 1")
    b = batch_per_trainer
    cpu = _aggregate_cpu_device(platform, calib)

    # -- trainer-local work
    dense_cost = _dense_compute_cost(model, b)
    compute = op_time(cpu, dense_cost) * _cache_penalty(model, b, calib)

    # -- trainer network traffic per iteration
    req = ops.lookup_request_bytes(model, b)
    pooled = ops.pooled_embedding_bytes(model, b)
    # EASGD exchanges the dense parameters with the center copy every tau
    # iterations, and the exchange is mostly hidden under compute.
    dense_sync_bytes = 2.0 * ops.dense_param_bytes(model) / calib.easgd_sync_period
    dense_sync = dense_sync_bytes * (1.0 - calib.async_overlap_fraction)
    nic_bytes = req + 2.0 * pooled + dense_sync
    nic = transfer_time(platform.nic, nic_bytes) + 3 * platform.nic.latency_s

    t_iter = calib.cpu_iteration_overhead_s + max(compute, nic)
    per_trainer = b / t_iter
    demand = num_trainers * per_trainer

    # -- parameter-server capacity caps
    ps_cpu = _aggregate_cpu_device(platform, calib)
    lookup_cost = ops.embedding_lookup_cost(model, b)
    update_cost = ops.embedding_update_cost(model, b)
    ps_bytes_per_ex = (lookup_cost.bytes + update_cost.bytes) / b
    ps_mem_supply = (
        num_sparse_ps * ps_cpu.effective_bandwidth * calib.ps_service_efficiency
    )
    cap_sparse_mem = ps_mem_supply / ps_bytes_per_ex
    ps_net_per_ex = (req + 2.0 * pooled) / b
    cap_sparse_nic = (
        num_sparse_ps * platform.nic.bandwidth * calib.ps_service_efficiency / ps_net_per_ex
    )
    dense_bytes_per_ex = dense_sync_bytes / b
    cap_dense_nic = (
        num_dense_ps * platform.nic.bandwidth * calib.ps_service_efficiency / dense_bytes_per_ex
    )

    throughput = min(demand, cap_sparse_mem, cap_sparse_nic, cap_dense_nic)
    notes = []
    if throughput < demand:
        caps = {
            "sparse PS memory": cap_sparse_mem,
            "sparse PS NIC": cap_sparse_nic,
            "dense PS NIC": cap_dense_nic,
        }
        notes.append(f"capped by {min(caps, key=caps.get)}")

    readers = num_readers if num_readers is not None else _auto_readers(throughput)
    power = ClusterPower()
    power.add(platform, num_trainers, role="trainer", utilization=min(1.0, compute / t_iter))
    ps_util = min(1.0, throughput / max(cap_sparse_mem, 1e-9))
    power.add(platform, num_sparse_ps, role="sparse_ps", utilization=ps_util)
    power.add(platform, num_dense_ps, role="dense_ps", utilization=min(1.0, throughput / cap_dense_nic))
    power.add(platform, readers, role="reader", utilization=0.5)

    utilizations = {
        "trainer_cpu": min(1.0, compute / t_iter),
        "trainer_nic": min(1.0, nic / t_iter),
        "trainer_mem_bw": min(
            1.0, (dense_cost.bytes / cpu.effective_bandwidth) / t_iter
        ),
        "sparse_ps_mem_bw": min(1.0, throughput * ps_bytes_per_ex / ps_mem_supply),
        "sparse_ps_nic": min(1.0, throughput / cap_sparse_nic),
        "dense_ps_nic": min(1.0, throughput / cap_dense_nic),
    }

    breakdown = IterationBreakdown(
        components={
            "overhead": calib.cpu_iteration_overhead_s,
            "critical_path": max(compute, nic),
        },
        hidden={"compute": compute, "nic": nic},
    )
    if tracer is not None and tracer.enabled:
        breakdown.trace(
            tracer,
            f"CPU x{num_trainers}T/{num_sparse_ps}sPS/{num_dense_ps}dPS",
            model=model.name,
            batch=b,
            throughput=throughput,
        )
    return ThroughputReport(
        setup=f"CPU x{num_trainers}T/{num_sparse_ps}sPS/{num_dense_ps}dPS",
        model_name=model.name,
        global_batch=b * num_trainers,
        iteration_time_s=t_iter,
        throughput=throughput,
        breakdown=breakdown,
        power=power,
        utilizations=utilizations,
        notes=tuple(notes),
    )


# ---------------------------------------------------------------------------
# GPU server (Big Basin / Zion) with a placement plan
# ---------------------------------------------------------------------------


def gpu_server_throughput(
    model: ModelConfig,
    batch: int,
    platform: PlatformSpec,
    plan: PlacementPlan,
    ps_platform: PlatformSpec = DUAL_SOCKET_CPU,
    num_readers: int | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | NullTracer | None = None,
) -> ThroughputReport:
    """Throughput of one (or, for multi-node GPU placement, several) GPU
    servers under a given embedding placement.

    ``batch`` is the per-node batch; GPUs within a node run data-parallel
    on ``batch / num_gpus`` examples while embedding shards are
    model-parallel wherever the plan put them.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    gpu = platform.gpu
    n_gpus = platform.num_gpus
    nodes = plan.num_nodes
    b_gpu = max(1, batch // n_gpus)
    notes: list[str] = []

    # -- dense path (always on the GPUs, data parallel)
    dense_cost = _dense_compute_cost(model, b_gpu)
    dense_time = op_time(gpu, dense_cost)
    # EASGD-style dense sync (Table III: GPU setups also run easgd), mostly
    # overlapped with compute.
    param_bytes = ops.dense_param_bytes(model)
    if platform.gpu_interconnect is not None and plan.strategy in (
        PlacementStrategy.GPU_MEMORY,
        PlacementStrategy.HYBRID,
    ):
        sync_link = platform.gpu_interconnect
        sync_full = allreduce_time(sync_link, param_bytes, n_gpus * nodes)
    else:
        # staged through host memory over each GPU's own PCIe link
        sync_full = 2.0 * transfer_time(platform.pcie, param_bytes)
    dense_sync = (
        sync_full
        * calib.collective_inefficiency
        * (1.0 - calib.async_overlap_fraction)
        / calib.easgd_sync_period
    )

    # Per-iteration host work: packing/dispatching every sparse feature's
    # jagged indices plus shipping them over PCIe.  Scales with the number
    # of tables, not the batch — the per-table software overhead that makes
    # sparse-heavy models GPU-inefficient (Fig 10).
    pcie_agg_in = (
        platform.pcie.bandwidth
        * platform.num_cpu_sockets
        * calib.pcie_concurrency_per_socket
    )
    host_input = (
        model.num_sparse * calib.host_input_per_table_s
        + ops.lookup_request_bytes(model, batch) / pcie_agg_in
    )
    components: dict[str, float] = {
        "overhead": calib.gpu_iteration_overhead_s,
        "host_input": host_input,
    }
    hidden: dict[str, float] = {}
    utilizations: dict[str, float] = {}

    # Lookup-weighted and table-weighted fractions of embedding work per
    # location kind.  Lookup weights drive memory traffic; table weights
    # drive pooled-vector wire volumes and kernel counts.
    lk_frac = {"replicated": 0.0, "gpu": 0.0, "system": 0.0, "remote": 0.0}
    tbl_frac = dict(lk_frac)
    lk_total = max(model.mean_total_lookups, 1e-9)
    # Per-GPU lookup load for sharded tables: table-wise partitioning can
    # leave one GPU with the hot tables; the iteration waits for it.
    gpu_loads: dict[tuple[int, int], float] = {}
    for spec in model.tables:
        for shard in plan.shards_for(spec.name):
            if shard.replicated:
                key = "replicated"
            else:
                key = shard.location.kind.value
                if shard.location.kind is LocationKind.GPU:
                    gpu_key = (shard.location.node, shard.location.index)
                    gpu_loads[gpu_key] = gpu_loads.get(gpu_key, 0.0) + (
                        spec.effective_mean_lookups * shard.row_fraction
                    )
            lk_frac[key] += spec.effective_mean_lookups * shard.row_fraction / lk_total
            tbl_frac[key] += shard.row_fraction / model.num_sparse
    frac_gpu = lk_frac["gpu"]
    frac_repl = lk_frac["replicated"]
    frac_system = lk_frac["system"]
    frac_remote = lk_frac["remote"]

    lookup_cost = ops.embedding_lookup_cost(model, batch)
    update_cost = ops.embedding_update_cost(model, batch)
    pooled = ops.pooled_embedding_bytes(model, batch)
    req = ops.lookup_request_bytes(model, batch)

    host = _aggregate_cpu_device(platform, calib)
    host_time = 0.0
    nic_time = 0.0
    ps_cap = float("inf")

    # -- embedding path, split by where the plan put the bytes
    # Embedding ops for several tables are fused into batched kernels
    # (standard practice: grouped EmbeddingBag), so launches grow slowly
    # with table count.
    emb_fusion = 8.0

    if frac_repl > 0:
        # Data-parallel replicas: each GPU looks up only its own b examples,
        # locally, with no exchange (replica sync rides with dense EASGD).
        per_gpu_cost = OpCost(
            flops=(lookup_cost.flops + update_cost.flops) * frac_repl / n_gpus,
            bytes=(lookup_cost.bytes + update_cost.bytes) * frac_repl / n_gpus,
            kernels=max(
                1,
                int(math.ceil(2 * model.num_sparse * tbl_frac["replicated"] / emb_fusion)),
            ),
        )
        components["emb_replicated"] = op_time(gpu, per_gpu_cost)

    if frac_gpu > 0:
        g_used = max(1, plan.sharded_gpus_used())
        # The slowest shard-holder gates the exchange: charge the *maximum*
        # per-GPU lookup share, not the average.  Row-wise striping makes
        # this 1/g; table-wise packing of skewed tables makes it larger.
        total_gpu_lookups = max(sum(gpu_loads.values()), 1e-12)
        max_share = (
            max(gpu_loads.values()) / total_gpu_lookups if gpu_loads else 1.0 / g_used
        )
        per_gpu_cost = OpCost(
            flops=(lookup_cost.flops + update_cost.flops) * frac_gpu * max_share,
            bytes=(lookup_cost.bytes + update_cost.bytes) * frac_gpu * max_share,
            kernels=max(
                1,
                int(
                    math.ceil(
                        2 * model.num_sparse * tbl_frac["gpu"] / (g_used * emb_fusion)
                    )
                ),
            ),
        )
        components["emb_hbm"] = op_time(gpu, per_gpu_cost)
        a2a_pooled = tbl_frac["gpu"] * pooled
        if platform.gpu_interconnect is not None:
            a2a_intra = alltoall_time(
                platform.gpu_interconnect, a2a_pooled / n_gpus, n_gpus
            )
            if not platform.gpu_peer_direct:
                # every sharded table's exchange is staged device->host->device
                a2a_intra += (
                    2
                    * model.num_sparse
                    * tbl_frac["gpu"]
                    * platform.gpu_interconnect.latency_s
                )
        else:
            a2a_intra = 2.0 * transfer_time(platform.pcie, a2a_pooled / n_gpus)
        # forward + backward embedding exchange
        components["emb_alltoall"] = 2.0 * a2a_intra * calib.collective_inefficiency
        if nodes > 1:
            # Inter-node exchange over the NIC.  Conservatively unpooled on
            # the wire (per-lookup vectors cross nodes before pooling),
            # matching the pessimism of the paper's analytical model for
            # multi-node Big Basin (§VI-B).
            raw = batch * model.mean_total_lookups * model.embedding_dim * 4.0
            inter_bytes = frac_gpu * raw * (nodes - 1) / nodes
            inter = transfer_time(platform.nic, 2.0 * inter_bytes)
            inter += 2 * model.num_sparse * platform.nic.latency_s
            components["emb_internode"] = inter * calib.collective_inefficiency
            notes.append(f"multi-node GPU placement over {nodes} nodes")

    if frac_system > 0:
        host_cost = OpCost(
            flops=(lookup_cost.flops + update_cost.flops) * frac_system,
            bytes=(lookup_cost.bytes + update_cost.bytes) * frac_system,
            kernels=0,
        )
        host_time += op_time(host, host_cost)
        pcie_agg = (
            platform.pcie.bandwidth
            * platform.num_cpu_sockets
            * calib.pcie_concurrency_per_socket
        )
        host_time += 2.0 * tbl_frac["system"] * pooled / pcie_agg + platform.pcie.latency_s
        if nodes > 1:
            # Multi-node system-memory scale-out (the paper's closing
            # challenge): each node's batch needs pooled vectors from the
            # (nodes-1)/nodes of tables living on other nodes, shipped over
            # the NIC with host network-stack processing on both ends.
            cross = (nodes - 1) / nodes
            wire = cross * (frac_system * req + 2.0 * tbl_frac["system"] * pooled)
            nic_time += transfer_time(platform.nic, wire) + 4 * platform.nic.latency_s
            stack_rate = calib.net_stack_bytes_per_socket * platform.num_cpu_sockets
            host_time += 2.0 * wire / stack_rate  # serve remote + receive local
            notes.append(f"multi-node system-memory scale-out over {nodes} nodes")

    if frac_remote > 0:
        n_ps = max(1, plan.remote_ps_used())
        wire = frac_remote * req + 2.0 * tbl_frac["remote"] * pooled
        nic_time = transfer_time(platform.nic, wire) + 4 * platform.nic.latency_s
        # Synchronous PS fan-out: the GPU iteration blocks on the slowest
        # parameter-server response every iteration.
        components["remote_rpc"] = calib.remote_iteration_overhead_s
        # CPU-side network-stack processing on the GPU server (§VI-A: data
        # copies and send/recv made the Big Basin CPUs the bottleneck).
        stack_rate = calib.net_stack_bytes_per_socket * platform.num_cpu_sockets
        host_time += wire / stack_rate
        # And the PCIe hop to get pooled vectors onto the GPUs.
        pcie_agg = platform.pcie.bandwidth * platform.num_cpu_sockets
        host_time += 2.0 * tbl_frac["remote"] * pooled / pcie_agg
        ps_cpu = _aggregate_cpu_device(ps_platform, calib)
        ps_bytes_per_ex = frac_remote * (lookup_cost.bytes + update_cost.bytes) / batch
        ps_mem_supply = n_ps * ps_cpu.effective_bandwidth * calib.ps_service_efficiency
        ps_net_per_ex = wire / batch
        ps_net_supply = n_ps * ps_platform.nic.bandwidth * calib.ps_service_efficiency
        ps_cap = min(
            ps_mem_supply / max(ps_bytes_per_ex, 1e-12),
            ps_net_supply / max(ps_net_per_ex, 1e-12),
        )

    components["dense_compute"] = dense_time
    components["dense_sync"] = dense_sync

    # Host-side embedding pipeline overlaps with GPU dense work across
    # consecutive batches: charge only the excess beyond the GPU-side time.
    gpu_side = sum(components.values())
    host_side = host_time + nic_time
    if host_side > gpu_side:
        components["host_pipeline_excess"] = host_side - gpu_side
        hidden["host_pipeline_overlapped"] = gpu_side
    else:
        hidden["host_pipeline"] = host_side

    t_iter = sum(components.values())
    node_throughput = batch / t_iter
    throughput = nodes * node_throughput
    if throughput > ps_cap:
        throughput = ps_cap
        notes.append("capped by remote sparse PS capacity")
        t_iter = nodes * batch / throughput

    readers = num_readers if num_readers is not None else _auto_readers(throughput)
    power = ClusterPower()
    gpu_util = min(1.0, (dense_time + components.get("emb_hbm", 0.0)) / t_iter)
    power.add(platform, nodes, role="gpu_trainer", utilization=gpu_util)
    if frac_remote > 0:
        n_ps = max(1, plan.remote_ps_used())
        power.add(ps_platform, n_ps, role="sparse_ps", utilization=min(1.0, throughput / ps_cap if ps_cap < float("inf") else 0.5))
    power.add(DUAL_SOCKET_CPU, readers, role="reader", utilization=0.5)

    utilizations.update(
        {
            "gpu_compute": min(1.0, dense_time / t_iter),
            "gpu_mem_bw": min(
                1.0,
                (components.get("emb_hbm", 0.0) + dense_cost.bytes / gpu.effective_bandwidth)
                / t_iter,
            ),
            "host_cpu": min(1.0, host_time / t_iter),
            "nic": min(1.0, nic_time / t_iter),
        }
    )

    setup = f"{platform.name}[{plan.strategy.value}]"
    if nodes > 1:
        setup += f" x{nodes}"
    if tracer is not None and tracer.enabled:
        IterationBreakdown(components=components, hidden=hidden).trace(
            tracer,
            setup,
            model=model.name,
            batch=batch,
            placement=plan.strategy.value,
            throughput=throughput,
        )
    return ThroughputReport(
        setup=setup,
        model_name=model.name,
        global_batch=batch * nodes,
        iteration_time_s=t_iter,
        throughput=throughput,
        breakdown=IterationBreakdown(components=components, hidden=hidden),
        power=power,
        utilizations=utilizations,
        notes=tuple(notes),
    )
