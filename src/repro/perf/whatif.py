"""What-if analyses for the optimization opportunities the paper sketches.

Section III-A.2 points at two levers for the large-table problem: *caching*
(skewed access means a small hot set serves most lookups) and *compression
via quantization* (shrinking tables changes where they fit).  These
functions quantify both with the existing performance and placement
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ModelConfig
from ..core.quantization import quantized_table_bytes
from ..hardware.memory import usable_capacity
from ..hardware.specs import PlatformSpec
from ..placement.cache import CachePlan, plan_cache
from ..placement.planner import PlannerConfig, table_footprint
from ..placement.strategies import (
    Location,
    LocationKind,
    PlacementPlan,
    PlacementStrategy,
    Shard,
)
from .calibration import DEFAULT_CALIBRATION, Calibration
from .pipeline import ThroughputReport, gpu_server_throughput

__all__ = [
    "cached_system_memory_throughput",
    "QuantizationCapacityRow",
    "quantized_capacity_report",
]


def cached_system_memory_throughput(
    model: ModelConfig,
    batch: int,
    platform: PlatformSpec,
    cache_budget_bytes: float,
    skew: float = 1.05,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> tuple[ThroughputReport, CachePlan]:
    """System-memory placement with an HBM hot-row cache.

    The cache is expressed as a synthetic placement plan: per table, the
    Zipf hit fraction of its lookups is served from (replicated) GPU HBM
    and the remainder from host DRAM.  A zero budget reduces to the plain
    system-memory placement.
    """
    cache = plan_cache(model, cache_budget_bytes, skew=skew)
    plan = PlacementPlan(strategy=PlacementStrategy.HYBRID)
    cfg = PlannerConfig()
    from ..placement.cache import zipf_hit_rate

    for spec in model.tables:
        rows = cache.cached_rows.get(spec.name, 0)
        hit = zipf_hit_rate(spec.hash_size, rows, skew) if rows else 0.0
        total_bytes = table_footprint(spec, cfg)
        if hit > 0:
            plan.shards.append(
                Shard(
                    spec.name,
                    Location(LocationKind.GPU, index=0),
                    bytes=rows * (spec.dim * 4 + 8) * platform.num_gpus,
                    row_fraction=hit,
                    replicated=True,
                )
            )
        if hit < 1.0:
            plan.shards.append(
                Shard(
                    spec.name,
                    Location(LocationKind.SYSTEM),
                    bytes=total_bytes,
                    row_fraction=1.0 - hit,
                )
            )
    plan.validate_complete({t.name for t in model.tables})
    report = gpu_server_throughput(model, batch, platform, plan, calib=calib)
    return report, cache


@dataclass(frozen=True)
class QuantizationCapacityRow:
    """Storage feasibility of one precision level on one platform."""

    bits: int
    table_bytes: float
    fits_gpu_memory: bool
    min_gpus: int
    fits_system_memory: bool


def quantized_capacity_report(
    model: ModelConfig,
    platform: PlatformSpec,
    bits_options: tuple[int, ...] = (32, 8, 4),
    headroom: float = 0.9,
) -> tuple[QuantizationCapacityRow, ...]:
    """Where do the tables fit at each precision?

    FP32 rows include Adagrad optimizer state (training); quantized rows
    are serving-style storage (codes + scales), the compression use case
    the paper cites for shrinking multi-hundred-GB models.
    """
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    rows = []
    cfg = PlannerConfig(headroom=headroom)
    gpu_usable = usable_capacity(platform.gpu.mem_capacity, headroom)
    total_gpu = gpu_usable * platform.num_gpus
    sys_usable = usable_capacity(platform.system_memory, headroom)
    for bits in bits_options:
        if bits == 32:
            total = sum(table_footprint(t, cfg) for t in model.tables)
        else:
            total = sum(quantized_table_bytes(t, bits) for t in model.tables)
        rows.append(
            QuantizationCapacityRow(
                bits=bits,
                table_bytes=total,
                fits_gpu_memory=total <= total_gpu,
                min_gpus=max(1, int(-(-total // gpu_usable))),
                fits_system_memory=total <= sys_usable,
            )
        )
    return tuple(rows)
