"""Calibration constants for the performance model.

Analytical models need a handful of empirical efficiency factors.  They are
collected here — and only here — so that (a) every fudge factor is explicit
and documented, and (b) the ablation benches can perturb them.  Values were
tuned so the *relative* results (who wins, by what factor, where crossovers
fall) match the paper's figures; see EXPERIMENTS.md for the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Empirical efficiency factors applied on top of datasheet specs."""

    #: Hogwild!-style multi-threaded trainer efficiency on a CPU server.
    cpu_parallel_efficiency: float = 0.70
    #: Aggregate last-level cache of a dual-socket trainer; activations
    #: spilling past this degrade CPU throughput (Fig 11's CPU optimum).
    cpu_llc_bytes: float = 32e6
    #: Exponent of the cache-spill penalty (ws/llc)**exp once ws > llc.
    cache_penalty_exponent: float = 0.8
    #: Fixed per-iteration overhead on a CPU trainer (batch assembly,
    #: framework dispatch, PS round-trip latency not overlapped).
    cpu_iteration_overhead_s: float = 0.5e-3
    #: Fixed per-iteration overhead on a GPU server (host-side launch
    #: coordination, input split/copy) — amortized by big batches (§V-B).
    gpu_iteration_overhead_s: float = 0.5e-3
    #: Host-side cost per sparse feature per iteration on a GPU server:
    #: splitting/packing each feature's jagged indices and dispatching its
    #: lookup.  This is why sparse-feature-heavy models lose GPU efficiency
    #: (Fig 10) — per-table software overhead does not batch away.
    host_input_per_table_s: float = 50e-6
    #: EASGD iterations between elastic syncs with the center parameters
    #: (tau); dense traffic is divided by this.
    easgd_sync_period: float = 16.0
    #: Bytes/s of network payload one CPU server can marshal through its
    #: network stack (serialization + memcpy); the "CPU resources on the
    #: GPU server become the bottleneck" effect for remote placement.
    net_stack_bytes_per_socket: float = 2.0e9
    #: Fraction of a host's PCIe links usable concurrently for host<->GPU
    #: embedding traffic (switch contention).
    pcie_concurrency_per_socket: float = 1.0
    #: Extra multiplier on collective times for imperfect overlap/stragglers.
    collective_inefficiency: float = 1.3
    #: Parameter-server software efficiency (request handling, locks).
    ps_service_efficiency: float = 0.55
    #: Per-iteration cost of the synchronous RPC fan-out to remote sparse
    #: parameter servers from a GPU trainer: the GPU iteration cannot start
    #: until every PS response lands, so it eats dispatch + straggler tail
    #: ("lookup latency ... becomes a bottleneck", §VI-B).  CPU Hogwild
    #: trainers hide this asynchronously and do not pay it.
    remote_iteration_overhead_s: float = 13e-3
    #: Fraction of dense-sync communication hidden under compute by the
    #: asynchronous EASGD protocol on CPU trainers.
    async_overlap_fraction: float = 0.8

    def __post_init__(self) -> None:
        for name in (
            "cpu_parallel_efficiency",
            "ps_service_efficiency",
            "async_overlap_fraction",
        ):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.cpu_llc_bytes <= 0 or self.net_stack_bytes_per_socket <= 0:
            raise ValueError("byte-rate constants must be positive")
        if self.collective_inefficiency < 1:
            raise ValueError("collective_inefficiency must be >= 1")


DEFAULT_CALIBRATION = Calibration()
