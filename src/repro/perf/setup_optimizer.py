"""Automatic training-setup selection.

The paper's introduction frames the operator's problem: "To select the
optimal hardware system in a heterogeneous datacenter with a mix of CPU and
GPU servers ... the large memory capacity requirement of embedding tables
requires different software infrastructure" (§I).  This module solves that
selection with the pieces built here: enumerate candidate setups (CPU
clusters of several sizes; each GPU platform with every feasible placement
and batch size), evaluate each with the performance model, and return the
best under a chosen objective and constraints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.config import ModelConfig
from ..hardware.specs import BIG_BASIN, DUAL_SOCKET_CPU, ZION, PlatformSpec
from ..placement.planner import PlannerConfig, model_embedding_footprint, plan_placement
from ..placement.strategies import PlacementStrategy
from ..hardware.memory import CapacityError
from .calibration import DEFAULT_CALIBRATION, Calibration
from .pipeline import ThroughputReport, cpu_cluster_throughput, gpu_server_throughput

__all__ = ["Objective", "CandidateSetup", "SetupSearchResult", "optimize_setup"]


class Objective(enum.Enum):
    """What "best" means for the selection."""

    THROUGHPUT = "throughput"
    PERF_PER_WATT = "perf_per_watt"


@dataclass(frozen=True)
class CandidateSetup:
    """One evaluated setup."""

    label: str
    report: ThroughputReport

    @property
    def throughput(self) -> float:
        return self.report.throughput

    @property
    def perf_per_watt(self) -> float:
        return self.report.perf_per_watt


@dataclass(frozen=True)
class SetupSearchResult:
    """All candidates plus the winner under the requested objective."""

    candidates: tuple[CandidateSetup, ...]
    objective: Objective

    @property
    def best(self) -> CandidateSetup:
        key = (
            (lambda c: c.throughput)
            if self.objective is Objective.THROUGHPUT
            else (lambda c: c.perf_per_watt)
        )
        return max(self.candidates, key=key)

    def ranked(self) -> list[CandidateSetup]:
        key = (
            (lambda c: c.throughput)
            if self.objective is Objective.THROUGHPUT
            else (lambda c: c.perf_per_watt)
        )
        return sorted(self.candidates, key=key, reverse=True)


def _cpu_candidates(
    model: ModelConfig,
    trainer_counts: tuple[int, ...],
    batch_per_trainer: int,
    calib: Calibration,
):
    footprint = model_embedding_footprint(model)
    min_sparse_ps = max(1, int(-(-footprint // 230e9)))
    for trainers in trainer_counts:
        dense_ps = max(1, trainers // 5)
        # Sparse PS are provisioned for capacity *and* bandwidth: beyond the
        # capacity minimum, more PS relieve the lookup-service bottleneck
        # for sparse-heavy models (the fleet's wide PS histogram, Fig 9).
        ps_options = sorted(
            {min_sparse_ps, 2 * min_sparse_ps, max(min_sparse_ps, trainers // 2)}
        )
        for sparse_ps in ps_options:
            report = cpu_cluster_throughput(
                model,
                batch_per_trainer,
                trainers,
                sparse_ps,
                dense_ps,
                calib=calib,
            )
            yield CandidateSetup(
                label=f"CPU x{trainers}T/{sparse_ps}sPS/{dense_ps}dPS",
                report=report,
            )


def _gpu_candidates(
    model: ModelConfig,
    platforms: tuple[PlatformSpec, ...],
    batches: tuple[int, ...],
    max_remote_ps: int,
    calib: Calibration,
):
    footprint = model_embedding_footprint(model)
    remote_ps = max(1, int(-(-footprint // 230e9)))
    remote_ps = min(max(remote_ps, 4), max_remote_ps)
    for platform in platforms:
        for strategy in PlacementStrategy:
            try:
                plan = plan_placement(
                    model,
                    platform,
                    strategy,
                    num_ps=remote_ps,
                    ps_platform=DUAL_SOCKET_CPU,
                )
            except (CapacityError, ValueError):
                continue
            for batch in batches:
                report = gpu_server_throughput(
                    model, batch, platform, plan, calib=calib
                )
                yield CandidateSetup(
                    label=f"{platform.name}/{strategy.value}@B{batch}",
                    report=report,
                )


def optimize_setup(
    model: ModelConfig,
    objective: Objective = Objective.THROUGHPUT,
    min_throughput: float = 0.0,
    trainer_counts: tuple[int, ...] = (4, 8, 16, 32),
    cpu_batch: int = 200,
    gpu_batches: tuple[int, ...] = (800, 1600, 3200, 6400),
    platforms: tuple[PlatformSpec, ...] = (BIG_BASIN, ZION),
    max_remote_ps: int = 32,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> SetupSearchResult:
    """Enumerate and rank training setups for ``model``.

    ``min_throughput`` filters candidates that cannot meet a service-level
    training-throughput requirement (the fleet picks server counts "based
    on the throughput requirement", §IV-B.2).

    Raises:
        ValueError: when no candidate setup is feasible (or none meets
            ``min_throughput``).
    """
    if min_throughput < 0:
        raise ValueError("min_throughput must be >= 0")
    candidates = list(_cpu_candidates(model, trainer_counts, cpu_batch, calib))
    candidates.extend(
        _gpu_candidates(model, platforms, gpu_batches, max_remote_ps, calib)
    )
    eligible = tuple(c for c in candidates if c.throughput >= min_throughput)
    if not eligible:
        raise ValueError(
            f"no feasible setup reaches {min_throughput:,.0f} ex/s "
            f"({len(candidates)} candidates evaluated)"
        )
    return SetupSearchResult(candidates=eligible, objective=objective)
