"""Analytical performance model: operator costs -> iteration time -> throughput."""

from .calibration import DEFAULT_CALIBRATION, Calibration
from .pipeline import (
    READER_EXAMPLES_PER_SEC,
    IterationBreakdown,
    ThroughputReport,
    cpu_cluster_throughput,
    gpu_server_throughput,
)
from .fitting import FitResult, fit_calibration, table3_ratio_loss
from .roofline import OperatorProfile, RooflineReport, roofline_report
from .setup_optimizer import (
    CandidateSetup,
    Objective,
    SetupSearchResult,
    optimize_setup,
)
from .whatif import (
    QuantizationCapacityRow,
    cached_system_memory_throughput,
    quantized_capacity_report,
)
from . import ops

__all__ = [
    "OperatorProfile",
    "RooflineReport",
    "roofline_report",
    "FitResult",
    "fit_calibration",
    "table3_ratio_loss",
    "Objective",
    "CandidateSetup",
    "SetupSearchResult",
    "optimize_setup",
    "cached_system_memory_throughput",
    "quantized_capacity_report",
    "QuantizationCapacityRow",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "IterationBreakdown",
    "ThroughputReport",
    "cpu_cluster_throughput",
    "gpu_server_throughput",
    "READER_EXAMPLES_PER_SEC",
    "ops",
]
