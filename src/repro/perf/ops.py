"""Operator-level cost catalog for one DLRM training iteration.

Every throughput number in the paper is, at bottom, a composition of a small
set of operators: the two MLP stacks (forward + backward), the feature
interaction, embedding lookups/pooling, embedding gradient scatter +
optimizer update, and the communication volumes that glue distributed
pieces together.  This module turns a :class:`~repro.core.config.ModelConfig`
plus a batch size into :class:`~repro.hardware.device.OpCost` values and
byte volumes; :mod:`repro.perf.pipeline` maps them onto platforms.

Conventions: FP32 everywhere (the production models use single precision,
§VI); a backward matmul pass costs ~2x the forward FLOPs; activations and
weights are each read/written once per pass.
"""

from __future__ import annotations

from ..core.config import FP32_BYTES, InteractionType, MLPSpec, ModelConfig
from ..hardware.device import OpCost

__all__ = [
    "mlp_flops",
    "mlp_bytes",
    "mlp_cost",
    "interaction_cost",
    "embedding_lookup_cost",
    "embedding_update_cost",
    "inference_dense_cost",
    "dense_optimizer_cost",
    "dense_param_bytes",
    "pooled_embedding_bytes",
    "lookup_request_bytes",
    "activation_working_set_bytes",
    "KERNELS_PER_LAYER_FWD",
    "KERNELS_PER_LAYER_BWD",
    "EMB_RANDOM_ACCESS_PENALTY",
]

#: Kernel launches per linear layer (matmul + bias/activation fused-ish).
KERNELS_PER_LAYER_FWD = 2
#: Backward needs grads w.r.t. input, weights, and bias.
KERNELS_PER_LAYER_BWD = 3
#: Random row gathers waste cache lines / DRAM pages relative to streaming
#: reads; charge extra bytes for the irregular access pattern the paper
#: calls out ("often irregular vector accesses", §I).
EMB_RANDOM_ACCESS_PENALTY = 2.0
#: Adagrad reads+writes the weight row and its accumulator row.
SPARSE_OPTIMIZER_TOUCHES = 4


def _mlp_layer_dims(in_features: int, spec: MLPSpec) -> list[tuple[int, int]]:
    dims = []
    prev = in_features
    for width in spec.layer_sizes:
        dims.append((prev, width))
        prev = width
    return dims


def mlp_flops(in_features: int, spec: MLPSpec, batch: int, backward: bool) -> float:
    """GEMM FLOPs of one pass over the stack (2*m*n*k per matmul)."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    fwd = sum(2.0 * batch * i * o for i, o in _mlp_layer_dims(in_features, spec))
    return fwd * (2.0 if backward else 1.0)


def mlp_bytes(in_features: int, spec: MLPSpec, batch: int, backward: bool) -> float:
    """Bytes moved: weights once per pass, activations in and out per layer."""
    total = 0.0
    for i, o in _mlp_layer_dims(in_features, spec):
        weights = i * o * FP32_BYTES
        acts = batch * (i + o) * FP32_BYTES
        total += weights + acts
    return total * (2.0 if backward else 1.0)


def mlp_cost(in_features: int, spec: MLPSpec, batch: int, backward: bool) -> OpCost:
    kernels_per_layer = KERNELS_PER_LAYER_BWD if backward else KERNELS_PER_LAYER_FWD
    return OpCost(
        flops=mlp_flops(in_features, spec, batch, backward),
        bytes=mlp_bytes(in_features, spec, batch, backward),
        kernels=spec.depth * kernels_per_layer,
    )


def interaction_cost(model: ModelConfig, batch: int, backward: bool) -> OpCost:
    """Cost of the feature-interaction combiner.

    Concat is pure data movement; pairwise dot is a small batched GEMM over
    the ``(n+1, d)`` stack.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    d = model.embedding_dim
    n_vec = model.num_sparse + 1
    stack_bytes = batch * n_vec * d * FP32_BYTES
    if model.interaction is InteractionType.CONCAT:
        cost = OpCost(flops=0.0, bytes=2.0 * stack_bytes, kernels=1)
    else:
        flops = 2.0 * batch * n_vec * n_vec * d  # T @ T^T
        out_bytes = batch * model.interaction_features * FP32_BYTES
        cost = OpCost(flops=flops, bytes=2.0 * stack_bytes + out_bytes, kernels=2)
    if backward:
        cost = OpCost(flops=2.0 * cost.flops, bytes=2.0 * cost.bytes, kernels=cost.kernels + 1)
    return cost


def embedding_lookup_cost(model: ModelConfig, batch: int) -> OpCost:
    """Gather + pool all sparse features for a batch.

    Bytes are dominated by the random row gathers:
    ``batch * sum(mean_lookups) * d`` rows read, with the irregular-access
    penalty, plus the pooled outputs written.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    d = model.embedding_dim
    gathered = batch * model.mean_total_lookups * d * FP32_BYTES
    pooled = batch * model.num_sparse * d * FP32_BYTES
    flops = batch * model.mean_total_lookups * d  # additions while pooling
    return OpCost(
        flops=flops,
        bytes=gathered * EMB_RANDOM_ACCESS_PENALTY + pooled,
        kernels=model.num_sparse,
    )


def embedding_update_cost(model: ModelConfig, batch: int) -> OpCost:
    """Scatter output grads into rows and apply a sparse Adagrad step.

    Each looked-up row is touched ``SPARSE_OPTIMIZER_TOUCHES`` times
    (read/write weight + accumulator)."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    d = model.embedding_dim
    row_bytes = batch * model.mean_total_lookups * d * FP32_BYTES
    flops = 4.0 * batch * model.mean_total_lookups * d  # square, add, sqrt, axpy
    return OpCost(
        flops=flops,
        bytes=row_bytes * SPARSE_OPTIMIZER_TOUCHES * EMB_RANDOM_ACCESS_PENALTY / 2.0,
        kernels=model.num_sparse,
    )


def inference_dense_cost(model: ModelConfig, batch: int) -> OpCost:
    """Forward-only dense work of one inference batch: bottom MLP +
    interaction + top MLP (no backward, no optimizer).

    The online serving engine (:mod:`repro.serving`) prices per-batch
    service time as this plus the cache-discounted
    :func:`embedding_lookup_cost` — inference is the forward slice of the
    training cost catalog, which is what makes the training and serving
    models consistent with each other.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    cost = mlp_cost(model.num_dense, model.bottom_mlp, batch, backward=False)
    cost = cost + interaction_cost(model, batch, backward=False)
    cost = cost + mlp_cost(model.interaction_features, model.top_mlp, batch, backward=False)
    return cost


def dense_param_bytes(model: ModelConfig) -> float:
    """FP32 bytes of the data-parallel (MLP) parameters — the all-reduce /
    dense-PS sync volume per iteration."""
    return float(model.dense_parameter_bytes)


def dense_optimizer_cost(model: ModelConfig) -> OpCost:
    """Dense Adagrad step: read grad + weight + state, write weight + state."""
    param_bytes = dense_param_bytes(model)
    return OpCost(flops=4.0 * model.mlp_parameters, bytes=5.0 * param_bytes, kernels=4)


def pooled_embedding_bytes(model: ModelConfig, batch: int) -> float:
    """Bytes of all pooled embedding vectors for a batch — the forward
    all-to-all / remote-response volume (one d-vector per table per example).
    The backward pass moves the same volume of gradients."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return float(batch * model.num_sparse * model.embedding_dim * FP32_BYTES)


def lookup_request_bytes(model: ModelConfig, batch: int) -> float:
    """Bytes of sparse indices shipped to wherever the tables live
    (8-byte ids, one per lookup)."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return float(batch * model.mean_total_lookups * 8)


def activation_working_set_bytes(model: ModelConfig, batch: int) -> float:
    """Rough per-batch activation footprint on a trainer.

    Drives the CPU cache-spill penalty: once the working set overflows the
    last-level cache, effective bandwidth (and with it CPU throughput)
    degrades — the mechanism behind the CPU batch-size optimum in Fig 11.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    widths = (
        model.num_dense
        + sum(model.bottom_mlp.layer_sizes)
        + model.num_sparse * model.embedding_dim
        + model.interaction_features
        + sum(model.top_mlp.layer_sizes)
    )
    return float(batch * widths * FP32_BYTES)
