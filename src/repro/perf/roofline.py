"""Roofline analysis of the DLRM operator mix.

The paper cites the roofline model as the standard lens for predicting
performance across architectures (§I, [52]).  This module classifies every
operator of a training iteration by arithmetic intensity against a
device's ridge point, quantifying *why* the systems behave as they do: MLP
GEMMs sit compute-bound on CPUs but under the V100 ridge at small per-GPU
batches, while embedding ops are deep in memory-bound territory everywhere
— the structural reason embedding placement dominates the design space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ModelConfig
from ..hardware.device import OpCost, arithmetic_intensity, op_time, ridge_point
from ..hardware.specs import DeviceSpec
from . import ops

__all__ = ["OperatorProfile", "RooflineReport", "roofline_report"]


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's position on a device's roofline."""

    name: str
    cost: OpCost
    intensity: float  # flops / byte
    time_s: float
    bound: str  # "compute" or "memory"

    @property
    def flops(self) -> float:
        return self.cost.flops

    @property
    def bytes(self) -> float:
        return self.cost.bytes


@dataclass(frozen=True)
class RooflineReport:
    """All operators of one iteration on one device."""

    device: DeviceSpec
    batch: int
    operators: tuple[OperatorProfile, ...]

    @property
    def ridge_point(self) -> float:
        return ridge_point(self.device)

    def by_name(self) -> dict[str, OperatorProfile]:
        return {o.name: o for o in self.operators}

    @property
    def memory_bound_time_fraction(self) -> float:
        """Share of operator time spent in memory-bound operators."""
        total = sum(o.time_s for o in self.operators)
        if total == 0:
            return 0.0
        memory = sum(o.time_s for o in self.operators if o.bound == "memory")
        return memory / total

    def dominant_operator(self) -> OperatorProfile:
        return max(self.operators, key=lambda o: o.time_s)


def _profile(name: str, cost: OpCost, device: DeviceSpec) -> OperatorProfile:
    intensity = arithmetic_intensity(cost)
    return OperatorProfile(
        name=name,
        cost=cost,
        intensity=intensity,
        time_s=op_time(device, cost),
        bound="compute" if intensity >= ridge_point(device) else "memory",
    )


def roofline_report(
    model: ModelConfig, batch: int, device: DeviceSpec
) -> RooflineReport:
    """Profile every operator of one training iteration on ``device``.

    Raises:
        ValueError: on a non-positive batch.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    profiles = [
        _profile(
            "bottom_mlp_fwd",
            ops.mlp_cost(model.num_dense, model.bottom_mlp, batch, backward=False),
            device,
        ),
        _profile(
            "bottom_mlp_bwd",
            ops.mlp_cost(model.num_dense, model.bottom_mlp, batch, backward=True),
            device,
        ),
        _profile(
            "interaction_fwd", ops.interaction_cost(model, batch, backward=False), device
        ),
        _profile(
            "interaction_bwd", ops.interaction_cost(model, batch, backward=True), device
        ),
        _profile(
            "top_mlp_fwd",
            ops.mlp_cost(model.interaction_features, model.top_mlp, batch, backward=False),
            device,
        ),
        _profile(
            "top_mlp_bwd",
            ops.mlp_cost(model.interaction_features, model.top_mlp, batch, backward=True),
            device,
        ),
        _profile("emb_lookup", ops.embedding_lookup_cost(model, batch), device),
        _profile("emb_update", ops.embedding_update_cost(model, batch), device),
        _profile("dense_optimizer", ops.dense_optimizer_cost(model), device),
    ]
    return RooflineReport(device=device, batch=batch, operators=tuple(profiles))


def render(report: RooflineReport) -> str:
    """Paper-style text table of the roofline classification."""
    from ..analysis import format_si, render_table

    rows = [
        [
            o.name,
            format_si(o.flops),
            format_si(o.bytes),
            f"{o.intensity:.2f}",
            f"{o.time_s * 1e6:.1f} us",
            o.bound,
        ]
        for o in report.operators
    ]
    header = (
        f"Roofline on {report.device.name} @ batch {report.batch} "
        f"(ridge point {report.ridge_point:.1f} flops/byte)"
    )
    return render_table(
        ["operator", "flops", "bytes", "intensity", "time", "bound"], rows, title=header
    )
