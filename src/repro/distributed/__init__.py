"""Distributed training: functional sync algorithms and event-level cluster sim."""

from .cluster import ClusterConfig, ClusterResult, SyncMode, simulate_cpu_cluster
from .gpu_sim import GpuServerSimResult, simulate_gpu_server
from .mp import (
    HybridResult,
    HybridRunConfig,
    ShardPlan,
    WorkerCrashError,
    run_hybrid,
    run_hybrid_serial,
)
from .simulator import Event, Resource, Simulator
from .sync import (
    ClusterStalledError,
    DelayedGradientTrainer,
    EASGDConfig,
    EASGDTrainer,
    ShadowSyncTrainer,
    SyncSGDTrainer,
)

__all__ = [
    "Simulator",
    "Resource",
    "Event",
    "ClusterConfig",
    "ClusterResult",
    "ClusterStalledError",
    "SyncMode",
    "simulate_cpu_cluster",
    "GpuServerSimResult",
    "simulate_gpu_server",
    "EASGDConfig",
    "EASGDTrainer",
    "DelayedGradientTrainer",
    "SyncSGDTrainer",
    "ShadowSyncTrainer",
    "HybridRunConfig",
    "HybridResult",
    "ShardPlan",
    "WorkerCrashError",
    "run_hybrid",
    "run_hybrid_serial",
]
