"""Elastic restart orchestration for the multi-process hybrid trainer.

:func:`run_hybrid_ft` wraps :func:`~repro.distributed.mp.hybrid.run_hybrid`
with the full fault-tolerance loop the analytical resilience layer only
models:

1. run with sharded checkpointing enabled (:mod:`.ckpt`);
2. on a :class:`~repro.distributed.mp.hybrid.WorkerCrashError` — a real
   worker death, detected and drained by the parent — consult the
   :class:`RestartPolicy`: if restarts remain, sleep a seeded backoff
   (reusing :class:`~repro.resilience.retry.RetryPolicy`), locate the
   newest valid manifest, and respawn the **full worker set** from it;
3. account every step into a
   :class:`~repro.resilience.recovery.GoodputLedger` — credits, the
   checkpoint watermark, and the rollback at each crash — so the measured
   recovery cost and goodput of a real kill cross-validate against
   ``recovery.checkpoint_write_time_s`` / ``expected_goodput_fraction``.

The restarted run extends the bit-identity contract: resuming from step k
of a W-worker ``"ordered"`` run reproduces the uninterrupted run's losses
and every table/dense digest exactly (f64 and f32), because the resume
path replays the same seeded batch streams and restores every trained
array byte-for-byte.

:func:`kills_from_plan` bridges the declarative
:class:`~repro.resilience.faults.FaultPlan` vocabulary onto real-process
kills: TRAINER fault events become :class:`KillSpec`\\ s (``time_s`` is
interpreted as a global step index), so the same plan object that drives
the event-level simulator can SIGKILL actual workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...core.config import ModelConfig
from ...obs.tracer import NULL_TRACER
from ...resilience.faults import ComponentKind, FaultInjector, FaultPlan
from ...resilience.recovery import GoodputLedger
from ...resilience.retry import RetriesExhausted, RetryPolicy
from ...runtime.runner import derive_seed
from . import ckpt
from .hybrid import (
    HybridResult,
    HybridRunConfig,
    KillSpec,
    WorkerCrashError,
    run_hybrid,
)

__all__ = [
    "RestartPolicy",
    "CrashRecord",
    "FtResult",
    "kills_from_plan",
    "run_hybrid_ft",
]


@dataclass(frozen=True)
class RestartPolicy:
    """How many worker-set deaths to absorb, and how to pace respawns.

    ``max_restarts`` is the number of *re*-launches permitted after the
    initial attempt (0 = fail on the first crash, like bare
    ``run_hybrid``).  ``backoff`` prices the pause before each respawn —
    attempt k sleeps ``backoff.backoff_s(k)`` (seeded jitter), the same
    capped-exponential schedule the event-level cluster simulation
    charges for trainer restarts.
    """

    max_restarts: int = 1
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8,
            base_delay_s=0.05,
            multiplier=2.0,
            max_delay_s=1.0,
            jitter=0.5,
            deadline_s=30.0,
        )
    )

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )


@dataclass(frozen=True)
class CrashRecord:
    """One absorbed (or fatal) worker-set death."""

    attempt: int  # which run attempt died (0 = the initial launch)
    rank: int  # primary casualty
    exitcode: int | None
    at_step: int  # max completed global step across ranks at detection
    resumed_step: int  # manifest step the next attempt resumed from (-1 = none)
    lost_steps: int  # at_step - resumed_step: the rollback window
    drain_s: float  # detection-to-quiet drain time measured by the parent
    backoff_s: float  # pause charged before the respawn
    restore_s: float = 0.0  # manifest scan + shard load wall time


@dataclass
class FtResult:
    """A fault-tolerant run: the final result plus the recovery ledger."""

    result: HybridResult
    ledger: GoodputLedger
    restarts_used: int
    crashes: list[CrashRecord]
    checkpoints: list[tuple[int, float]]  # (global step, max write seconds)
    wall_s: float

    @property
    def checkpoint_write_s(self) -> float:
        """Mean measured per-checkpoint write cost (straggler-defined)."""
        if not self.checkpoints:
            return 0.0
        return sum(s for _, s in self.checkpoints) / len(self.checkpoints)

    def goodput_fraction(self) -> float:
        """Measured useful-examples fraction of all examples attempted."""
        if self.ledger.completed_examples == 0:
            return 1.0
        return self.ledger.useful_examples / self.ledger.completed_examples


def kills_from_plan(
    plan: FaultPlan, world: int, steps: int, phase: str = "loss"
) -> list[KillSpec]:
    """Real-process kills from a declarative fault plan, deterministically.

    TRAINER events from ``FaultInjector.sample_crashes`` (scheduled plus
    MTBF-sampled under ``plan.seed``) map onto :class:`KillSpec`:
    ``index % world`` picks the rank and ``time_s`` is read as a global
    step index (the mp trainer is step-clocked, not wall-clocked).
    Events land on successive restart attempts in time order — attempt k
    absorbs the k-th crash — mirroring how the event simulator replays a
    multi-crash timeline.  PS-class events are ignored: the hybrid
    trainer has no parameter servers to kill.
    """
    if world < 1:
        raise ValueError(f"world must be >= 1, got {world}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    events = FaultInjector(plan).sample_crashes(
        {ComponentKind.TRAINER: world}, horizon_s=float(steps)
    )
    kills: list[KillSpec] = []
    for attempt, event in enumerate(
        e for e in events if e.kind == ComponentKind.TRAINER
    ):
        step = min(steps - 1, max(0, int(event.time_s)))
        kills.append(
            KillSpec(
                rank=event.index % world,
                step=step,
                phase=phase,
                attempt=attempt,
            )
        )
    return kills


def _replay_ledger(
    ledger: GoodputLedger,
    run: HybridRunConfig,
    start: int,
    end: int,
    committed: set[int],
    write_s: dict[int, float],
) -> None:
    """Account steps ``[start, end)`` of one attempt into the ledger.

    Events are replayed in step order — credit each global step's
    examples, then advance the checkpoint watermark when that step
    committed — so a later ``rollback()`` loses exactly the
    post-checkpoint window, the same ordering the event-level simulator
    maintains.
    """
    for step in range(start, end):
        ledger.credit(run.batch_size)
        done = step + 1
        if done in committed:
            ledger.mark_checkpoint(write_s.get(done, 0.0))


def run_hybrid_ft(
    config: ModelConfig,
    run: HybridRunConfig,
    *,
    policy: RestartPolicy | None = None,
    kills: list[KillSpec] | None = None,
    tracer=None,
    registry=None,
) -> FtResult:
    """Train to completion across real worker deaths, restarting from the
    newest valid checkpoint under ``policy``.

    ``run.checkpoint_every``/``checkpoint_dir`` must be set for restarts
    to make progress (a crash with no manifest restarts from scratch —
    legal, but every crash then replays the whole prefix).  ``kills``
    injects seeded deaths; each :class:`KillSpec` fires only on its
    ``attempt``, so a respawned worker set does not re-trigger it.

    Raises :class:`~repro.resilience.retry.RetriesExhausted` once
    ``policy.max_restarts`` respawns have been consumed and another
    worker dies — after the survivors drained (bounded by
    ``run.drain_timeout_s``), never by hanging out ``collect_timeout_s``.
    """
    policy = policy or RestartPolicy()
    tracer = tracer if tracer is not None else NULL_TRACER
    kills = list(kills or [])
    rng = np.random.default_rng(derive_seed(run.seed, "ft-backoff"))
    ledger = GoodputLedger()
    crashes: list[CrashRecord] = []
    all_checkpoints: dict[int, float] = {}
    resume: ckpt.ResumeState | None = None
    t0 = time.perf_counter()
    attempt = 0
    while True:
        attempt_kills = [k for k in kills if k.attempt == attempt]
        start = resume.step if resume is not None else 0
        try:
            result = run_hybrid(
                config, run, tracer, kills=attempt_kills, resume=resume
            )
        except WorkerCrashError as err:
            ledger.crashes += 1
            at_step = max(err.progress.values(), default=start)
            for step, secs in err.checkpoints:
                all_checkpoints[step] = max(
                    all_checkpoints.get(step, 0.0), secs
                )
            committed = set(all_checkpoints)
            _replay_ledger(
                ledger, run, start, at_step, committed, all_checkpoints
            )
            lost = ledger.rollback()
            t_scan = time.perf_counter()
            manifest = (
                ckpt.latest_valid_manifest(run.checkpoint_dir, world=run.workers)
                if run.checkpoint_dir
                else None
            )
            scan_s = time.perf_counter() - t_scan
            resumed_step = manifest.step if manifest is not None else -1
            if attempt >= policy.max_restarts:
                if registry is not None:
                    _publish(registry, ledger, len(crashes) + 1, attempt)
                raise RetriesExhausted(
                    "mp worker set", attempt + 1, last_error=str(err)
                ) from err
            backoff = policy.backoff.backoff_s(attempt + 1, rng)
            time.sleep(backoff)
            t_build = time.perf_counter()
            resume = (
                ckpt.build_resume(manifest, run.checkpoint_dir)
                if manifest is not None
                else None
            )
            restore_s = scan_s + time.perf_counter() - t_build
            ledger.recovery_time_s += err.drain_s + backoff + restore_s
            ledger.failed_iterations += max(0, at_step - max(resumed_step, 0))
            crashes.append(
                CrashRecord(
                    attempt=attempt,
                    rank=err.rank,
                    exitcode=err.exitcode,
                    at_step=at_step,
                    resumed_step=resumed_step,
                    lost_steps=at_step - max(resumed_step, 0),
                    drain_s=err.drain_s,
                    backoff_s=backoff,
                    restore_s=restore_s,
                )
            )
            tracer.record(
                "mp.ft.restore",
                "io",
                0.0,
                restore_s,
                tid=0,
                attempt=attempt,
                rank=err.rank,
                resumed_step=resumed_step,
            )
            attempt += 1
            continue
        break
    for step, secs in result.checkpoints:
        all_checkpoints[step] = max(all_checkpoints.get(step, 0.0), secs)
    _replay_ledger(
        ledger, run, start, run.steps, set(all_checkpoints), all_checkpoints
    )
    wall_s = time.perf_counter() - t0
    if registry is not None:
        _publish(registry, ledger, len(crashes), attempt)
    return FtResult(
        result=result,
        ledger=ledger,
        restarts_used=attempt,
        crashes=crashes,
        checkpoints=sorted(all_checkpoints.items()),
        wall_s=wall_s,
    )


def _publish(registry, ledger: GoodputLedger, crashes: int, restarts: int) -> None:
    registry.counter("mp.ft.crashes").inc(crashes)
    registry.counter("mp.ft.restarts").inc(restarts)
    registry.counter("mp.ft.checkpoints").inc(ledger.checkpoints_taken)
    registry.counter("mp.ft.lost_examples").inc(ledger.lost_examples)
    registry.gauge("mp.ft.checkpoint_time_s").set(ledger.checkpoint_time_s)
    registry.gauge("mp.ft.recovery_time_s").set(ledger.recovery_time_s)
