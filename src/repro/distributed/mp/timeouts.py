"""One knob for every supervisory timeout in the mp package.

The hybrid trainer and its probes use joins, barrier waits and queue gets
purely as *wedge detection* — on a healthy host they never fire, but a
slow or oversubscribed CI box can trip them spuriously.  Instead of
hardcoded ``timeout=30.0``/``60.0`` literals scattered across the
package, every such wait draws from one :class:`MpTimeouts` value, and the
whole set scales with a single environment variable::

    REPRO_MP_TIMEOUT_SCALE=4 python -m pytest tests/test_mp.py

Defaults are the historical literals, so behaviour is unchanged unless
the knob is turned.  ``set_timeouts`` exists for tests that want exact
values; worker processes inherit the environment (and any override set
before ``fork``), so parent and children always agree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["MpTimeouts", "get_timeouts", "set_timeouts"]

#: Environment variable multiplying every timeout below.
SCALE_ENV = "REPRO_MP_TIMEOUT_SCALE"


@dataclass(frozen=True)
class MpTimeouts:
    """Supervisory timeouts (seconds) for the mp package.

    Attributes:
        join_s: process/thread join waits on healthy shutdown paths
            (worker joins after reports, probe child joins, the
            :class:`~repro.distributed.mp.allreduce.GradReducer` comm
            thread join).
        probe_s: blocking waits inside the comm probes — barrier waits in
            the probe children and queue gets in the parent.
        reap_s: post-crash joins, where the process is already believed
            dead and the join only collects the exit code.
    """

    join_s: float = 30.0
    probe_s: float = 60.0
    reap_s: float = 5.0

    def __post_init__(self) -> None:
        for name in ("join_s", "probe_s", "reap_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def scaled(self, factor: float) -> "MpTimeouts":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            join_s=self.join_s * factor,
            probe_s=self.probe_s * factor,
            reap_s=self.reap_s * factor,
        )

    @classmethod
    def from_env(cls) -> "MpTimeouts":
        """Defaults times ``$REPRO_MP_TIMEOUT_SCALE`` (1.0 when unset)."""
        raw = os.environ.get(SCALE_ENV)
        base = cls()
        if not raw:
            return base
        try:
            factor = float(raw)
        except ValueError as err:
            raise ValueError(f"{SCALE_ENV} must be a number, got {raw!r}") from err
        return base.scaled(factor)


_OVERRIDE: MpTimeouts | None = None


def get_timeouts() -> MpTimeouts:
    """The active timeout set: explicit override, else environment-scaled."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return MpTimeouts.from_env()


def set_timeouts(timeouts: MpTimeouts | None) -> None:
    """Install an explicit override (``None`` restores env-derived values)."""
    global _OVERRIDE
    _OVERRIDE = timeouts
