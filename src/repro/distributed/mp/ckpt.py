"""Crash-safe sharded checkpoints for the hybrid-parallel trainer.

Each rank persists exactly the state it owns — its ``TableShards``
segments (weights **and** Adagrad accumulators) plus, on rank 0, one copy
of the replicated dense parameters and their optimizer state — to a
per-rank ``.npz`` file.  Rank 0 then commits a JSON **manifest** naming
every shard file and its sha256.  Both writes are atomic (write a temp
file, ``os.replace`` onto the final name), so a crash at any instant
leaves either the previous complete checkpoint or the new complete
checkpoint, never a torn one:

* a shard temp that never renamed is invisible to :func:`latest_valid_manifest`;
* a manifest temp that never renamed leaves the previous manifest current;
* a manifest naming a shard whose content doesn't hash to the recorded
  sha256 (or is missing) is rejected and restore falls back to the
  previous step's manifest.

Restore is **bit-exact**: weights, accumulators, dense replica and the
per-rank loss histories all round-trip through ``.npz`` byte-for-byte
(pinned by the hypothesis suite in ``tests/test_mp_ft.py``), which is
what extends PR 3's kill-and-restore bit-identity contract to real
processes.

File layout under ``checkpoint_dir``::

    shard-r<rank>-s<step>.npz   # per-rank state after <step> global steps
    manifest-s<step>.json       # commit record, written last, rank 0 only

This module is deliberately independent of :mod:`.hybrid` (no circular
import): it knows about arrays and files, not about workers.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import re
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "MANIFEST_VERSION",
    "Manifest",
    "ResumeState",
    "ShardEntry",
    "shard_filename",
    "manifest_filename",
    "save_shard_file",
    "load_shard_file",
    "write_manifest",
    "load_manifest",
    "latest_valid_manifest",
    "build_resume",
]

MANIFEST_VERSION = 1

_MANIFEST_RE = re.compile(r"^manifest-s(\d+)\.json$")


def shard_filename(rank: int, step: int) -> str:
    return f"shard-r{rank}-s{step}.npz"


def manifest_filename(step: int) -> str:
    return f"manifest-s{step}.json"


@dataclass(frozen=True)
class ShardEntry:
    """One rank's contribution to a committed checkpoint."""

    rank: int
    file: str
    sha256: str
    tables: tuple[str, ...]


@dataclass(frozen=True)
class Manifest:
    """A committed checkpoint: the rank-0 record naming every shard."""

    step: int
    world: int
    total_steps: int
    batch_size: int
    seed: int
    reduction: str
    dtype: str
    shards: tuple[ShardEntry, ...]
    path: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro-mp-checkpoint",
                "version": MANIFEST_VERSION,
                "step": self.step,
                "world": self.world,
                "total_steps": self.total_steps,
                "batch_size": self.batch_size,
                "seed": self.seed,
                "reduction": self.reduction,
                "dtype": self.dtype,
                "shards": [
                    {
                        "rank": e.rank,
                        "file": e.file,
                        "sha256": e.sha256,
                        "tables": list(e.tables),
                    }
                    for e in self.shards
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str, path: str = "") -> "Manifest":
        doc = json.loads(text)
        if doc.get("format") != "repro-mp-checkpoint":
            raise ValueError(f"not an mp checkpoint manifest: {path or text[:40]!r}")
        if doc.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {doc.get('version')!r} in {path}"
            )
        return cls(
            step=int(doc["step"]),
            world=int(doc["world"]),
            total_steps=int(doc["total_steps"]),
            batch_size=int(doc["batch_size"]),
            seed=int(doc["seed"]),
            reduction=str(doc["reduction"]),
            dtype=str(doc["dtype"]),
            shards=tuple(
                ShardEntry(
                    rank=int(e["rank"]),
                    file=str(e["file"]),
                    sha256=str(e["sha256"]),
                    tables=tuple(e["tables"]),
                )
                for e in doc["shards"]
            ),
            path=path,
        )


@dataclass
class ResumeState:
    """Everything a fresh worker set needs to continue from step ``step``.

    Arrays are plain in-process ndarrays (the parent loads them, forked
    children inherit them); the run loop re-generates the batch streams
    and slices off the first ``step`` batches, so data order is identical
    to the uninterrupted run.
    """

    step: int
    dense: list[np.ndarray] = field(default_factory=list)
    opt_dense: list[np.ndarray] = field(default_factory=list)
    table_weights: dict[str, np.ndarray] = field(default_factory=dict)
    table_accums: dict[str, np.ndarray] = field(default_factory=dict)
    per_rank_losses: list[list[float]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# atomic file IO
# ---------------------------------------------------------------------------


def _atomic_write(
    path: pathlib.Path, data: bytes, kill_hook: Callable[[], None] | None = None
) -> None:
    """Write-temp + rename.  ``kill_hook`` (tests only) fires between the
    two — the window the atomicity contract must survive."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    if kill_hook is not None:
        kill_hook()
    os.replace(tmp, path)


def save_shard_file(
    path: str | pathlib.Path,
    arrays: dict[str, np.ndarray],
    kill_hook: Callable[[], None] | None = None,
) -> str:
    """Atomically persist ``arrays`` as ``.npz``; returns the file's sha256."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    data = buf.getvalue()
    _atomic_write(pathlib.Path(path), data, kill_hook)
    return hashlib.sha256(data).hexdigest()


def load_shard_file(path: str | pathlib.Path) -> dict[str, np.ndarray]:
    """Load a shard file back into plain in-memory arrays (bit-exact)."""
    with np.load(path) as npz:
        return {key: np.array(npz[key]) for key in npz.files}


def _file_sha256(path: pathlib.Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------


def write_manifest(
    directory: str | pathlib.Path,
    manifest: Manifest,
    kill_hook: Callable[[], None] | None = None,
) -> pathlib.Path:
    """Atomically commit ``manifest`` under its step-derived filename."""
    directory = pathlib.Path(directory)
    path = directory / manifest_filename(manifest.step)
    _atomic_write(path, manifest.to_json().encode(), kill_hook)
    return path


def load_manifest(path: str | pathlib.Path) -> Manifest:
    path = pathlib.Path(path)
    return Manifest.from_json(path.read_text(), path=str(path))


def _manifest_steps(directory: pathlib.Path) -> list[int]:
    steps = []
    for p in directory.iterdir():
        m = _MANIFEST_RE.match(p.name)
        if m:
            steps.append(int(m.group(1)))
    return sorted(steps)


def latest_valid_manifest(
    directory: str | pathlib.Path, world: int | None = None
) -> Manifest | None:
    """Newest manifest whose every shard file exists and hashes correctly.

    Scans step-descending and *falls back* past torn or corrupt commits —
    a manifest written but pointing at a half-written (never-renamed, so
    missing) shard, a shard whose bytes don't match the recorded sha256,
    or a world size mismatching the restarting run are all skipped.
    Returns ``None`` when no usable checkpoint exists (restart from
    scratch).
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return None
    for step in reversed(_manifest_steps(directory)):
        try:
            manifest = load_manifest(directory / manifest_filename(step))
        except (ValueError, OSError, json.JSONDecodeError):
            continue
        if world is not None and manifest.world != world:
            continue
        if len(manifest.shards) != manifest.world:
            continue
        ok = True
        for entry in manifest.shards:
            shard_path = directory / entry.file
            if not shard_path.is_file() or _file_sha256(shard_path) != entry.sha256:
                ok = False
                break
        if ok:
            return manifest
    return None


def build_resume(manifest: Manifest, directory: str | pathlib.Path) -> ResumeState:
    """Materialize a :class:`ResumeState` from a verified manifest."""
    directory = pathlib.Path(directory)
    state = ResumeState(step=manifest.step)
    state.per_rank_losses = [[] for _ in range(manifest.world)]
    dense: dict[int, np.ndarray] = {}
    opt_dense: dict[int, np.ndarray] = {}
    for entry in sorted(manifest.shards, key=lambda e: e.rank):
        arrays = load_shard_file(directory / entry.file)
        for key, value in arrays.items():
            if key == "losses":
                state.per_rank_losses[entry.rank] = [float(x) for x in value]
            elif key.startswith("weight/"):
                state.table_weights[key.split("/", 1)[1]] = value
            elif key.startswith("accum/"):
                state.table_accums[key.split("/", 1)[1]] = value
            elif key.startswith("dense/"):
                dense[int(key.split("/", 1)[1])] = value
            elif key.startswith("opt_dense/"):
                opt_dense[int(key.split("/", 1)[1])] = value
    state.dense = [dense[i] for i in sorted(dense)]
    state.opt_dense = [opt_dense[i] for i in sorted(opt_dense)]
    return state
