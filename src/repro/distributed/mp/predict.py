"""Predicted hybrid-parallel step time, built on the event simulator.

The scaling experiment (:mod:`repro.experiments.ext_mp_scaling`)
cross-validates the *measured* multi-process step time of
:func:`repro.distributed.mp.run_hybrid` against the prediction here, which
reuses the same :class:`~repro.distributed.simulator.Resource` FIFO-server
primitive the cluster simulator is built from:

* **Compute** — ``world`` sub-batch jobs on ``min(world, cores)`` core
  resources.  Each job costs the *measured* single-process step time at
  the local batch size **plus** that rank's communication CPU (sparse
  gradient framing is real compute: pickle, concat, coalesce), because on
  an oversubscribed host comm CPU serializes with model compute instead of
  hiding behind it.  ``cores < world`` then degenerates to time-sharing —
  exactly what the OS scheduler does to the worker processes.
* **Dense allreduce** — per-bucket hops on a link resource.  The per-hop
  cost under load is *measured* by :func:`probe_comm` with the real
  :class:`~repro.distributed.mp.allreduce.GradReducer` running against a
  compute loop (GIL handoff + scheduler wakeups dominate idle wire
  latency on a busy host).
* **Sparse exchange & barrier** — framed-round costs and the measured
  barrier wakeup, scaled by the round/waiter counts.

Every parameter is measured, none fitted: socketpair latency/bandwidth,
contended hop overhead, frame serialization cost (fixed + per-byte), and
barrier cost all come from :func:`probe_comm` on the host being predicted.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from dataclasses import dataclass

import numpy as np

from ...core.config import ModelConfig
from ...runtime.runner import available_cores
from ..simulator import Resource
from .allreduce import GradReducer
from .channels import Channel
from .timeouts import get_timeouts

__all__ = ["CommProfile", "StepPrediction", "probe_comm", "predict_step_time"]

_ROW_INDEX_BYTES = 8  # int64 row ids accompany each sparse gradient row


@dataclass(frozen=True)
class CommProfile:
    """Measured communication characteristics of this host.

    ``latency_s``/``bandwidth_bps`` describe an idle socketpair;
    ``hop_overhead_s`` is the cost of one allreduce hop measured with a
    communication thread running against main-thread compute (the
    trainer's actual structure); ``frame_fixed_s``/``frame_byte_s`` model
    pickling + unpickling one sparse-gradient frame; ``barrier_s`` is one
    two-process barrier wait.
    """

    latency_s: float
    bandwidth_bps: float
    barrier_s: float
    hop_overhead_s: float = 0.0
    frame_fixed_s: float = 0.0
    frame_byte_s: float = 0.0


@dataclass(frozen=True)
class StepPrediction:
    """Per-phase breakdown of one predicted hybrid training step."""

    world: int
    cores: int
    compute_s: float
    dense_comm_s: float
    sparse_comm_s: float
    barrier_s: float
    overlap_credit_s: float

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.dense_comm_s
            - self.overlap_credit_s
            + self.sparse_comm_s
            + self.barrier_s
        )


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------


def _latency_child(chan: Channel, pings: int, payload: int, reps: int, barrier, waits: int) -> None:
    probe_s = get_timeouts().probe_s
    for _ in range(pings):
        chan.send_bytes(chan.recv_bytes())
    buf = np.empty(payload, dtype=np.uint8)
    for _ in range(reps):
        chan.recv_into(buf)
    chan.send_bytes(b"ok")
    for _ in range(waits):
        barrier.wait(timeout=probe_s)


_HOP_ITERS = 20
_HOP_BUCKETS = 2
_HOP_ELEMS = 4096


def _hop_compute_block(a: np.ndarray, b: np.ndarray) -> None:
    for _ in range(12):
        c = a @ b
        c = np.maximum(c, 0)
        c.T @ c


def _hop_child(rank: int, left: Channel, right: Channel, out) -> None:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((128, 64))
    b = rng.standard_normal((64, 64))
    bufs = [np.ones(_HOP_ELEMS) * rank for _ in range(_HOP_BUCKETS)]
    reducer = GradReducer(rank, 2, left, right, max_elems=_HOP_ELEMS)
    t0 = time.perf_counter()
    for _ in range(_HOP_ITERS):
        for buf in bufs:
            reducer.submit([buf])
        _hop_compute_block(a, b)
        reducer.flush()
    out.put(time.perf_counter() - t0)
    reducer.shutdown()


def _probe_hop_overhead(trials: int = 3) -> float:
    """Per-hop cost of the reducer thread under main-thread compute.

    Two forked ranks run the trainer's structure — submit buckets, compute,
    flush — and the excess over pure time-shared compute, divided by the
    hop count, is what one synchronization hop really costs on this host
    (GIL handoffs and scheduler wakeups included).  Median of ``trials``
    runs: scheduler noise makes single measurements swing several-fold.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((128, 64))
    b = rng.standard_normal((64, 64))
    _hop_compute_block(a, b)  # warm the kernels

    def solo_time() -> float:
        t0 = time.perf_counter()
        for _ in range(_HOP_ITERS):
            _hop_compute_block(a, b)
        return time.perf_counter() - t0

    def pair_time() -> float:
        ctx = mp.get_context("fork")
        pairs = [Channel.pair() for _ in range(2)]
        out = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hop_child,
                args=(r, pairs[(r - 1) % 2][1], pairs[r][0], out),
                name=f"mp-hop-probe-{r}",
            )
            for r in range(2)
        ]
        for p in procs:
            p.start()
        for pair in pairs:
            for ch in pair:
                ch.close()
        timeouts = get_timeouts()
        elapsed = max(out.get(timeout=timeouts.probe_s) for _ in procs)
        for p in procs:
            p.join(timeout=timeouts.join_s)
        return elapsed

    hops = _HOP_ITERS * _HOP_BUCKETS * 2  # 2(W-1) with W=2
    # With two cores the ranks compute concurrently (ideal = solo); on one
    # core they time-share (ideal = 2x solo).
    share = 2 if available_cores() < 2 else 1
    estimates = []
    for _ in range(trials):
        solo = min(solo_time(), solo_time())
        estimates.append(max(0.0, (pair_time() - solo * share) / hops))
    return float(np.median(estimates))


def _probe_frame_cost() -> tuple[float, float]:
    """Fixed + per-byte cost of pickling and unpickling one sparse frame."""

    def cost(rows: int, dim: int, reps: int = 30) -> tuple[float, int]:
        rng = np.random.default_rng(0)
        frame = {
            f"table_{i}": (
                rng.integers(0, 10_000, size=rows),
                rng.standard_normal((rows, dim)).astype(np.float32),
            )
            for i in range(4)
        }
        blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        t0 = time.perf_counter()
        for _ in range(reps):
            pickle.loads(pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL))
        return (time.perf_counter() - t0) / reps, len(blob)

    small_s, small_b = cost(8, 16)
    large_s, large_b = cost(1024, 16)
    per_byte = max(0.0, (large_s - small_s) / (large_b - small_b))
    fixed = max(0.0, small_s - per_byte * small_b)
    return fixed, per_byte


def probe_comm(
    pings: int = 50,
    payload_bytes: int = 1 << 20,
    payload_reps: int = 16,
    barrier_waits: int = 20,
) -> CommProfile:
    """Measure every communication parameter of this host.

    One forked child measures idle latency/bandwidth/barrier; a second
    two-process probe measures the contended per-hop overhead with the
    real reducer; the frame cost is measured in-process.
    """
    ctx = mp.get_context("fork")
    parent, child = Channel.pair()
    barrier = ctx.Barrier(2)
    proc = ctx.Process(
        target=_latency_child,
        args=(child, pings, payload_bytes, payload_reps, barrier, barrier_waits),
        name="mp-comm-probe",
    )
    proc.start()
    child.close()
    try:
        ping = b"x" * 64
        rtts = []
        for _ in range(pings):
            t0 = time.perf_counter()
            parent.send_bytes(ping)
            parent.recv_bytes()
            rtts.append(time.perf_counter() - t0)
        latency = float(np.median(rtts)) / 2.0

        payload = np.zeros(payload_bytes, dtype=np.uint8)
        t0 = time.perf_counter()
        for _ in range(payload_reps):
            parent.send_array(payload)
        parent.recv_bytes()  # ack: all payloads fully drained
        elapsed = time.perf_counter() - t0
        bandwidth = payload_bytes * payload_reps / max(elapsed, 1e-9)

        t0 = time.perf_counter()
        for _ in range(barrier_waits):
            barrier.wait(timeout=get_timeouts().probe_s)
        barrier_s = (time.perf_counter() - t0) / barrier_waits
    finally:
        parent.close()
        proc.join(timeout=get_timeouts().join_s)
        if proc.is_alive():  # pragma: no cover - probe child wedged
            proc.terminate()
            proc.join(timeout=get_timeouts().reap_s)

    hop_overhead = _probe_hop_overhead()
    frame_fixed, frame_byte = _probe_frame_cost()
    return CommProfile(
        latency_s=latency,
        bandwidth_bps=bandwidth,
        barrier_s=barrier_s,
        hop_overhead_s=hop_overhead,
        frame_fixed_s=frame_fixed,
        frame_byte_s=frame_byte,
    )


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------


def predict_step_time(
    config: ModelConfig,
    *,
    world: int,
    local_batch: int,
    sub_batch_step_s: float,
    comm: CommProfile,
    cores: int | None = None,
    reduction: str = "ordered",
    dense_buckets: int = 2,
) -> StepPrediction:
    """Predict one hybrid step from a measured sub-batch compute time.

    ``sub_batch_step_s`` is the measured single-process full train-step
    time at ``local_batch`` (the experiment gets it from the bench
    harness's ``timed_train``); everything else is composed from simulator
    resources parameterized by the :func:`probe_comm` measurements.
    ``dense_buckets`` mirrors the trainer's two-bucket gradient exchange.
    """
    cores = available_cores() if cores is None else cores
    eff_cores = max(1, min(cores, world))
    oversubscribed = cores < world

    itemsize = np.dtype(config.np_dtype).itemsize
    avg_dim = sum(t.dim for t in config.tables) / max(1, len(config.tables))
    # Expected frame per mesh round: this rank's gradient rows destined for
    # one owner (1/W of the tables), row ids + values.
    round_bytes = (
        local_batch
        * config.mean_total_lookups
        / world
        * (avg_dim * itemsize + _ROW_INDEX_BYTES)
        if world > 1
        else 0.0
    )
    # Sparse-exchange CPU per rank: each of the W-1 rounds pickles one
    # outbound frame and unpickles one inbound frame (the probe measures
    # the dumps+loads pair), and the owner merges the received parts.
    sparse_cpu_rank = (world - 1) * (
        comm.frame_fixed_s + round_bytes * comm.frame_byte_s
    )

    # Compute: W jobs on eff_cores single-rate servers, seconds as "bytes";
    # comm CPU rides on the same cores as model compute.
    core_res = [Resource(f"core-{i}", rate=1.0) for i in range(eff_cores)]
    compute_s = max(
        core_res[rank % eff_cores].submit(0.0, sub_batch_step_s + sparse_cpu_rank)
        for rank in range(world)
    )

    # Per-hop synchronization: idle latency with a core per worker, the
    # measured contended hop (reducer thread vs compute) otherwise.
    hop_sync = max(comm.latency_s, comm.hop_overhead_s if oversubscribed else 0.0)

    dense_bytes = config.mlp_parameters * itemsize
    dense_comm_s = 0.0
    if world > 1:
        link = Resource("dense-link", rate=comm.bandwidth_bps)
        bucket_bytes = dense_bytes / dense_buckets
        hop_bytes = bucket_bytes if reduction == "ordered" else bucket_bytes / world
        now = 0.0
        for _ in range(dense_buckets * 2 * (world - 1)):
            now = link.submit(now, hop_bytes, extra_latency=hop_sync)
        dense_comm_s = now

    sparse_comm_s = 0.0
    if world > 1:
        link = Resource("sparse-link", rate=comm.bandwidth_bps)
        now = 0.0
        for _ in range(world - 1):
            # exchange_frames: a size-header round then the payload round,
            # each one synchronization point (the frame CPU is already on
            # the core resources).
            now = link.submit(now, 8.0, extra_latency=hop_sync)
            now = link.submit(now, round_bytes, extra_latency=hop_sync)
        sparse_comm_s = now

    # One wakeup per waiter when contended, one round trip otherwise.
    barrier_s = 0.0
    if world > 1:
        barrier_s = comm.barrier_s * (world - 1 if oversubscribed else 1)

    # Overlap: with spare cores the reducer thread hides dense comm behind
    # backward compute (~40% of a step); saturated hosts get no credit.
    overlap = 0.0
    if world > 1 and cores > world:
        overlap = min(dense_comm_s, 0.4 * sub_batch_step_s)

    return StepPrediction(
        world=world,
        cores=cores,
        compute_s=compute_s,
        dense_comm_s=dense_comm_s,
        sparse_comm_s=sparse_comm_s,
        barrier_s=barrier_s,
        overlap_credit_s=overlap,
    )
