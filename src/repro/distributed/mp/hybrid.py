"""True multi-process hybrid-parallel DLRM training.

The execution style of Kalamkar et al.'s CPU-cluster DLRM training,
realized with OS processes instead of an analytic model:

* **Embedding tables are model-parallel.**  Every table's weights and
  Adagrad accumulator live in shared memory (:mod:`.shards`); all workers
  read rows zero-copy during the forward, and each table's *owner* rank
  applies the merged sparse update.  Workers ship their local sparse
  gradients to owners over pairwise mesh channels.
* **MLPs are data-parallel.**  Every worker holds an identical replica
  (same seeded init) and trains on its own slice of the global batch; dense
  gradients are allreduced over ring channels (:mod:`.allreduce`), with
  layer k's exchange overlapped against layer k-1's backward by a
  dedicated communication thread.

Determinism contract (pinned by ``tests/test_mp.py``): with the
``"ordered"`` reduction an N-worker run is **bit-identical** — losses,
dense parameters, and embedding shards — to :func:`run_hybrid_serial`,
the single-process trainer walking the same fixed partition and seeded
per-rank data split, in float64 *and* float32.  Against a plain
full-batch serial trainer the match is tolerance-bounded (chunked
sub-batch GEMMs sum in a different order than one full-batch GEMM).

Fault tolerance (``tests/test_mp_ft.py``): with ``checkpoint_every`` set,
each rank writes its owned shards (plus rank 0's dense replica) to
per-rank files and rank 0 atomically commits a manifest (:mod:`.ckpt`);
a run resumed from that manifest (``resume=``) extends the bit-identity
contract across a real SIGKILL.  On any worker death the parent poisons
the survivors over dedicated control channels; a watcher thread in each
worker aborts the step barrier and shuts down the data sockets, so
survivors **drain** within ``drain_timeout_s`` instead of hanging out
``collect_timeout_s``.  :mod:`.ft` builds capped elastic restarts on top.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import pathlib
import pickle
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

import numpy as np

from ...core import DLRM, Adagrad, Batch
from ...core.config import ModelConfig
from ...core.embedding import RaggedIndices, SparseGrad, TablePlan
from ...core.kernels import CoalescePlan, coalesce_apply, coalesce_plan
from ...core.loss import BCEWithLogitsLoss
from ...core.mlp import Linear
from ...data import SyntheticDataGenerator
from ...obs.tracer import NULL_TRACER
from ...pipeline import PipelineConfig, PrefetchPipeline
from ...runtime.runner import derive_seed
from . import ckpt
from .allreduce import GradReducer
from .channels import Channel, exchange_frames
from .shards import ShardPlan, TableShards
from .timeouts import get_timeouts

__all__ = [
    "HybridRunConfig",
    "HybridResult",
    "KillSpec",
    "WorkerCrashError",
    "run_hybrid",
    "run_hybrid_serial",
    "concat_batches",
]

_PHASES = ("forward", "loss", "backward", "sparse_exchange", "dense_wait",
           "optimizer", "checkpoint", "prep_wait", "barrier")

#: What a worker's main thread treats as "a peer is gone — drain":
#: channel EOFs (ChannelClosed is a ConnectionError), socket errors from
#: the watcher's shutdown, and the aborted step barrier.
_DRAIN_EXC = (ConnectionError, OSError, threading.BrokenBarrierError)


@dataclass(frozen=True)
class HybridRunConfig:
    """One hybrid-parallel training run.

    ``batch_size`` is the *global* batch; each worker trains on
    ``batch_size // workers`` examples per step from its own seeded
    stream (``derive_seed(seed, "data", rank)``).

    ``checkpoint_every`` > 0 writes a sharded checkpoint after every N
    global steps into ``checkpoint_dir`` (required then); on a worker
    death, survivors are poisoned and must drain within
    ``drain_timeout_s`` — ``collect_timeout_s`` remains only the
    no-progress backstop.

    ``pipeline`` turns on the prefetched data path: batch generation and
    lookup planning move to a prep thread
    (:class:`~repro.pipeline.PrefetchPipeline`), the next step's sparse
    id-plan exchange overlaps this step's compute, and the sparse value
    exchange overlaps the bottom-MLP backward — all on the reducer's
    communication thread, so the result stays bit-identical to the
    unpipelined ``"ordered"`` run (and to :func:`run_hybrid_serial`).
    """

    workers: int = 2
    steps: int = 4
    batch_size: int = 256
    lr: float = 0.01
    seed: int = 0
    reduction: str = "ordered"  # "ordered" (bit-deterministic) | "ring"
    warmup_steps: int = 1
    barrier_timeout_s: float = 120.0
    collect_timeout_s: float = 600.0
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    drain_timeout_s: float = 30.0
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.batch_size % self.workers:
            raise ValueError(
                f"batch_size {self.batch_size} not divisible by "
                f"{self.workers} workers"
            )
        if self.reduction not in ("ordered", "ring"):
            raise ValueError(f"unknown reduction {self.reduction!r}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ValueError("checkpoint_every > 0 requires checkpoint_dir")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")

    @property
    def local_batch(self) -> int:
        return self.batch_size // self.workers


@dataclass(frozen=True)
class KillSpec:
    """One injected real-process death for the fault harness.

    ``rank`` dies during global step ``step`` at ``phase``:

    * ``"loss"`` — right after the loss forward (the legacy ``_crash``
      injection point; no rank has applied the step yet);
    * ``"allreduce"`` — right after submitting the first dense gradient
      bucket, so peers observe the death *inside* the ring protocol;
    * ``"checkpoint"`` — between a checkpoint file's temp-write and its
      rename (rank 0: the manifest; others: their shard file) — the torn-
      commit window the atomicity contract must survive.

    ``action`` is a real ``SIGKILL`` (no atexit, no finally) or an
    ``os._exit(exit_code)``.  ``attempt`` scopes the kill to one restart
    attempt (0 = the first run), so an elastic restart does not
    re-trigger it.
    """

    rank: int
    step: int
    phase: str = "loss"
    action: str = "sigkill"
    exit_code: int = 41
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.phase not in ("loss", "allreduce", "checkpoint"):
            raise ValueError(f"unknown kill phase {self.phase!r}")
        if self.action not in ("sigkill", "exit"):
            raise ValueError(f"unknown kill action {self.action!r}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")


def _execute_kill(spec: KillSpec) -> None:
    if spec.action == "exit":
        os._exit(spec.exit_code)
    os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class WorkerReport:
    """What one worker sends back to the parent over its result pipe."""

    rank: int
    losses: list[float]
    step_s: list[float]
    phase_s: dict[str, float]
    comm_s: float
    dense_digest: str
    pid: int
    #: stall ledger of the prep pipeline (``PipelineStats.as_dict()``),
    #: ``None`` when the run was not pipelined.
    pipeline: dict[str, float] | None = None


@dataclass
class HybridResult:
    """Outcome of a hybrid run (multi-process or the serial reference)."""

    workers: int
    steps: int
    batch_size: int
    reduction: str
    losses: list[float]  # combined global loss per step
    per_rank_losses: list[list[float]]
    step_time_s: float  # best post-warmup step wall time
    mean_step_s: float
    phase_s: dict[str, float]  # max over ranks, per phase
    comm_s: float
    dense_digest: str  # sha256 over the dense parameters (rank 0 replica)
    table_digests: dict[str, str]  # sha256 over each embedding shard
    plan: ShardPlan | None = None
    per_rank_phase_s: list[dict[str, float]] = field(default_factory=list)
    #: committed checkpoints as ``(global step, max write seconds)``.
    checkpoints: list[tuple[int, float]] = field(default_factory=list)
    #: global step this run resumed from (0 = trained from scratch).
    resumed_from: int = 0
    #: aggregated stall ledger of a pipelined run (straggler view: max
    #: stalls over ranks, min overlap) — ``None`` when unpipelined.
    pipeline: dict[str, float] | None = None
    per_rank_pipeline: list[dict[str, float] | None] = field(default_factory=list)

    def state_digest(self) -> str:
        """One digest over all trained state (dense replica + shards)."""
        h = hashlib.sha256(self.dense_digest.encode())
        for name in sorted(self.table_digests):
            h.update(name.encode())
            h.update(self.table_digests[name].encode())
        return h.hexdigest()


class WorkerCrashError(RuntimeError):
    """A worker process died before delivering its report.

    ``rank``/``exitcode`` identify the primary casualty; ``dead`` lists
    every rank that died abnormally.  With the drain protocol, peers of a
    crashed worker normally exit 0 after filing a drain report —
    ``drained`` names them, ``progress`` maps every rank to its completed
    global steps, ``checkpoints`` lists the checkpoints committed before
    the crash, and ``drain_s`` is the measured detection-to-quiet time.
    """

    def __init__(
        self,
        rank: int,
        exitcode: int | None,
        dead: list[tuple[int, int | None]] | None = None,
        *,
        progress: dict[int, int] | None = None,
        drained: list[int] | None = None,
        checkpoints: list[tuple[int, float]] | None = None,
        drain_s: float = 0.0,
    ) -> None:
        dead = dead or [(rank, exitcode)]
        super().__init__(
            f"mp worker rank {rank} died (exitcode {exitcode}); "
            f"dead ranks: {dead}"
        )
        self.rank = rank
        self.exitcode = exitcode
        self.dead = dead
        self.progress = dict(progress or {})
        self.drained = list(drained or [])
        self.checkpoints = list(checkpoints or [])
        self.drain_s = drain_s


# ---------------------------------------------------------------------------
# IPC fabric: every endpoint of one run, built pre-fork
# ---------------------------------------------------------------------------


class _Fabric:
    """Ring + mesh + control channels and result pipes for ``world`` workers.

    Built in the parent before ``fork``; each child calls :meth:`isolate`
    to close every endpoint it does not own, and the parent calls
    :meth:`close_parent_side` right after spawning — so a dead worker's
    peers see EOF instead of hanging on a socket the parent still holds.
    The parent keeps one control channel per worker open for the lifetime
    of the run: :meth:`poison` sends the drain frame on it when a
    casualty is detected.  Ring and mesh endpoints are tagged with their
    peer rank so channel errors can name the dead neighbor.
    """

    def __init__(self, world: int, ctx) -> None:
        self.world = world
        # ring_pairs[i] connects rank i -> rank (i+1) % world:
        # element 0 is i's RIGHT endpoint, element 1 is (i+1)'s LEFT.
        self.ring_pairs = (
            [Channel.pair() for _ in range(world)] if world > 1 else []
        )
        for i, (right_end, left_end) in enumerate(self.ring_pairs):
            right_end.peer = (i + 1) % world
            left_end.peer = i
        self.mesh_pairs = {
            (i, j): Channel.pair()
            for i in range(world)
            for j in range(i + 1, world)
        }
        for (i, j), (a, b) in self.mesh_pairs.items():
            a.peer = j
            b.peer = i
        # ctrl_pairs[r]: (parent end, worker end) — the poison path.
        self.ctrl_pairs = [Channel.pair() for _ in range(world)]
        self.pipes = [ctx.Pipe(duplex=False) for _ in range(world)]

    def right(self, rank: int) -> Channel | None:
        return self.ring_pairs[rank][0] if self.ring_pairs else None

    def left(self, rank: int) -> Channel | None:
        return self.ring_pairs[(rank - 1) % self.world][1] if self.ring_pairs else None

    def mesh(self, rank: int) -> dict[int, Channel]:
        out: dict[int, Channel] = {}
        for (i, j), (a, b) in self.mesh_pairs.items():
            if i == rank:
                out[j] = a
            elif j == rank:
                out[i] = b
        return out

    def ctrl(self, rank: int) -> Channel:
        """The worker-side control endpoint (drain frames arrive here)."""
        return self.ctrl_pairs[rank][1]

    def poison(self, rank: int) -> None:
        """Tell ``rank`` (from the parent) to abort its barrier and drain."""
        try:
            self.ctrl_pairs[rank][0].send_bytes(b"drain")
        except OSError:
            pass  # already dead — nothing to poison

    def parent_conn(self, rank: int):
        return self.pipes[rank][0]

    def child_conn(self, rank: int):
        return self.pipes[rank][1]

    def _owned_by(self, rank: int) -> set[Channel]:
        owned = set(self.mesh(rank).values())
        if self.ring_pairs:
            owned.add(self.right(rank))
            owned.add(self.left(rank))
        return owned

    def _all_channels(self) -> list[Channel]:
        chans = [c for pair in self.ring_pairs for c in pair]
        chans.extend(c for pair in self.mesh_pairs.values() for c in pair)
        return chans

    def isolate(self, rank: int) -> None:
        """Close (in a forked child) every endpoint not owned by ``rank``."""
        owned = self._owned_by(rank)
        for ch in self._all_channels():
            if ch not in owned:
                ch.close()
        for r, (parent_end, worker_end) in enumerate(self.ctrl_pairs):
            parent_end.close()
            if r != rank:
                worker_end.close()
        for r, (parent_end, child_end) in enumerate(self.pipes):
            parent_end.close()
            if r != rank:
                child_end.close()

    def close_parent_side(self) -> None:
        """Close (in the parent) all data channels and the children's pipe
        and control ends — but keep the parent control ends for poison."""
        for ch in self._all_channels():
            ch.close()
        for _, worker_end in self.ctrl_pairs:
            worker_end.close()
        for _, child_end in self.pipes:
            child_end.close()

    def close_all(self) -> None:
        self.close_parent_side()
        for parent_end, _ in self.ctrl_pairs:
            parent_end.close()
        for parent_end, _ in self.pipes:
            try:
                parent_end.close()
            except OSError:  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _build_replica(config: ModelConfig, run: HybridRunConfig):
    """The per-process model/loss pair; identical on every rank by seed."""
    model = DLRM(config, rng=derive_seed(run.seed, "model"))
    loss = BCEWithLogitsLoss(workspace=model.workspace, backend=model.backend)
    return model, loss


def _dense_digest(model: DLRM) -> str:
    h = hashlib.sha256()
    for p in model.dense_parameters():
        h.update(np.ascontiguousarray(p.value).tobytes())
    return h.hexdigest()


def _backward_overlapped(
    model: DLRM, grad_logits: np.ndarray, submit, after_embeddings=None
) -> None:
    """DLRM.backward with gradient-exchange hooks.

    Operation order is identical to :meth:`repro.core.DLRM.backward`
    (bit-identity depends on it).  ``submit`` receives two fixed buckets:
    the top-of-net gradients (scorer + top MLP) the moment that half's
    backward completes — so its allreduce overlaps the interaction /
    embedding / bottom backward — and the bottom-MLP gradients at the end.
    Two buckets per step keeps the hop count (and the per-hop scheduling
    overhead on an oversubscribed host) low while still overlapping the
    larger half of the exchange.

    ``after_embeddings`` fires once the embedding backward has produced
    every table's sparse gradients but before the bottom-MLP backward —
    the pipelined trainer ships the sparse values from right there, so
    their exchange overlaps the remaining dense compute.
    """
    grad = np.asarray(grad_logits, dtype=model.dtype).reshape(-1, 1)
    grad = model.scorer.backward(grad)
    top_bucket = [model.scorer.weight.grad, model.scorer.bias.grad]
    for layer in reversed(model.top_mlp.layers):
        grad = layer.backward(grad)
        if isinstance(layer, Linear):
            top_bucket.extend((layer.weight.grad, layer.bias.grad))
    submit(top_bucket)
    grad_dense, grad_embs = model.interaction.backward(grad)
    model.embeddings.backward(
        {name: g for name, g in zip(model._feature_order, grad_embs)}
    )
    if after_embeddings is not None:
        after_embeddings()
    bottom_bucket = []
    for layer in reversed(model.bottom_mlp.layers):
        grad_dense = layer.backward(grad_dense)
        if isinstance(layer, Linear):
            bottom_bucket.extend((layer.weight.grad, layer.bias.grad))
    submit(bottom_bucket)


def _pack_sparse(grads: dict[str, SparseGrad | None]) -> bytes:
    return pickle.dumps(
        {
            name: (None if g is None else (g.rows, g.values))
            for name, g in grads.items()
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _unpack_sparse(payload) -> dict[str, SparseGrad | None]:
    raw = pickle.loads(bytes(payload))
    return {
        name: (None if t is None else SparseGrad(rows=t[0], values=t[1]))
        for name, t in raw.items()
    }


def _merge_rank_order(parts: list[SparseGrad | None]) -> SparseGrad | None:
    """Merge per-rank contributions exactly like ``EmbeddingTable.pop_grad``:
    single contribution passes through untouched, several concatenate in
    rank order and coalesce once."""
    present = [g for g in parts if g is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    rows = np.concatenate([g.rows for g in present])
    vals = np.concatenate([g.values for g in present])
    return SparseGrad.coalesce(rows, vals)


def _exchange_sparse(
    rank: int,
    world: int,
    plan: ShardPlan,
    local: dict[str, SparseGrad | None],
    mesh: dict[int, Channel],
) -> dict[str, SparseGrad | None]:
    """Ship local sparse grads to table owners; returns merged grads for
    the tables this rank owns.

    W-1 rounds of simultaneous framed exchange: in round ``off`` rank r
    sends to ``(r+off) % W`` and receives from ``(r-off) % W`` — a
    permutation per round, so no two ranks ever block on each other.
    Contributions are merged in **rank order** regardless of arrival.
    """
    by_rank: list[dict[str, SparseGrad | None] | None] = [None] * world
    by_rank[rank] = local
    for off in range(1, world):
        dst = (rank + off) % world
        src = (rank - off) % world
        outbound = _pack_sparse(
            {name: local[name] for name in plan.owned(dst)}
        )
        (payload,) = exchange_frames(
            [(mesh[dst], outbound)], [mesh[src]]
        )
        by_rank[src] = _unpack_sparse(payload)
    merged: dict[str, SparseGrad | None] = {}
    for name in plan.owned(rank):
        merged[name] = _merge_rank_order(
            [
                by_rank[r][name] if by_rank[r] is not None and name in by_rank[r]
                else (local[name] if r == rank else None)
                for r in range(world)
            ]
        )
    return merged


class _SparsePipeline:
    """Prefetched sparse exchange for one pipelined worker.

    Splits :func:`_exchange_sparse` into two halves that both run as
    generic jobs on the :class:`~.allreduce.GradReducer` communication
    thread, FIFO with the dense buckets — so the mesh channels are only
    ever touched by one thread per process, and every rank's per-step wire
    traffic interleaves in the same global order::

        [idplan g+1] [top bucket g] [values g] [bottom bucket g]

    * The **id-plan exchange** for step ``g`` ships each table's touched
      row ids (known at *plan* time — no weights involved, see
      :meth:`~repro.core.embedding.TablePlan.touched_rows`) to the table's
      owner one step ahead, overlapping step ``g-1``'s barrier and step
      ``g``'s forward/loss/backward.  The owner pre-builds the rank-order
      merge (a :class:`~repro.core.kernels.CoalescePlan` over the
      concatenated ids) while it waits.
    * The **value exchange** for step ``g`` then ships only the raw
      gradient value matrices (sizes already known to both sides from the
      id plans, so no pickling), overlapping the bottom-MLP backward; the
      owner merges with the prepared plan — the exact association
      :func:`_merge_rank_order` uses, so the result is bit-identical.

    ``_ctx`` is comm-thread-only state; ``_merged`` is written by the comm
    thread and read by the main thread strictly after ``reducer.flush()``
    (the queue join is the synchronization point).
    """

    def __init__(
        self,
        rank: int,
        world: int,
        plan: ShardPlan,
        mesh: dict[int, Channel],
        table_dims: dict[str, int],
        dtype,
    ) -> None:
        self.rank = rank
        self.world = world
        self.plan = plan
        self.mesh = mesh
        self.table_dims = table_dims
        self.dtype = np.dtype(dtype)
        self._ctx: dict[int, dict] = {}
        self._merged: dict[int, dict[str, SparseGrad | None]] = {}

    def submit_idplan(
        self, reducer: GradReducer, gstep: int, plans: dict[str, TablePlan]
    ) -> None:
        reducer.submit_job(
            lambda: self._idplan_job(gstep, plans), stage="idplan_exchange"
        )

    def submit_values(
        self, reducer: GradReducer, gstep: int, local: dict[str, SparseGrad | None]
    ) -> None:
        reducer.submit_job(
            lambda: self._values_job(gstep, local), stage="sparse_values"
        )

    def take_merged(self, gstep: int) -> dict[str, SparseGrad | None]:
        """Collect step ``gstep``'s merged owner grads (call after flush)."""
        return self._merged.pop(gstep)

    def _idplan_job(self, gstep: int, plans: dict[str, TablePlan]) -> None:
        rank, world = self.rank, self.world
        rows_local = {name: plans[name].touched_rows() for name in plans}
        by_rank: list[dict[str, np.ndarray] | None] = [None] * world
        by_rank[rank] = rows_local
        for off in range(1, world):
            dst = (rank + off) % world
            src = (rank - off) % world
            outbound = pickle.dumps(
                {name: rows_local[name] for name in self.plan.owned(dst)},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            (payload,) = exchange_frames(
                [(self.mesh[dst], outbound)], [self.mesh[src]]
            )
            by_rank[src] = pickle.loads(bytes(payload))
        ctx: dict[str, tuple] = {}
        for name in self.plan.owned(rank):
            parts = [
                by_rank[r].get(name) if by_rank[r] is not None else None
                for r in range(world)
            ]
            present = [
                r for r in range(world) if parts[r] is not None and len(parts[r])
            ]
            merge: CoalescePlan | None = None
            if len(present) > 1:
                # Same rank-order concatenation _merge_rank_order feeds to
                # SparseGrad.coalesce — precomputing its plan here moves
                # the merge argsort off the critical path too.
                merge = coalesce_plan(
                    np.concatenate([parts[r] for r in present])
                )
            ctx[name] = (present, parts, merge)
        self._ctx[gstep] = ctx

    def _values_job(
        self, gstep: int, local: dict[str, SparseGrad | None]
    ) -> None:
        rank, world = self.rank, self.world
        itemsize = self.dtype.itemsize
        ctx = self._ctx.pop(gstep)
        recv_vals: dict[tuple[int, str], np.ndarray] = {}
        for off in range(1, world):
            dst = (rank + off) % world
            src = (rank - off) % world
            # Raw value bytes in the owner's fixed table order; each side
            # knows every size from the id plans, so no framing per table.
            outbound = b"".join(
                memoryview(np.ascontiguousarray(local[name].values)).cast("B")
                for name in self.plan.owned(dst)
                if local[name] is not None
            )
            (payload,) = exchange_frames(
                [(self.mesh[dst], outbound)], [self.mesh[src]]
            )
            offset = 0
            for name in self.plan.owned(rank):
                present, parts, _ = ctx[name]
                if src not in present:
                    continue
                count = len(parts[src]) * self.table_dims[name]
                recv_vals[(src, name)] = np.frombuffer(
                    payload, dtype=self.dtype, count=count, offset=offset
                ).reshape(len(parts[src]), self.table_dims[name])
                offset += count * itemsize
        merged: dict[str, SparseGrad | None] = {}
        for name in self.plan.owned(rank):
            present, parts, merge = ctx[name]
            if not present:
                merged[name] = None
            elif len(present) == 1:
                q = present[0]
                merged[name] = (
                    local[name]
                    if q == rank
                    else SparseGrad(rows=parts[q], values=recv_vals[(q, name)])
                )
            else:
                vals = np.concatenate(
                    [
                        local[name].values if q == rank else recv_vals[(q, name)]
                        for q in present
                    ]
                )
                merged[name] = SparseGrad(
                    rows=merge.rows, values=coalesce_apply(merge, vals)
                )
        self._merged[gstep] = merged


def _watch_ctrl(ctrl: Channel, barrier, channels, finished, draining) -> None:
    """Worker watcher thread: block on the control channel; on a poison
    frame (or parent death), abort the step barrier and shut down every
    data socket so the main thread unwedges wherever it is blocked."""
    try:
        ctrl.recv_bytes()
    except (ConnectionError, OSError):
        pass  # parent closed the channel (run over) or died
    if finished.is_set():
        return
    draining.set()
    try:
        barrier.abort()
    except Exception:  # pragma: no cover - barrier already broken
        pass
    for ch in channels:
        if ch is None:
            continue
        try:
            ch.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


def _worker_main(
    rank: int,
    world: int,
    config: ModelConfig,
    run: HybridRunConfig,
    plan: ShardPlan,
    shards: TableShards,
    fabric: _Fabric,
    barrier,
    crash: tuple[int, int] | None,
    kills: list[KillSpec] | None = None,
    resume: ckpt.ResumeState | None = None,
) -> None:
    conn = fabric.child_conn(rank)
    ctrl = fabric.ctrl(rank)
    fabric.isolate(rank)
    model, loss_fn = _build_replica(config, run)
    # Zero-copy shard adoption: every rank reads all tables straight out of
    # shared memory; only owned tables are ever written by this rank.
    for name in (t.name for t in config.tables):
        model.embeddings.tables[name].adopt_weight(shards.view(name, "weight"))
    owned = plan.owned(rank)
    optimizer = Adagrad(
        model.dense_parameters(),
        [model.embeddings.tables[n] for n in owned],
        lr=run.lr,
        backend=model.backend,
    )
    for i, name in enumerate(owned):
        optimizer.adopt_table_state(i, shards.view(name, "accum"))

    start = 0
    loss_prefix: list[float] = []
    if resume is not None:
        # Shard weights/accums were seeded by the parent when it created
        # the shared segments; the replicated dense state is overwritten
        # here, bit-exactly, on every rank.
        start = resume.step
        loss_prefix = list(resume.per_rank_losses[rank])
        for p, value in zip(model.dense_parameters(), resume.dense):
            p.value[...] = value
        for slot, value in zip(optimizer._dense_state, resume.opt_dense):
            slot[...] = value

    gen = SyntheticDataGenerator(config, rng=derive_seed(run.seed, "data", rank))
    pipelined = run.pipeline
    prefetch: PrefetchPipeline | None = None
    sparse_pipe: _SparsePipeline | None = None
    if pipelined:
        # Lazy stream + prep thread: batch_stream consumes the rng exactly
        # like the eager pre-generation below (skipped prefix included),
        # so the data order is identical to the unpipelined run.
        prefetch = PrefetchPipeline(
            gen.batch_stream(run.local_batch, run.steps, skip=start),
            lambda b: model.embeddings.plan_batch(b.sparse),
            PipelineConfig(),
        )
        batches = None
    else:
        # Generate the full stream and skip the replayed prefix, so data
        # order is identical to the uninterrupted run (PR 3 restore
        # contract).
        batches = [gen.batch(run.local_batch) for _ in range(run.steps)][start:]

    max_elems = sum(p.grad.size for p in model.dense_parameters())
    reducer = GradReducer(
        rank, world, fabric.left(rank), fabric.right(rank),
        mode=run.reduction, max_elems=max_elems, dtype=model.dtype,
    )
    mesh = fabric.mesh(rank)
    table_names = [t.name for t in config.tables]
    if pipelined:
        sparse_pipe = _SparsePipeline(
            rank, world, plan, mesh,
            {n: model.embeddings.tables[n].weight.shape[1] for n in table_names},
            model.dtype,
        )
    my_kills = {
        (k.step, k.phase): k for k in (kills or []) if k.rank == rank
    }
    ckpt_dir = pathlib.Path(run.checkpoint_dir) if run.checkpoint_dir else None
    inv_world = 1.0 / world
    losses: list[float] = []
    step_s: list[float] = []
    phase_s = dict.fromkeys(_PHASES, 0.0)

    finished = threading.Event()
    draining = threading.Event()
    data_channels = list(mesh.values()) + [fabric.left(rank), fabric.right(rank)]
    watcher = threading.Thread(
        target=_watch_ctrl,
        args=(ctrl, barrier, data_channels, finished, draining),
        name=f"mp-drain-watch-{rank}",
        daemon=True,
    )
    watcher.start()

    def timed(phase: str, fn, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        phase_s[phase] += time.perf_counter() - t0
        return out

    def write_checkpoint(completed: int, kill_spec: KillSpec | None) -> None:
        """Persist this rank's shard for ``completed`` global steps and,
        on rank 0, gather digests and commit the manifest atomically."""
        hook = (
            (lambda: _execute_kill(kill_spec)) if kill_spec is not None else None
        )
        arrays: dict[str, np.ndarray] = {
            "losses": np.asarray(loss_prefix + losses, dtype=np.float64)
        }
        for name in owned:
            arrays[f"weight/{name}"] = shards.view(name, "weight")
            arrays[f"accum/{name}"] = shards.view(name, "accum")
        if rank == 0:
            for i, p in enumerate(model.dense_parameters()):
                arrays[f"dense/{i}"] = p.value
            for i, slot in enumerate(optimizer._dense_state):
                arrays[f"opt_dense/{i}"] = slot
        t0 = time.perf_counter()
        fname = ckpt.shard_filename(rank, completed)
        sha = ckpt.save_shard_file(
            ckpt_dir / fname, arrays,
            kill_hook=None if rank == 0 else hook,
        )
        if rank == 0:
            entries = [ckpt.ShardEntry(0, fname, sha, tuple(owned))]
            if world > 1:
                payloads = exchange_frames(
                    [], [mesh[r] for r in range(1, world)]
                )
                for blob in payloads:
                    r, peer_fname, peer_sha, tables = pickle.loads(bytes(blob))
                    entries.append(
                        ckpt.ShardEntry(r, peer_fname, peer_sha, tuple(tables))
                    )
            entries.sort(key=lambda e: e.rank)
            manifest = ckpt.Manifest(
                step=completed,
                world=world,
                total_steps=run.steps,
                batch_size=run.batch_size,
                seed=run.seed,
                reduction=run.reduction,
                dtype=str(np.dtype(config.np_dtype)),
                shards=tuple(entries),
            )
            ckpt.write_manifest(ckpt_dir, manifest, kill_hook=hook)
        elif world > 1:
            blob = pickle.dumps(
                (rank, fname, sha, list(owned)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            exchange_frames([(mesh[0], blob)], [])
        # The "ckpt" heartbeat doubles as the commit record: rank 0 sends
        # only after the manifest rename, so the parent counts a
        # checkpoint exactly when it became restorable.
        conn.send(("ckpt", rank, completed, time.perf_counter() - t0))

    try:
        if pipelined:
            prefetch.start()  # prep overlaps the spawn barrier already
        barrier.wait(timeout=run.barrier_timeout_s)
        next_prepared = None
        if pipelined:
            # First batch + its id-plan exchange: from here on the plans
            # for step g+1 are always on the wire while step g computes.
            next_prepared = timed("prep_wait", prefetch.__next__)
            sparse_pipe.submit_idplan(reducer, start, next_prepared.plans)
        for gstep in range(start, run.steps):
            batch = next_prepared if pipelined else batches[gstep - start]
            t_step = time.perf_counter()
            model.zero_grad()
            optimizer.zero_grad()
            logits = timed("forward", model.forward, batch)
            loss_val = timed("loss", loss_fn.forward, logits, batch.labels)
            if crash is not None and crash == (rank, gstep):
                os._exit(41)  # simulated hard crash (tests only)
            loss_kill = my_kills.get((gstep, "loss"))
            if loss_kill is not None:
                _execute_kill(loss_kill)
            grad = loss_fn.backward()
            # Exact global-batch normalization: every rank (and the serial
            # reference) scales its local mean-loss gradient by the same
            # 1/W constant, so the allreduced sum is the global gradient
            # with identical rounding on every path.
            grad *= inv_world
            ar_kill = my_kills.get((gstep, "allreduce"))
            if ar_kill is None:
                submit = reducer.submit
            else:
                def submit(bucket, _spec=ar_kill):
                    reducer.submit(bucket)
                    _execute_kill(_spec)
            if pipelined:
                def _ship_sparse(_gstep=gstep):
                    # Fires inside the backward, right after the embedding
                    # grads exist: their exchange overlaps the bottom-MLP
                    # backward on the comm thread (the owner-side merge
                    # plan was prefetched with the id-plan exchange).
                    local = {
                        name: model.embeddings.tables[name].pop_grad()
                        for name in table_names
                    }
                    sparse_pipe.submit_values(reducer, _gstep, local)

                timed(
                    "backward", _backward_overlapped, model, grad, submit,
                    _ship_sparse,
                )
                timed("dense_wait", reducer.flush)
                merged = sparse_pipe.take_merged(gstep)
            else:
                timed("backward", _backward_overlapped, model, grad, submit)
                local = {
                    name: model.embeddings.tables[name].pop_grad()
                    for name in table_names
                }
                merged = timed(
                    "sparse_exchange", _exchange_sparse, rank, world, plan,
                    local, mesh,
                )
                timed("dense_wait", reducer.flush)

            def _apply():
                optimizer.dense_step()
                for i, name in enumerate(owned):
                    g = merged[name]
                    if g is not None:
                        optimizer.sparse_update(i, g)

            timed("optimizer", _apply)
            losses.append(loss_val)
            conn.send(("step", rank, gstep + 1, loss_val))
            if run.checkpoint_every and (gstep + 1) % run.checkpoint_every == 0:
                # After the optimizer, before the barrier: every rank
                # serializes only state it wrote itself this step, so the
                # snapshot is consistent without an extra barrier.
                timed(
                    "checkpoint", write_checkpoint,
                    gstep + 1, my_kills.get((gstep, "checkpoint")),
                )
            if pipelined and gstep + 1 < run.steps:
                # Pull the next prepared batch (prep_wait is this rank's
                # residual data stall) and enqueue its id-plan exchange so
                # it overlaps the barrier and the next forward/backward.
                # Strictly after the checkpoint: the comm thread and the
                # checkpoint's mesh gather must never interleave sends on
                # a socket.
                next_prepared = timed("prep_wait", prefetch.__next__)
                sparse_pipe.submit_idplan(
                    reducer, gstep + 1, next_prepared.plans
                )
            # All shard writes must land before any rank's next forward.
            timed("barrier", barrier.wait, run.barrier_timeout_s)
            step_s.append(time.perf_counter() - t_step)
        reducer.shutdown()
        finished.set()
        conn.send(("report", WorkerReport(
            rank=rank,
            losses=losses,
            step_s=step_s,
            phase_s=phase_s,
            comm_s=reducer.comm_seconds,
            dense_digest=_dense_digest(model),
            pid=os.getpid(),
            pipeline=prefetch.stats.as_dict() if prefetch is not None else None,
        )))
        conn.close()
    except _DRAIN_EXC as err:
        # A peer died (or the parent poisoned us): report what completed
        # and exit cleanly instead of hanging in a blocked recv/barrier.
        finished.set()
        draining.set()
        try:
            reducer.shutdown()
        except Exception:  # pragma: no cover - comm thread wedged
            pass
        suspect = getattr(err, "peer", None)
        try:
            conn.send(
                ("drained", rank, start + len(losses), list(losses),
                 suspect, repr(err))
            )
            conn.close()
        except OSError:  # pragma: no cover - parent is gone too
            pass
    finally:
        if prefetch is not None:
            prefetch.close()
        for ch in mesh.values():
            ch.close()
        if fabric.left(rank) is not None:
            fabric.left(rank).close()
            fabric.right(rank).close()


# ---------------------------------------------------------------------------
# parent orchestrator
# ---------------------------------------------------------------------------


def _combine_losses(per_rank: list[list[float]], steps: int) -> list[float]:
    """Global per-step loss: rank-order left-associative sum / W — the same
    association the serial reference uses, so f64 losses match bitwise."""
    world = len(per_rank)
    out = []
    for t in range(steps):
        acc = per_rank[0][t]
        for r in range(1, world):
            acc = acc + per_rank[r][t]
        out.append(acc / world)
    return out


def _committed_checkpoints(
    ckpt_events: list[tuple[int, int, float]],
) -> list[tuple[int, float]]:
    """Aggregate per-rank "ckpt" heartbeats into committed checkpoints.

    A checkpoint exists only once rank 0 renamed the manifest (its event
    fires after the commit); the recorded cost is the max write time over
    all ranks at that step — the straggler defines the stall.
    """
    committed = sorted({step for r, step, _ in ckpt_events if r == 0})
    return [
        (step, max(secs for _, s, secs in ckpt_events if s == step))
        for step in committed
    ]


def _crash_error(
    procs,
    progress: dict[int, int] | None = None,
    drained: dict[int, tuple] | None = None,
    ckpt_events: list[tuple[int, int, float]] | None = None,
    drain_s: float = 0.0,
) -> WorkerCrashError:
    """Build the crash report, attributing blame to the primary casualty.

    Preference order: a rank that died from a signal or an explicit
    ``os._exit`` code (exitcode != 1) over plain exitcode-1 deaths, over
    cleanly-drained survivors.  When *every* process drained cleanly (all
    exit 0), the suspect peer named by the drain reports — the rank whose
    channel EOF'd first — takes the blame; that is the same rank an
    exitcode scan would name had the survivors died of broken pipes.
    """
    timeouts = get_timeouts()
    for p in procs:
        p.join(timeout=timeouts.reap_s)
    drained = drained or {}
    dead = [
        (r, p.exitcode) for r, p in enumerate(procs) if p.exitcode not in (0, None)
    ]
    if dead:
        primary = next(
            (d for d in dead if d[1] is not None and d[1] != 1), dead[0]
        )
    else:
        suspects = [m[4] for m in drained.values() if m[4] is not None]
        rank = suspects[0] if suspects else (
            next(iter(sorted(drained)), 0)
        )
        exitcode = procs[rank].exitcode if rank < len(procs) else None
        primary = (rank, exitcode)
        dead = [primary]
    return WorkerCrashError(
        primary[0], primary[1], dead,
        progress=progress,
        drained=sorted(drained),
        checkpoints=_committed_checkpoints(ckpt_events or []),
        drain_s=drain_s,
    )


def _find_casualty(procs, reports, drained, fabric: _Fabric, open_conns):
    """First rank that is dead (or spontaneously drained) without having
    delivered a report — with its pipe fully drained, so buffered final
    messages are never mistaken for a death."""
    for rank, p in enumerate(procs):
        if rank in reports:
            continue
        conn = fabric.parent_conn(rank)
        if conn in open_conns and conn.poll(0):
            continue  # buffered messages still pending — let them land
        if not p.is_alive():
            return rank
        if rank in drained:
            return rank  # drained spontaneously (peer death it observed)
    return None


def _supervise(
    procs, fabric: _Fabric, run: HybridRunConfig, start: int
) -> tuple[list[WorkerReport], list[tuple[int, int, float]]]:
    """Collect heartbeats and reports; detect deaths; poison and drain.

    The healthy path returns every rank's final report plus the "ckpt"
    commit events.  On a casualty the parent poisons all live workers,
    waits up to ``run.drain_timeout_s`` for them to file drain reports
    and exit, then raises the attributed :class:`WorkerCrashError` —
    ``collect_timeout_s`` is only the no-progress backstop.
    """
    world = len(procs)
    reports: dict[int, WorkerReport] = {}
    drained: dict[int, tuple] = {}
    progress: dict[int, int] = {r: start for r in range(world)}
    ckpt_events: list[tuple[int, int, float]] = []
    conn_rank = {fabric.parent_conn(r): r for r in range(world)}
    open_conns = set(conn_rank)
    poisoned = False
    drain_deadline = 0.0
    t_detect = 0.0
    deadline = time.monotonic() + run.collect_timeout_s
    while len(reports) < world:
        if open_conns:
            ready = mp_connection.wait(list(open_conns), timeout=0.05)
        else:
            ready = []
            time.sleep(0.005)
        for c in ready:
            rank = conn_rank[c]
            try:
                while c.poll(0):
                    msg = c.recv()
                    tag = msg[0]
                    if tag == "step":
                        progress[rank] = max(progress[rank], msg[2])
                    elif tag == "ckpt":
                        ckpt_events.append((msg[1], msg[2], msg[3]))
                    elif tag == "report":
                        reports[rank] = msg[1]
                        open_conns.discard(c)
                    elif tag == "drained":
                        drained[rank] = msg
                        progress[rank] = max(progress[rank], msg[2])
                        open_conns.discard(c)
            except (EOFError, OSError):
                open_conns.discard(c)
        if len(reports) == world:
            break
        if not poisoned:
            casualty = _find_casualty(procs, reports, drained, fabric, open_conns)
            if casualty is not None:
                t_detect = time.monotonic()
                for rank, p in enumerate(procs):
                    if p.is_alive():
                        fabric.poison(rank)
                poisoned = True
                drain_deadline = time.monotonic() + run.drain_timeout_s
        else:
            quiet = all(not p.is_alive() for p in procs) and not any(
                c.poll(0) for c in open_conns
            )
            if quiet or time.monotonic() > drain_deadline:
                raise _crash_error(
                    procs, progress, drained, ckpt_events,
                    time.monotonic() - t_detect,
                )
        if time.monotonic() > deadline:
            stuck = [r for r in range(world) if r not in reports]
            raise TimeoutError(
                f"mp workers {stuck} produced no report within "
                f"{run.collect_timeout_s:.0f}s"
            )
    return [reports[r] for r in range(world)], ckpt_events


def run_hybrid(
    config: ModelConfig,
    run: HybridRunConfig | None = None,
    tracer=None,
    _crash: tuple[int, int] | None = None,
    *,
    kills: list[KillSpec] | None = None,
    resume: ckpt.ResumeState | None = None,
) -> HybridResult:
    """Train ``config`` across ``run.workers`` real OS processes.

    Shards are created, initialized from the seeded model — or from a
    checkpoint's :class:`~repro.distributed.mp.ckpt.ResumeState` when
    ``resume`` is given — and **always** unlinked by the parent,
    including when a worker crashes (the partial failure path raises
    :class:`WorkerCrashError` after cleanup).  ``kills`` injects seeded
    real-process deaths (see :class:`KillSpec`); restart orchestration
    lives in :func:`repro.distributed.mp.ft.run_hybrid_ft`.
    """
    run = run or HybridRunConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    world = run.workers
    if resume is not None and not 0 <= resume.step < run.steps:
        raise ValueError(
            f"resume.step must be in [0, {run.steps}), got {resume.step}"
        )
    if run.checkpoint_dir:
        pathlib.Path(run.checkpoint_dir).mkdir(parents=True, exist_ok=True)
    plan = ShardPlan.greedy(config, world)
    order = [t.name for t in config.tables]
    if resume is not None:
        shards = TableShards.create(
            {name: resume.table_weights[name] for name in order},
            accums={name: resume.table_accums[name] for name in order},
        )
    else:
        init_model, _ = _build_replica(config, run)
        shards = TableShards.create(
            {name: init_model.embeddings.tables[name].weight for name in order}
        )
        del init_model
    start = resume.step if resume is not None else 0
    ctx = mp.get_context("fork")
    fabric = _Fabric(world, ctx)
    barrier = ctx.Barrier(world)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(rank, world, config, run, plan, shards, fabric, barrier,
                  _crash, kills, resume),
            name=f"mp-worker-{rank}",
        )
        for rank in range(world)
    ]
    timeouts = get_timeouts()
    try:
        for p in procs:
            p.start()
        fabric.close_parent_side()
        reports, ckpt_events = _supervise(procs, fabric, run, start)
        for rank, p in enumerate(procs):
            p.join(timeout=timeouts.join_s)
            if p.exitcode not in (0, None):
                raise WorkerCrashError(rank, p.exitcode)
        # Reports are in; the final barrier guarantees all shard writes
        # landed, so digests taken now are the post-training state.
        table_digests = {name: shards.digest(name, "weight") for name in order}
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=timeouts.reap_s)
        fabric.close_all()
        shards.close()

    if resume is not None:
        per_rank = [
            resume.per_rank_losses[r.rank] + r.losses for r in reports
        ]
    else:
        per_rank = [r.losses for r in reports]
    executed = run.steps - start
    # representative step time: per step take the max across ranks (the
    # barrier makes the slowest rank the step's wall time), then the best
    # post-warmup step (the harness's best-of estimator).
    per_step_wall = [
        max(r.step_s[t] for r in reports) for t in range(executed)
    ]
    effective = per_step_wall[run.warmup_steps:] or per_step_wall
    phase_max = {
        ph: max(r.phase_s[ph] for r in reports) for ph in _PHASES
    }
    checkpoints = _committed_checkpoints(ckpt_events)
    per_rank_pipeline = [r.pipeline for r in reports]
    pipeline_agg = None
    ledgers = [p for p in per_rank_pipeline if p is not None]
    if ledgers:
        # Straggler view: the worst stall on any rank stalls the step (the
        # barrier couples them), and the weakest overlap bounds the win.
        pipeline_agg = {
            "prep_busy_s": max(p["prep_busy_s"] for p in ledgers),
            "prep_stall_s": max(p["prep_stall_s"] for p in ledgers),
            "compute_stall_s": max(p["compute_stall_s"] for p in ledgers),
            "overlap_fraction": min(p["overlap_fraction"] for p in ledgers),
            "batches": max(p["batches"] for p in ledgers),
        }
    for r in reports:
        cursor = 0.0
        for ph in _PHASES:
            tracer.record(
                f"mp.{ph}",
                "comm" if ph in ("sparse_exchange", "dense_wait", "barrier")
                else ("io" if ph == "checkpoint"
                      else ("pipeline" if ph == "prep_wait" else "compute")),
                cursor,
                r.phase_s[ph],
                tid=r.rank + 1,
                rank=r.rank,
            )
            cursor += r.phase_s[ph]
    for step, secs in checkpoints:
        tracer.record("mp.ft.checkpoint", "io", 0.0, secs, tid=0, step=step)
    return HybridResult(
        workers=world,
        steps=run.steps,
        batch_size=run.batch_size,
        reduction=run.reduction,
        losses=_combine_losses(per_rank, run.steps),
        per_rank_losses=per_rank,
        step_time_s=min(effective),
        mean_step_s=sum(effective) / len(effective),
        phase_s=phase_max,
        comm_s=max(r.comm_s for r in reports),
        dense_digest=reports[0].dense_digest,
        table_digests=table_digests,
        plan=plan,
        per_rank_phase_s=[r.phase_s for r in reports],
        checkpoints=checkpoints,
        resumed_from=start,
        pipeline=pipeline_agg,
        per_rank_pipeline=per_rank_pipeline,
    )


# ---------------------------------------------------------------------------
# the serial reference: same partition, same math, one process
# ---------------------------------------------------------------------------


def run_hybrid_serial(
    config: ModelConfig, run: HybridRunConfig | None = None
) -> HybridResult:
    """Single-process reference executing the *same fixed partition*.

    One model, one optimizer; each step walks the W per-rank sub-batches
    sequentially (gradients accumulate left-associatively in rank order —
    exactly the ``"ordered"`` allreduce association) and applies one
    optimizer step.  ``run_hybrid`` with ``reduction="ordered"`` matches
    this bit-for-bit in f64 and f32; ``"ring"`` matches at W=2 and is
    tolerance-bounded beyond.
    """
    run = run or HybridRunConfig()
    world = run.workers
    model, loss_fn = _build_replica(config, run)
    optimizer = Adagrad(
        model.dense_parameters(),
        model.embedding_tables(),
        lr=run.lr,
        backend=model.backend,
    )
    gens = [
        SyntheticDataGenerator(config, rng=derive_seed(run.seed, "data", r))
        for r in range(world)
    ]
    rank_batches = [
        [g.batch(run.local_batch) for _ in range(run.steps)] for g in gens
    ]
    inv_world = 1.0 / world
    per_rank: list[list[float]] = [[] for _ in range(world)]
    step_s: list[float] = []
    for step in range(run.steps):
        t0 = time.perf_counter()
        model.zero_grad()
        optimizer.zero_grad()
        for r in range(world):
            batch = rank_batches[r][step]
            logits = model.forward(batch)
            per_rank[r].append(loss_fn.forward(logits, batch.labels))
            grad = loss_fn.backward()
            grad *= inv_world
            model.backward(grad)
        optimizer.step()
        step_s.append(time.perf_counter() - t0)
    effective = step_s[run.warmup_steps:] or step_s
    table_digests = {
        t.name: hashlib.sha256(
            model.embeddings.tables[t.name].weight.tobytes()
        ).hexdigest()
        for t in config.tables
    }
    return HybridResult(
        workers=world,
        steps=run.steps,
        batch_size=run.batch_size,
        reduction="serial",
        losses=_combine_losses(per_rank, run.steps),
        per_rank_losses=per_rank,
        step_time_s=min(effective),
        mean_step_s=sum(effective) / len(effective),
        phase_s=dict.fromkeys(_PHASES, 0.0),
        comm_s=0.0,
        dense_digest=_dense_digest(model),
        table_digests=table_digests,
        plan=None,
    )


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate per-rank sub-batches into one full batch (rank order).

    Used to compare the hybrid trajectory against a plain full-batch
    serial :class:`~repro.core.Trainer` (tolerance-bounded: summed
    sub-batch GEMMs associate differently than one full-batch GEMM).
    """
    dense = np.concatenate([b.dense for b in batches], axis=0)
    labels = np.concatenate([b.labels for b in batches])
    sparse: dict[str, RaggedIndices] = {}
    for name in batches[0].sparse:
        raggeds = [b.sparse[name] for b in batches]
        values = np.concatenate([r.values for r in raggeds])
        offsets = [np.asarray(raggeds[0].offsets)]
        shift = raggeds[0].offsets[-1]
        for r in raggeds[1:]:
            offsets.append(np.asarray(r.offsets[1:]) + shift)
            shift += r.offsets[-1]
        bound = min(
            (r.safe_bound for r in raggeds if r.safe_bound is not None),
            default=None,
        )
        sparse[name] = RaggedIndices(
            values=values, offsets=np.concatenate(offsets), safe_bound=bound
        )
    return Batch(dense=dense, sparse=sparse, labels=labels)
