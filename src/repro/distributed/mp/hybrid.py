"""True multi-process hybrid-parallel DLRM training.

The execution style of Kalamkar et al.'s CPU-cluster DLRM training,
realized with OS processes instead of an analytic model:

* **Embedding tables are model-parallel.**  Every table's weights and
  Adagrad accumulator live in shared memory (:mod:`.shards`); all workers
  read rows zero-copy during the forward, and each table's *owner* rank
  applies the merged sparse update.  Workers ship their local sparse
  gradients to owners over pairwise mesh channels.
* **MLPs are data-parallel.**  Every worker holds an identical replica
  (same seeded init) and trains on its own slice of the global batch; dense
  gradients are allreduced over ring channels (:mod:`.allreduce`), with
  layer k's exchange overlapped against layer k-1's backward by a
  dedicated communication thread.

Determinism contract (pinned by ``tests/test_mp.py``): with the
``"ordered"`` reduction an N-worker run is **bit-identical** — losses,
dense parameters, and embedding shards — to :func:`run_hybrid_serial`,
the single-process trainer walking the same fixed partition and seeded
per-rank data split, in float64 *and* float32.  Against a plain
full-batch serial trainer the match is tolerance-bounded (chunked
sub-batch GEMMs sum in a different order than one full-batch GEMM).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from ...core import DLRM, Adagrad, Batch
from ...core.config import ModelConfig
from ...core.embedding import RaggedIndices, SparseGrad
from ...core.loss import BCEWithLogitsLoss
from ...core.mlp import Linear
from ...data import SyntheticDataGenerator
from ...obs.tracer import NULL_TRACER
from ...runtime.runner import derive_seed
from .allreduce import GradReducer
from .channels import Channel, exchange_frames
from .shards import ShardPlan, TableShards

__all__ = [
    "HybridRunConfig",
    "HybridResult",
    "WorkerCrashError",
    "run_hybrid",
    "run_hybrid_serial",
    "concat_batches",
]

_PHASES = ("forward", "loss", "backward", "sparse_exchange", "dense_wait",
           "optimizer", "barrier")


@dataclass(frozen=True)
class HybridRunConfig:
    """One hybrid-parallel training run.

    ``batch_size`` is the *global* batch; each worker trains on
    ``batch_size // workers`` examples per step from its own seeded
    stream (``derive_seed(seed, "data", rank)``).
    """

    workers: int = 2
    steps: int = 4
    batch_size: int = 256
    lr: float = 0.01
    seed: int = 0
    reduction: str = "ordered"  # "ordered" (bit-deterministic) | "ring"
    warmup_steps: int = 1
    barrier_timeout_s: float = 120.0
    collect_timeout_s: float = 600.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.batch_size % self.workers:
            raise ValueError(
                f"batch_size {self.batch_size} not divisible by "
                f"{self.workers} workers"
            )
        if self.reduction not in ("ordered", "ring"):
            raise ValueError(f"unknown reduction {self.reduction!r}")

    @property
    def local_batch(self) -> int:
        return self.batch_size // self.workers


@dataclass
class WorkerReport:
    """What one worker sends back to the parent over its result pipe."""

    rank: int
    losses: list[float]
    step_s: list[float]
    phase_s: dict[str, float]
    comm_s: float
    dense_digest: str
    pid: int


@dataclass
class HybridResult:
    """Outcome of a hybrid run (multi-process or the serial reference)."""

    workers: int
    steps: int
    batch_size: int
    reduction: str
    losses: list[float]  # combined global loss per step
    per_rank_losses: list[list[float]]
    step_time_s: float  # best post-warmup step wall time
    mean_step_s: float
    phase_s: dict[str, float]  # max over ranks, per phase
    comm_s: float
    dense_digest: str  # sha256 over the dense parameters (rank 0 replica)
    table_digests: dict[str, str]  # sha256 over each embedding shard
    plan: ShardPlan | None = None
    per_rank_phase_s: list[dict[str, float]] = field(default_factory=list)

    def state_digest(self) -> str:
        """One digest over all trained state (dense replica + shards)."""
        h = hashlib.sha256(self.dense_digest.encode())
        for name in sorted(self.table_digests):
            h.update(name.encode())
            h.update(self.table_digests[name].encode())
        return h.hexdigest()


class WorkerCrashError(RuntimeError):
    """A worker process died before delivering its report.

    ``rank``/``exitcode`` identify the primary casualty; ``dead`` lists
    every rank that died (peers of a crashed worker typically die
    secondarily from the broken channel).
    """

    def __init__(
        self,
        rank: int,
        exitcode: int | None,
        dead: list[tuple[int, int | None]] | None = None,
    ) -> None:
        dead = dead or [(rank, exitcode)]
        super().__init__(
            f"mp worker rank {rank} died (exitcode {exitcode}); "
            f"dead ranks: {dead}"
        )
        self.rank = rank
        self.exitcode = exitcode
        self.dead = dead


# ---------------------------------------------------------------------------
# IPC fabric: every endpoint of one run, built pre-fork
# ---------------------------------------------------------------------------


class _Fabric:
    """Ring + mesh channels and result pipes for ``world`` workers.

    Built in the parent before ``fork``; each child calls :meth:`isolate`
    to close every endpoint it does not own, and the parent calls
    :meth:`close_parent_side` right after spawning — so a dead worker's
    peers see EOF instead of hanging on a socket the parent still holds.
    """

    def __init__(self, world: int, ctx) -> None:
        self.world = world
        # ring_pairs[i] connects rank i -> rank (i+1) % world:
        # element 0 is i's RIGHT endpoint, element 1 is (i+1)'s LEFT.
        self.ring_pairs = (
            [Channel.pair() for _ in range(world)] if world > 1 else []
        )
        self.mesh_pairs = {
            (i, j): Channel.pair()
            for i in range(world)
            for j in range(i + 1, world)
        }
        self.pipes = [ctx.Pipe(duplex=False) for _ in range(world)]

    def right(self, rank: int) -> Channel | None:
        return self.ring_pairs[rank][0] if self.ring_pairs else None

    def left(self, rank: int) -> Channel | None:
        return self.ring_pairs[(rank - 1) % self.world][1] if self.ring_pairs else None

    def mesh(self, rank: int) -> dict[int, Channel]:
        out: dict[int, Channel] = {}
        for (i, j), (a, b) in self.mesh_pairs.items():
            if i == rank:
                out[j] = a
            elif j == rank:
                out[i] = b
        return out

    def parent_conn(self, rank: int):
        return self.pipes[rank][0]

    def child_conn(self, rank: int):
        return self.pipes[rank][1]

    def _owned_by(self, rank: int) -> set[Channel]:
        owned = set(self.mesh(rank).values())
        if self.ring_pairs:
            owned.add(self.right(rank))
            owned.add(self.left(rank))
        return owned

    def _all_channels(self) -> list[Channel]:
        chans = [c for pair in self.ring_pairs for c in pair]
        chans.extend(c for pair in self.mesh_pairs.values() for c in pair)
        return chans

    def isolate(self, rank: int) -> None:
        """Close (in a forked child) every endpoint not owned by ``rank``."""
        owned = self._owned_by(rank)
        for ch in self._all_channels():
            if ch not in owned:
                ch.close()
        for r, (parent_end, child_end) in enumerate(self.pipes):
            parent_end.close()
            if r != rank:
                child_end.close()

    def close_parent_side(self) -> None:
        """Close (in the parent) all channels and the children's pipe ends."""
        for ch in self._all_channels():
            ch.close()
        for _, child_end in self.pipes:
            child_end.close()

    def close_all(self) -> None:
        self.close_parent_side()
        for parent_end, _ in self.pipes:
            try:
                parent_end.close()
            except OSError:  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _build_replica(config: ModelConfig, run: HybridRunConfig):
    """The per-process model/loss pair; identical on every rank by seed."""
    model = DLRM(config, rng=derive_seed(run.seed, "model"))
    loss = BCEWithLogitsLoss(workspace=model.workspace, backend=model.backend)
    return model, loss


def _dense_digest(model: DLRM) -> str:
    h = hashlib.sha256()
    for p in model.dense_parameters():
        h.update(np.ascontiguousarray(p.value).tobytes())
    return h.hexdigest()


def _backward_overlapped(model: DLRM, grad_logits: np.ndarray, submit) -> None:
    """DLRM.backward with gradient-exchange hooks.

    Operation order is identical to :meth:`repro.core.DLRM.backward`
    (bit-identity depends on it).  ``submit`` receives two fixed buckets:
    the top-of-net gradients (scorer + top MLP) the moment that half's
    backward completes — so its allreduce overlaps the interaction /
    embedding / bottom backward — and the bottom-MLP gradients at the end.
    Two buckets per step keeps the hop count (and the per-hop scheduling
    overhead on an oversubscribed host) low while still overlapping the
    larger half of the exchange.
    """
    grad = np.asarray(grad_logits, dtype=model.dtype).reshape(-1, 1)
    grad = model.scorer.backward(grad)
    top_bucket = [model.scorer.weight.grad, model.scorer.bias.grad]
    for layer in reversed(model.top_mlp.layers):
        grad = layer.backward(grad)
        if isinstance(layer, Linear):
            top_bucket.extend((layer.weight.grad, layer.bias.grad))
    submit(top_bucket)
    grad_dense, grad_embs = model.interaction.backward(grad)
    model.embeddings.backward(
        {name: g for name, g in zip(model._feature_order, grad_embs)}
    )
    bottom_bucket = []
    for layer in reversed(model.bottom_mlp.layers):
        grad_dense = layer.backward(grad_dense)
        if isinstance(layer, Linear):
            bottom_bucket.extend((layer.weight.grad, layer.bias.grad))
    submit(bottom_bucket)


def _pack_sparse(grads: dict[str, SparseGrad | None]) -> bytes:
    return pickle.dumps(
        {
            name: (None if g is None else (g.rows, g.values))
            for name, g in grads.items()
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _unpack_sparse(payload) -> dict[str, SparseGrad | None]:
    raw = pickle.loads(bytes(payload))
    return {
        name: (None if t is None else SparseGrad(rows=t[0], values=t[1]))
        for name, t in raw.items()
    }


def _merge_rank_order(parts: list[SparseGrad | None]) -> SparseGrad | None:
    """Merge per-rank contributions exactly like ``EmbeddingTable.pop_grad``:
    single contribution passes through untouched, several concatenate in
    rank order and coalesce once."""
    present = [g for g in parts if g is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    rows = np.concatenate([g.rows for g in present])
    vals = np.concatenate([g.values for g in present])
    return SparseGrad.coalesce(rows, vals)


def _exchange_sparse(
    rank: int,
    world: int,
    plan: ShardPlan,
    local: dict[str, SparseGrad | None],
    mesh: dict[int, Channel],
) -> dict[str, SparseGrad | None]:
    """Ship local sparse grads to table owners; returns merged grads for
    the tables this rank owns.

    W-1 rounds of simultaneous framed exchange: in round ``off`` rank r
    sends to ``(r+off) % W`` and receives from ``(r-off) % W`` — a
    permutation per round, so no two ranks ever block on each other.
    Contributions are merged in **rank order** regardless of arrival.
    """
    by_rank: list[dict[str, SparseGrad | None] | None] = [None] * world
    by_rank[rank] = local
    for off in range(1, world):
        dst = (rank + off) % world
        src = (rank - off) % world
        outbound = _pack_sparse(
            {name: local[name] for name in plan.owned(dst)}
        )
        (payload,) = exchange_frames(
            [(mesh[dst], outbound)], [mesh[src]]
        )
        by_rank[src] = _unpack_sparse(payload)
    merged: dict[str, SparseGrad | None] = {}
    for name in plan.owned(rank):
        merged[name] = _merge_rank_order(
            [
                by_rank[r][name] if by_rank[r] is not None and name in by_rank[r]
                else (local[name] if r == rank else None)
                for r in range(world)
            ]
        )
    return merged


def _worker_main(
    rank: int,
    world: int,
    config: ModelConfig,
    run: HybridRunConfig,
    plan: ShardPlan,
    shards: TableShards,
    fabric: _Fabric,
    barrier,
    crash: tuple[int, int] | None,
) -> None:
    conn = fabric.child_conn(rank)
    fabric.isolate(rank)
    model, loss_fn = _build_replica(config, run)
    # Zero-copy shard adoption: every rank reads all tables straight out of
    # shared memory; only owned tables are ever written by this rank.
    for name in (t.name for t in config.tables):
        model.embeddings.tables[name].adopt_weight(shards.view(name, "weight"))
    owned = plan.owned(rank)
    optimizer = Adagrad(
        model.dense_parameters(),
        [model.embeddings.tables[n] for n in owned],
        lr=run.lr,
        backend=model.backend,
    )
    for i, name in enumerate(owned):
        optimizer.adopt_table_state(i, shards.view(name, "accum"))

    gen = SyntheticDataGenerator(config, rng=derive_seed(run.seed, "data", rank))
    batches = [gen.batch(run.local_batch) for _ in range(run.steps)]

    max_elems = sum(p.grad.size for p in model.dense_parameters())
    reducer = GradReducer(
        rank, world, fabric.left(rank), fabric.right(rank),
        mode=run.reduction, max_elems=max_elems, dtype=model.dtype,
    )
    mesh = fabric.mesh(rank)
    table_names = [t.name for t in config.tables]
    inv_world = 1.0 / world
    losses: list[float] = []
    step_s: list[float] = []
    phase_s = dict.fromkeys(_PHASES, 0.0)

    def timed(phase: str, fn, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        phase_s[phase] += time.perf_counter() - t0
        return out

    try:
        barrier.wait(timeout=run.barrier_timeout_s)
        for step, batch in enumerate(batches):
            t_step = time.perf_counter()
            model.zero_grad()
            optimizer.zero_grad()
            logits = timed("forward", model.forward, batch)
            loss_val = timed("loss", loss_fn.forward, logits, batch.labels)
            if crash is not None and crash == (rank, step):
                os._exit(41)  # simulated hard crash (tests only)
            grad = loss_fn.backward()
            # Exact global-batch normalization: every rank (and the serial
            # reference) scales its local mean-loss gradient by the same
            # 1/W constant, so the allreduced sum is the global gradient
            # with identical rounding on every path.
            grad *= inv_world
            timed("backward", _backward_overlapped, model, grad, reducer.submit)
            local = {
                name: model.embeddings.tables[name].pop_grad()
                for name in table_names
            }
            merged = timed(
                "sparse_exchange", _exchange_sparse, rank, world, plan, local, mesh
            )
            timed("dense_wait", reducer.flush)

            def _apply():
                optimizer.dense_step()
                for i, name in enumerate(owned):
                    g = merged[name]
                    if g is not None:
                        optimizer.sparse_update(i, g)

            timed("optimizer", _apply)
            # All shard writes must land before any rank's next forward.
            timed("barrier", barrier.wait, run.barrier_timeout_s)
            losses.append(loss_val)
            step_s.append(time.perf_counter() - t_step)
        reducer.shutdown()
        conn.send(
            WorkerReport(
                rank=rank,
                losses=losses,
                step_s=step_s,
                phase_s=phase_s,
                comm_s=reducer.comm_seconds,
                dense_digest=_dense_digest(model),
                pid=os.getpid(),
            )
        )
        conn.close()
    finally:
        for ch in mesh.values():
            ch.close()
        if fabric.left(rank) is not None:
            fabric.left(rank).close()
            fabric.right(rank).close()


# ---------------------------------------------------------------------------
# parent orchestrator
# ---------------------------------------------------------------------------


def _combine_losses(per_rank: list[list[float]], steps: int) -> list[float]:
    """Global per-step loss: rank-order left-associative sum / W — the same
    association the serial reference uses, so f64 losses match bitwise."""
    world = len(per_rank)
    out = []
    for t in range(steps):
        acc = per_rank[0][t]
        for r in range(1, world):
            acc = acc + per_rank[r][t]
        out.append(acc / world)
    return out


def _crash_error(procs, rank: int) -> WorkerCrashError:
    """Build the crash report, attributing blame to the primary casualty.

    Peers of a crashed worker usually die secondarily (broken channel →
    uncaught ``ChannelClosed``, exitcode 1), so prefer a rank that died
    from a signal or an explicit ``os._exit`` code over plain exitcode 1.
    """
    for p in procs:
        p.join(timeout=5.0)
    dead = [
        (r, p.exitcode) for r, p in enumerate(procs) if p.exitcode not in (0, None)
    ]
    primary = next(
        (d for d in dead if d[1] is not None and d[1] != 1),
        dead[0] if dead else (rank, procs[rank].exitcode),
    )
    return WorkerCrashError(primary[0], primary[1], dead)


def _collect_reports(procs, fabric: _Fabric, run: HybridRunConfig) -> list[WorkerReport]:
    reports: dict[int, WorkerReport] = {}
    deadline = time.monotonic() + run.collect_timeout_s
    for rank, proc in enumerate(procs):
        conn = fabric.parent_conn(rank)
        while not conn.poll(0.05):
            if not proc.is_alive() and not conn.poll(0.0):
                raise _crash_error(procs, rank)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"mp worker rank {rank} produced no report within "
                    f"{run.collect_timeout_s:.0f}s"
                )
        try:
            reports[rank] = conn.recv()
        except EOFError as err:
            raise _crash_error(procs, rank) from err
    return [reports[r] for r in range(len(procs))]


def run_hybrid(
    config: ModelConfig,
    run: HybridRunConfig | None = None,
    tracer=None,
    _crash: tuple[int, int] | None = None,
) -> HybridResult:
    """Train ``config`` across ``run.workers`` real OS processes.

    Shards are created, initialized from the seeded model, and **always**
    unlinked by the parent — including when a worker crashes (the partial
    failure path raises :class:`WorkerCrashError` after cleanup).
    """
    run = run or HybridRunConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    world = run.workers
    plan = ShardPlan.greedy(config, world)
    init_model, _ = _build_replica(config, run)
    order = [t.name for t in config.tables]
    shards = TableShards.create(
        {name: init_model.embeddings.tables[name].weight for name in order}
    )
    del init_model
    ctx = mp.get_context("fork")
    fabric = _Fabric(world, ctx)
    barrier = ctx.Barrier(world)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(rank, world, config, run, plan, shards, fabric, barrier, _crash),
            name=f"mp-worker-{rank}",
        )
        for rank in range(world)
    ]
    try:
        for p in procs:
            p.start()
        fabric.close_parent_side()
        reports = _collect_reports(procs, fabric, run)
        for rank, p in enumerate(procs):
            p.join(timeout=30.0)
            if p.exitcode not in (0, None) and p.exitcode != 0:
                raise WorkerCrashError(rank, p.exitcode)
        # Reports are in; the final barrier guarantees all shard writes
        # landed, so digests taken now are the post-training state.
        table_digests = {
            name: hashlib.sha256(shards.view(name, "weight").tobytes()).hexdigest()
            for name in order
        }
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=10.0)
        fabric.close_all()
        shards.close()

    per_rank = [r.losses for r in reports]
    # representative step time: per step take the max across ranks (the
    # barrier makes the slowest rank the step's wall time), then the best
    # post-warmup step (the harness's best-of estimator).
    per_step_wall = [
        max(r.step_s[t] for r in reports) for t in range(run.steps)
    ]
    effective = per_step_wall[run.warmup_steps:] or per_step_wall
    phase_max = {
        ph: max(r.phase_s[ph] for r in reports) for ph in _PHASES
    }
    for r in reports:
        cursor = 0.0
        for ph in _PHASES:
            tracer.record(
                f"mp.{ph}",
                "comm" if ph in ("sparse_exchange", "dense_wait", "barrier") else "compute",
                cursor,
                r.phase_s[ph],
                tid=r.rank + 1,
                rank=r.rank,
            )
            cursor += r.phase_s[ph]
    return HybridResult(
        workers=world,
        steps=run.steps,
        batch_size=run.batch_size,
        reduction=run.reduction,
        losses=_combine_losses(per_rank, run.steps),
        per_rank_losses=per_rank,
        step_time_s=min(effective),
        mean_step_s=sum(effective) / len(effective),
        phase_s=phase_max,
        comm_s=max(r.comm_s for r in reports),
        dense_digest=reports[0].dense_digest,
        table_digests=table_digests,
        plan=plan,
        per_rank_phase_s=[r.phase_s for r in reports],
    )


# ---------------------------------------------------------------------------
# the serial reference: same partition, same math, one process
# ---------------------------------------------------------------------------


def run_hybrid_serial(
    config: ModelConfig, run: HybridRunConfig | None = None
) -> HybridResult:
    """Single-process reference executing the *same fixed partition*.

    One model, one optimizer; each step walks the W per-rank sub-batches
    sequentially (gradients accumulate left-associatively in rank order —
    exactly the ``"ordered"`` allreduce association) and applies one
    optimizer step.  ``run_hybrid`` with ``reduction="ordered"`` matches
    this bit-for-bit in f64 and f32; ``"ring"`` matches at W=2 and is
    tolerance-bounded beyond.
    """
    run = run or HybridRunConfig()
    world = run.workers
    model, loss_fn = _build_replica(config, run)
    optimizer = Adagrad(
        model.dense_parameters(),
        model.embedding_tables(),
        lr=run.lr,
        backend=model.backend,
    )
    gens = [
        SyntheticDataGenerator(config, rng=derive_seed(run.seed, "data", r))
        for r in range(world)
    ]
    rank_batches = [
        [g.batch(run.local_batch) for _ in range(run.steps)] for g in gens
    ]
    inv_world = 1.0 / world
    per_rank: list[list[float]] = [[] for _ in range(world)]
    step_s: list[float] = []
    for step in range(run.steps):
        t0 = time.perf_counter()
        model.zero_grad()
        optimizer.zero_grad()
        for r in range(world):
            batch = rank_batches[r][step]
            logits = model.forward(batch)
            per_rank[r].append(loss_fn.forward(logits, batch.labels))
            grad = loss_fn.backward()
            grad *= inv_world
            model.backward(grad)
        optimizer.step()
        step_s.append(time.perf_counter() - t0)
    effective = step_s[run.warmup_steps:] or step_s
    table_digests = {
        t.name: hashlib.sha256(
            model.embeddings.tables[t.name].weight.tobytes()
        ).hexdigest()
        for t in config.tables
    }
    return HybridResult(
        workers=world,
        steps=run.steps,
        batch_size=run.batch_size,
        reduction="serial",
        losses=_combine_losses(per_rank, run.steps),
        per_rank_losses=per_rank,
        step_time_s=min(effective),
        mean_step_s=sum(effective) / len(effective),
        phase_s=dict.fromkeys(_PHASES, 0.0),
        comm_s=0.0,
        dense_digest=_dense_digest(model),
        table_digests=table_digests,
        plan=None,
    )


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate per-rank sub-batches into one full batch (rank order).

    Used to compare the hybrid trajectory against a plain full-batch
    serial :class:`~repro.core.Trainer` (tolerance-bounded: summed
    sub-batch GEMMs associate differently than one full-batch GEMM).
    """
    dense = np.concatenate([b.dense for b in batches], axis=0)
    labels = np.concatenate([b.labels for b in batches])
    sparse: dict[str, RaggedIndices] = {}
    for name in batches[0].sparse:
        raggeds = [b.sparse[name] for b in batches]
        values = np.concatenate([r.values for r in raggeds])
        offsets = [np.asarray(raggeds[0].offsets)]
        shift = raggeds[0].offsets[-1]
        for r in raggeds[1:]:
            offsets.append(np.asarray(r.offsets[1:]) + shift)
            shift += r.offsets[-1]
        bound = min(
            (r.safe_bound for r in raggeds if r.safe_bound is not None),
            default=None,
        )
        sparse[name] = RaggedIndices(
            values=values, offsets=np.concatenate(offsets), safe_bound=bound
        )
    return Batch(dense=dense, sparse=sparse, labels=labels)
