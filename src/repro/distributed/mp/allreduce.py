"""Allreduce over a ring of worker processes, with pinned reduction orders.

Floating-point addition is commutative but not associative, so a
deterministic allreduce must *declare* its reduction order.  Two modes:

``"ordered"``
    Rank-sequential: the partial sum travels the ring once
    (``((g_0 + g_1) + g_2) + ...``) and the total travels it once more.
    This is exactly the order a
    serial trainer accumulating per-worker sub-batches produces — so an
    N-worker run is bit-identical to the serial reference in every dtype.
    Cost: 2(W-1) sequential full-payload hops — latency-bound, fine for
    the small dense halves of recommendation models.

``"ring"``
    Bandwidth-optimal reduce-scatter + allgather: 2(W-1) hops of
    ``payload/W`` each, all links busy simultaneously.  Chunk ``c`` is
    accumulated in rotated rank order ``g_c + g_{c+1} + ... (mod W)`` —
    deterministic (pinned by :func:`ring_ordered_sum` and the hypothesis
    suite) but a different association than ``np.sum`` for W > 2, hence
    tolerance-bounded against the serial reference in general and
    bit-identical at W = 2 (two-term sums are order-insensitive).

:class:`GradReducer` runs either mode on a dedicated communication thread
so layer k's gradient exchange overlaps layer k-1's backward compute
(sockets and BLAS both release the GIL).
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from .channels import Channel, ChannelClosed, transfer
from .timeouts import get_timeouts

__all__ = [
    "tree_sum",
    "ordered_sum",
    "ring_ordered_sum",
    "ring_chunks",
    "ordered_allreduce",
    "ring_allreduce",
    "GradReducer",
]


# ---------------------------------------------------------------------------
# reduction-order references (plain numpy, used by tests and the serial path)
# ---------------------------------------------------------------------------


def ordered_sum(arrays: list[np.ndarray]) -> np.ndarray:
    """Left-associative rank-order sum — the canonical reduction order.

    This is exactly the gradient accumulation a serial trainer performs
    across sub-batches (``acc += g_r`` in rank order), and what
    ``np.sum(np.stack(arrays), axis=0)`` computes for real gradient
    shapes (numpy's axis-0 reduction walks rows sequentially; only the
    degenerate single-element-row case may switch to pairwise order).
    """
    acc = arrays[0].astype(arrays[0].dtype, copy=True)
    for a in arrays[1:]:
        acc += a
    return acc


def tree_sum(arrays: list[np.ndarray]) -> np.ndarray:
    """Balanced-tree (pairwise) sum — the classic reduction-tree order.

    Provided as the reference for tree-structured reducers; agrees with
    :func:`ordered_sum` bit-for-bit up to three operands and within
    accumulation tolerance beyond.
    """
    if len(arrays) == 1:
        return arrays[0].copy()
    mid = (len(arrays) + 1) // 2
    return tree_sum(arrays[:mid]) + tree_sum(arrays[mid:])


def ring_chunks(n: int, world: int) -> list[slice]:
    """The flat-index chunking a ring allreduce over ``world`` ranks uses."""
    bounds = [(n * i) // world for i in range(world + 1)]
    return [slice(bounds[i], bounds[i + 1]) for i in range(world)]


def ring_ordered_sum(arrays: list[np.ndarray], world: int | None = None) -> np.ndarray:
    """The exact result a ring reduce-scatter/allgather produces.

    Chunk ``c`` accumulates contributions in rotated rank order
    ``g_c, g_{c+1}, ..., g_{c+W-1} (mod W)``, left-associatively.
    """
    world = len(arrays) if world is None else world
    flats = [a.ravel() for a in arrays]
    out = np.empty_like(flats[0])
    for c, sl in enumerate(ring_chunks(flats[0].size, world)):
        acc = flats[c % len(arrays)][sl].copy()
        for k in range(1, len(arrays)):
            acc += flats[(c + k) % len(arrays)][sl]
        out[sl] = acc
    return out.reshape(arrays[0].shape)


# ---------------------------------------------------------------------------
# the wire algorithms
# ---------------------------------------------------------------------------


def ordered_allreduce(
    rank: int,
    world: int,
    left: Channel,
    right: Channel,
    buf: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Rank-sequential allreduce; ``buf`` is reduced in place on every rank.

    Phase 1 walks the partial sum up the ring (rank r receives
    ``g_0 + ... + g_{r-1}`` from its left neighbor and adds its own
    contribution); phase 2 broadcasts the total from rank W-1 back around.
    Every send is matched by a concurrently-posted receive on the peer, so
    plain blocking sends cannot deadlock (the dependency graph is a chain).
    """
    if world == 1:
        return
    flat = buf.reshape(-1)
    sview = scratch.reshape(-1)[: flat.size]
    if rank > 0:
        left.recv_into(sview)
        flat += sview
    right.send_array(flat)  # partial up the ring, or the total to rank 0
    if rank < world - 1:
        left.recv_into(flat)
        if rank < world - 2:
            right.send_array(flat)


def ring_allreduce(
    rank: int,
    world: int,
    left: Channel,
    right: Channel,
    buf: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """Bandwidth-optimal ring allreduce; ``buf`` reduced in place.

    Reduce-scatter then allgather, both as W-1 rounds of simultaneous
    send-right/receive-left over :func:`~repro.distributed.mp.channels.transfer`
    (which cannot deadlock on large chunks).
    """
    if world == 1:
        return
    flat = buf.reshape(-1)
    chunks = ring_chunks(flat.size, world)
    sview = scratch.reshape(-1)
    for step in range(world - 1):
        send_c = chunks[(rank - step) % world]
        recv_c = chunks[(rank - step - 1) % world]
        incoming = sview[: recv_c.stop - recv_c.start]
        transfer([(right, flat[send_c])], [(left, incoming)])
        flat[recv_c] += incoming
    for step in range(world - 1):
        send_c = chunks[(rank + 1 - step) % world]
        recv_c = chunks[(rank - step) % world]
        transfer([(right, flat[send_c])], [(left, flat[recv_c])])


ALLREDUCE_MODES = {"ordered": ordered_allreduce, "ring": ring_allreduce}


# ---------------------------------------------------------------------------
# the overlap engine
# ---------------------------------------------------------------------------

_SHUTDOWN = object()


class _Job:
    """A generic callable queued FIFO between allreduce buckets.

    The pipelined trainer uses these to run mesh-channel exchanges (id
    plans for the next step, sparse gradient values for this one) on the
    same communication thread as the dense buckets — one thread, one FIFO,
    so every rank's wire traffic interleaves identically and overlapped
    stages can never race each other on a socket.
    """

    __slots__ = ("fn", "stage")

    def __init__(self, fn, stage: str | None) -> None:
        self.fn = fn
        self.stage = stage


class GradReducer:
    """Asynchronous gradient allreduce on a dedicated communication thread.

    The backward pass submits each dense layer's gradient buffers as soon
    as they are computed; the thread reduces them in place (FIFO, so every
    rank's wire traffic lines up) while the main thread keeps running the
    remaining backward.  ``flush()`` blocks until all submitted buckets are
    reduced, re-raising any communication error.

    :meth:`submit_job` enqueues arbitrary communication work (e.g. the
    pipelined sparse exchanges) into the same FIFO; ``flush()`` covers jobs
    too.

    The ring channels are owned exclusively by this thread between
    construction and :meth:`shutdown` — the main thread must not touch
    them (the sparse exchange uses the separate mesh channels).
    """

    def __init__(
        self,
        rank: int,
        world: int,
        left: Channel | None,
        right: Channel | None,
        mode: str = "ordered",
        max_elems: int = 0,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if mode not in ALLREDUCE_MODES:
            raise ValueError(f"unknown allreduce mode {mode!r}; use {sorted(ALLREDUCE_MODES)}")
        self.rank = rank
        self.world = world
        self.left = left
        self.right = right
        self.mode = mode
        self._algo = ALLREDUCE_MODES[mode]
        self._scratch = np.empty(max(1, max_elems), dtype=dtype)
        self._queue: queue.Queue = queue.Queue()
        self._errors: list[BaseException] = []
        self.comm_seconds = 0.0
        self._thread: threading.Thread | None = None
        if world > 1:
            self._thread = threading.Thread(
                target=self._run, name=f"mp-reducer-{rank}", daemon=True
            )
            self._thread.start()

    def submit(self, arrays: list[np.ndarray]) -> None:
        """Enqueue gradient buffers for in-place allreduce."""
        if self.world == 1 or not arrays:
            return
        self._queue.put(arrays)

    def submit_job(self, fn, stage: str | None = None) -> None:
        """Enqueue a callable to run on the communication thread, FIFO with
        the buckets.  Errors it raises surface at the next :meth:`flush`,
        tagged with ``stage``.  Runs inline when there is no thread
        (single-worker world)."""
        if self._thread is None:
            fn()
            return
        self._queue.put(_Job(fn, stage))

    def flush(self) -> None:
        """Wait until every submitted bucket has been reduced."""
        if self.world == 1:
            return
        self._queue.join()
        if self._errors:
            raise self._errors[0]

    def shutdown(self) -> None:
        if self._thread is None:
            return
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=get_timeouts().join_s)
        self._thread = None

    def _run(self) -> None:
        import time

        pack = np.empty(0, dtype=self._scratch.dtype)
        bucket_id = -1
        while True:
            item = self._queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                if isinstance(item, _Job):
                    t0 = time.perf_counter()
                    try:
                        item.fn()
                    except ChannelClosed as err:
                        self._errors.append(
                            ChannelClosed(
                                f"comm job on rank {self.rank} aborted: {err}",
                                peer=err.peer,
                                bucket=err.bucket,
                                stage=item.stage,
                            )
                        )
                    except BaseException as err:  # noqa: BLE001 - via flush()
                        if item.stage is not None and hasattr(err, "add_note"):
                            err.add_note(f"raised in comm job stage {item.stage!r}")
                        self._errors.append(err)
                    finally:
                        self.comm_seconds += time.perf_counter() - t0
                    continue
                bucket_id += 1
                t0 = time.perf_counter()
                # Pack the bucket's arrays into one contiguous buffer so the
                # whole bucket costs one allreduce (2(W-1) hops) instead of
                # one per array.  Safe for bit-determinism: the reduction is
                # element-wise, so each element's association is unchanged
                # by where it sits in the pack.  Bucket boundaries are fixed
                # by the submission protocol (every rank submits the same
                # buckets in the same order), so wire sizes always agree.
                if len(item) == 1:
                    buf = item[0].reshape(-1)
                else:
                    total = sum(a.size for a in item)
                    if pack.size < total or pack.dtype != item[0].dtype:
                        pack = np.empty(total, dtype=item[0].dtype)
                    buf = pack[:total]
                    off = 0
                    for a in item:
                        buf[off : off + a.size] = a.reshape(-1)
                        off += a.size
                if buf.size > self._scratch.size or buf.dtype != self._scratch.dtype:
                    self._scratch = np.empty(buf.size, dtype=buf.dtype)
                self._algo(
                    self.rank, self.world, self.left, self.right, buf, self._scratch
                )
                if len(item) > 1:
                    off = 0
                    for a in item:
                        a.reshape(-1)[...] = buf[off : off + a.size]
                        off += a.size
                self.comm_seconds += time.perf_counter() - t0
            except ChannelClosed as err:
                # A peer died mid-reduction: name it and the in-flight
                # bucket, so attribution from inside an allreduce matches
                # the parent's exitcode-based attribution.
                self._errors.append(
                    ChannelClosed(
                        f"allreduce bucket {bucket_id} on rank {self.rank} "
                        f"aborted: {err}",
                        peer=err.peer,
                        bucket=bucket_id,
                    )
                )
            except BaseException as err:  # noqa: BLE001 - surfaced via flush()
                self._errors.append(err)
            finally:
                self._queue.task_done()
