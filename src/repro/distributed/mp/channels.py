"""Byte channels between worker processes over Unix socket pairs.

``multiprocessing.Pipe`` sends block once the kernel buffer fills, so a
ring of workers that all ``send`` before any ``recv`` (the reduce-scatter
step of a ring allreduce) can circular-wait deadlock on large payloads.
These channels are raw ``socket.socketpair()`` endpoints plus a
select-driven :func:`transfer` engine that makes progress on *all* pending
sends and receives of a communication round concurrently — a worker can be
mid-send to its right neighbor while draining its left neighbor, so no
payload size can wedge the ring.

Channels are created in the parent before ``fork`` and inherited by both
endpoint processes; everyone else (the parent included) closes their copies
so a crashed worker's peers observe EOF instead of hanging.
"""

from __future__ import annotations

import select
import socket
import struct

import numpy as np

__all__ = ["Channel", "ChannelClosed", "transfer", "exchange_frames"]

_LEN = struct.Struct("<Q")


class ChannelClosed(ConnectionError):
    """The peer closed its end (normally because its process died).

    ``peer`` carries the remote rank when the channel was tagged at fabric
    construction, and ``bucket`` the in-flight allreduce bucket id when the
    close surfaced inside a :class:`~repro.distributed.mp.allreduce.GradReducer`
    — together they let crash attribution from inside a reduction name the
    same casualty the parent's exitcode scan does.  ``stage`` names the
    pipeline stage (``"idplan_exchange"``, ``"sparse_values"``, ...) whose
    wire traffic was interrupted, so a pipelined run's error points at the
    overlapped work that died, not just the socket.
    """

    def __init__(
        self,
        message: str = "peer closed",
        peer: int | None = None,
        bucket: int | None = None,
        stage: str | None = None,
    ) -> None:
        detail = message
        if peer is not None:
            detail += f" (peer rank {peer})"
        if bucket is not None:
            detail += f" (bucket {bucket})"
        if stage is not None:
            detail += f" (stage {stage})"
        super().__init__(detail)
        self.peer = peer
        self.bucket = bucket
        self.stage = stage


class Channel:
    """One full-duplex byte channel between exactly two processes.

    ``peer`` is an optional rank tag set by whoever wires channels into a
    topology; it flows into every :class:`ChannelClosed` this endpoint
    raises so errors can name the dead neighbor.
    """

    def __init__(self, sock: socket.socket, peer: int | None = None) -> None:
        self.sock = sock
        self.peer = peer

    @classmethod
    def pair(cls) -> tuple["Channel", "Channel"]:
        a, b = socket.socketpair()
        return cls(a), cls(b)

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # -- blocking framed messages (sequential protocols) ---------------------

    def send_bytes(self, payload: bytes | memoryview) -> None:
        """Length-prefixed blocking send (safe when the peer is receiving)."""
        self.sock.sendall(_LEN.pack(len(payload)))
        self.sock.sendall(payload)

    def recv_bytes(self) -> bytearray:
        header = self._recv_exact(_LEN.size)
        return self._recv_exact(_LEN.unpack(bytes(header))[0])

    def send_array(self, array: np.ndarray) -> None:
        """Blocking raw send of a contiguous array's bytes (no framing —
        the receiver knows the size from the matching buffer)."""
        self.sock.sendall(memoryview(np.ascontiguousarray(array)).cast("B"))

    def recv_into(self, array: np.ndarray) -> None:
        """Blocking raw receive filling ``array`` completely."""
        view = memoryview(array).cast("B")
        got = 0
        while got < len(view):
            n = self.sock.recv_into(view[got:])
            if n == 0:
                raise ChannelClosed("peer closed during recv", peer=self.peer)
            got += n

    def _recv_exact(self, n: int) -> bytearray:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            k = self.sock.recv_into(view[got:])
            if k == 0:
                raise ChannelClosed("peer closed during recv", peer=self.peer)
            got += k
        return buf


class _SendState:
    __slots__ = ("channel", "view", "done")

    def __init__(self, channel: Channel, payload) -> None:
        self.channel = channel
        self.view = memoryview(payload).cast("B")
        self.done = len(self.view) == 0

    def pump(self) -> None:
        try:
            sent = self.channel.sock.send(self.view[: 1 << 20])
        except BlockingIOError:  # spurious writability — next select round
            return
        self.view = self.view[sent:]
        self.done = len(self.view) == 0


class _RecvState:
    __slots__ = ("channel", "view", "got", "done")

    def __init__(self, channel: Channel, buffer) -> None:
        self.channel = channel
        self.view = memoryview(buffer).cast("B")
        self.got = 0
        self.done = len(self.view) == 0

    def pump(self) -> None:
        try:
            n = self.channel.sock.recv_into(self.view[self.got :])
        except BlockingIOError:  # spurious readability — next select round
            return
        if n == 0:
            raise ChannelClosed(
                "peer closed during transfer", peer=self.channel.peer
            )
        self.got += n
        self.done = self.got == len(self.view)


def transfer(
    sends: list[tuple[Channel, object]],
    recvs: list[tuple[Channel, object]],
) -> None:
    """Complete all fixed-size sends and receives concurrently.

    ``sends``/``recvs`` pair a channel with a contiguous buffer (ndarray,
    bytes, memoryview); both sides must agree on sizes out of band.  The
    select loop writes whatever the kernel will take and reads whatever has
    arrived, so simultaneous exchanges between ring neighbors cannot
    deadlock regardless of payload size relative to socket buffers.
    """
    send_states = [
        _SendState(ch, np.ascontiguousarray(p) if isinstance(p, np.ndarray) else p)
        for ch, p in sends
    ]
    recv_states = [_RecvState(ch, b) for ch, b in recvs]
    pending_s = [s for s in send_states if not s.done]
    pending_r = [r for r in recv_states if not r.done]
    # A *blocking* send() parks until its whole chunk fits in the socket
    # buffer, so two peers both mid-send on frames larger than the buffer
    # deadlock even though select gated the call (select only promises
    # "some" space).  Non-blocking mode makes pump() write exactly what
    # the kernel accepts and return; restored on exit because the framed
    # sequential helpers above rely on blocking sockets.
    toggled = {s.channel.sock for s in pending_s}
    toggled.update(r.channel.sock for r in pending_r)
    for sock in toggled:
        sock.setblocking(False)
    try:
        while pending_s or pending_r:
            rlist = [r.channel.sock for r in pending_r]
            wlist = [s.channel.sock for s in pending_s]
            readable, writable, _ = select.select(rlist, wlist, [])
            readable = set(readable)
            writable = set(writable)
            for r in pending_r:
                if r.channel.sock in readable:
                    r.pump()
            for s in pending_s:
                if s.channel.sock in writable:
                    s.pump()
            pending_s = [s for s in pending_s if not s.done]
            pending_r = [r for r in pending_r if not r.done]
    finally:
        for sock in toggled:
            try:
                sock.setblocking(True)
            except OSError:  # pragma: no cover - socket died mid-transfer
                pass


def exchange_frames(
    sends: list[tuple[Channel, bytes]],
    recvs: list[Channel],
) -> list[bytearray]:
    """Concurrently send framed messages and receive one frame per channel.

    Used for variable-size payloads (pickled sparse gradients).  Two
    rounds: first every side exchanges fixed 8-byte size headers (too small
    to fill any socket buffer, so the round always completes), then one
    :func:`transfer` moves all payloads with both sides knowing every size
    — keeping the no-deadlock guarantee for arbitrarily large frames.
    Returns received payloads in ``recvs`` order.
    """
    headers = [bytearray(_LEN.size) for _ in recvs]
    transfer(
        [(ch, _LEN.pack(len(p))) for ch, p in sends],
        list(zip(recvs, headers)),
    )
    sizes = [_LEN.unpack(bytes(h))[0] for h in headers]
    payloads = [bytearray(n) for n in sizes]
    transfer(
        [(ch, p) for ch, p in sends if len(p)],
        [(ch, p) for ch, p in zip(recvs, payloads) if len(p)],
    )
    return payloads
