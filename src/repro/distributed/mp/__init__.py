"""True multi-process hybrid-parallel training (shared-memory + sockets).

See :mod:`repro.distributed.mp.hybrid` for the execution model: embedding
tables model-parallel in shared memory, MLPs data-parallel with a real
ring/ordered allreduce over socketpairs, dense gradient exchange
overlapped with backward compute.
"""

from .allreduce import (
    GradReducer,
    ordered_allreduce,
    ordered_sum,
    ring_allreduce,
    ring_chunks,
    ring_ordered_sum,
    tree_sum,
)
from .channels import Channel, ChannelClosed, exchange_frames, transfer
from .hybrid import (
    HybridResult,
    HybridRunConfig,
    WorkerCrashError,
    concat_batches,
    run_hybrid,
    run_hybrid_serial,
)
from .predict import CommProfile, StepPrediction, predict_step_time, probe_comm
from .shards import ShardPlan, TableShards

__all__ = [
    "Channel",
    "ChannelClosed",
    "CommProfile",
    "GradReducer",
    "HybridResult",
    "HybridRunConfig",
    "ShardPlan",
    "StepPrediction",
    "TableShards",
    "WorkerCrashError",
    "concat_batches",
    "exchange_frames",
    "ordered_allreduce",
    "ordered_sum",
    "predict_step_time",
    "probe_comm",
    "ring_allreduce",
    "ring_chunks",
    "ring_ordered_sum",
    "run_hybrid",
    "run_hybrid_serial",
    "transfer",
    "tree_sum",
]
