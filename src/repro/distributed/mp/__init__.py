"""True multi-process hybrid-parallel training (shared-memory + sockets).

See :mod:`repro.distributed.mp.hybrid` for the execution model: embedding
tables model-parallel in shared memory, MLPs data-parallel with a real
ring/ordered allreduce over socketpairs, dense gradient exchange
overlapped with backward compute.
"""

from .allreduce import (
    GradReducer,
    ordered_allreduce,
    ordered_sum,
    ring_allreduce,
    ring_chunks,
    ring_ordered_sum,
    tree_sum,
)
from .channels import Channel, ChannelClosed, exchange_frames, transfer
from .ckpt import (
    Manifest,
    ResumeState,
    build_resume,
    latest_valid_manifest,
    load_manifest,
)
from .ft import (
    CrashRecord,
    FtResult,
    RestartPolicy,
    kills_from_plan,
    run_hybrid_ft,
)
from .hybrid import (
    HybridResult,
    HybridRunConfig,
    KillSpec,
    WorkerCrashError,
    concat_batches,
    run_hybrid,
    run_hybrid_serial,
)
from .predict import CommProfile, StepPrediction, predict_step_time, probe_comm
from .shards import ShardPlan, TableShards
from .timeouts import MpTimeouts, get_timeouts, set_timeouts

__all__ = [
    "Channel",
    "ChannelClosed",
    "CommProfile",
    "CrashRecord",
    "FtResult",
    "GradReducer",
    "HybridResult",
    "HybridRunConfig",
    "KillSpec",
    "Manifest",
    "MpTimeouts",
    "RestartPolicy",
    "ResumeState",
    "ShardPlan",
    "StepPrediction",
    "TableShards",
    "WorkerCrashError",
    "build_resume",
    "concat_batches",
    "exchange_frames",
    "get_timeouts",
    "kills_from_plan",
    "latest_valid_manifest",
    "load_manifest",
    "ordered_allreduce",
    "ordered_sum",
    "predict_step_time",
    "probe_comm",
    "ring_allreduce",
    "ring_chunks",
    "ring_ordered_sum",
    "run_hybrid",
    "run_hybrid_ft",
    "run_hybrid_serial",
    "set_timeouts",
    "transfer",
    "tree_sum",
]
