"""Shared-memory embedding shards and their placement plan.

Every embedding table (weights *and* Adagrad accumulator) lives in a
``multiprocessing.shared_memory`` segment created — and, crucially,
unlinked — by the parent process.  Workers inherit the mapping through
``fork`` and wrap zero-copy ndarray views around it: all ranks read rows
straight out of shared memory during the forward pass (this is what
replaces the all-to-all of a message-passing design), while sparse
updates to a table are applied only by the one rank that owns it.

Lifecycle contract (pinned by ``tests/test_mp_shm.py``): the parent is the
sole owner of ``unlink``.  Segments are removed in a ``finally`` whether
workers exit cleanly or crash mid-step, so no ``/dev/shm`` entries and no
resource-tracker "leaked shared_memory" warnings survive a run.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ...core.config import ModelConfig

__all__ = ["ShardPlan", "TableShards"]

_SEGMENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class ShardPlan:
    """Which rank owns each embedding table's sparse updates.

    Greedy largest-first bin packing over table bytes: tables are assigned,
    biggest first, to the currently-lightest rank — the same
    capacity-balancing heuristic the paper's placement study uses for
    multi-GPU sharding, here balancing per-worker update work.
    """

    owners: dict[str, int]
    world: int

    @classmethod
    def greedy(cls, config: ModelConfig, world: int) -> "ShardPlan":
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        loads = [0] * world
        owners: dict[str, int] = {}
        tables = sorted(
            config.tables,
            key=lambda t: (-t.hash_size * t.dim, t.name),
        )
        for spec in tables:
            rank = min(range(world), key=lambda r: (loads[r], r))
            owners[spec.name] = rank
            loads[rank] += spec.hash_size * spec.dim
        return cls(owners=owners, world=world)

    def owned(self, rank: int) -> list[str]:
        """Tables owned by ``rank``, in the plan's insertion (size) order."""
        return [name for name, r in self.owners.items() if r == rank]

    def owner_bytes(self, config: ModelConfig) -> list[int]:
        """Per-rank owned table bytes (weights only) — balance diagnostics."""
        itemsize = np.dtype(config.np_dtype).itemsize
        loads = [0] * self.world
        for spec in config.tables:
            loads[self.owners[spec.name]] += spec.hash_size * spec.dim * itemsize
        return loads


class TableShards:
    """All embedding shards of one hybrid run, in named shared memory.

    ``create`` builds two segments per table — ``weight`` initialized from
    the seeded model (so every process sees the same init the serial
    trainer would produce) and ``accum`` zeroed for the Adagrad state —
    under explicit names carrying the parent pid and a run counter, which
    the lifecycle tests use to detect leaks.
    """

    def __init__(self) -> None:
        self._segments: dict[tuple[str, str], shared_memory.SharedMemory] = {}
        self._shapes: dict[str, tuple[int, int]] = {}
        self._dtype: np.dtype | None = None
        self._owner_pid = os.getpid()

    @classmethod
    def create(
        cls,
        weights: dict[str, np.ndarray],
        accums: dict[str, np.ndarray] | None = None,
    ) -> "TableShards":
        """Allocate and initialize segments from ``table name -> weights``.

        ``accums`` optionally seeds the Adagrad accumulator segments (the
        checkpoint-restore path); absent tables get zeroed accumulators,
        exactly like a fresh run.
        """
        shards = cls()
        accums = accums or {}
        run_id = next(_SEGMENT_COUNTER)
        try:
            for idx, (name, weight) in enumerate(weights.items()):
                if shards._dtype is None:
                    shards._dtype = weight.dtype
                shards._shapes[name] = weight.shape
                for kind, init in (("weight", weight), ("accum", accums.get(name))):
                    seg = shared_memory.SharedMemory(
                        create=True,
                        size=weight.nbytes,
                        name=f"repro_mp_{os.getpid()}_{run_id}_{idx}_{kind}",
                    )
                    shards._segments[(name, kind)] = seg
                    view = np.ndarray(weight.shape, dtype=weight.dtype, buffer=seg.buf)
                    if init is None:
                        view.fill(0.0)
                    else:
                        view[...] = init
        except BaseException:
            shards.close()
            raise
        return shards

    def view(self, name: str, kind: str = "weight") -> np.ndarray:
        """Zero-copy ndarray over a segment (valid in parent and children)."""
        seg = self._segments[(name, kind)]
        return np.ndarray(self._shapes[name], dtype=self._dtype, buffer=seg.buf)

    def digest(self, name: str, kind: str = "weight") -> str:
        """sha256 over a segment's current bytes (checkpoint verification)."""
        import hashlib

        return hashlib.sha256(self.view(name, kind).tobytes()).hexdigest()

    @property
    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments.values()]

    @property
    def total_bytes(self) -> int:
        return sum(seg.size for seg in self._segments.values())

    def close(self) -> None:
        """Close the mapping and (in the creating process) unlink segments.

        Idempotent; called from the parent's ``finally`` so segments are
        removed even when a worker crashed mid-run.  Forked children also
        inherit this object but must *not* unlink — only the creator does.
        """
        unlink = os.getpid() == self._owner_pid
        for seg in self._segments.values():
            # Unlink before close: shm_unlink removes the /dev/shm name (and
            # the resource-tracker registration) regardless of live mappings,
            # so a view still alive inside a model replica cannot leak the
            # segment — it only delays freeing the memory until GC.
            if unlink:
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            try:
                seg.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass
        self._segments.clear()
