"""A small discrete-event simulation core.

Used by :mod:`repro.distributed.cluster` to model the production CPU
training pipeline (Figure 4) at the event level: trainers iterate, requests
queue at parameter-server resources, and per-resource busy time yields the
utilization samples behind Figure 5's distributions.

The core is deliberately minimal: a time-ordered event queue plus FIFO
:class:`Resource` servers characterized by a service rate in bytes/second.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..obs.registry import MetricsRegistry

__all__ = ["Event", "Resource", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Resource:
    """A FIFO server processing work measured in bytes at ``rate`` bytes/s.

    ``submit`` enqueues a job and returns its completion time; jobs are
    served back-to-back (non-preemptive, single server).  Busy time is
    tracked for utilization reporting.
    """

    def __init__(
        self, name: str, rate: float, registry: MetricsRegistry | None = None
    ) -> None:
        if rate <= 0:
            raise ValueError(f"resource {name!r}: rate must be positive")
        self.name = name
        self.rate = rate
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs_served = 0
        # Outage state (see fail()): while down, arriving jobs queue behind
        # the recovery point instead of being served.
        self._down_until = 0.0
        self.down_time = 0.0
        self.outages = 0
        # Optional telemetry: queue-depth-at-arrival and per-job wait/service
        # histograms, labeled by resource name (see repro.obs.registry).
        self._pending: deque[float] | None = None
        self._h_depth = self._h_wait = self._h_service = None
        if registry is not None:
            self._pending = deque()
            self._h_depth = registry.histogram("resource_queue_depth").labels(
                resource=name
            )
            self._h_wait = registry.histogram("resource_queue_wait_s").labels(
                resource=name
            )
            self._h_service = registry.histogram("resource_busy_s").labels(
                resource=name
            )

    def submit(self, now: float, size_bytes: float, extra_latency: float = 0.0) -> float:
        """Enqueue ``size_bytes`` of work arriving at ``now``; returns the
        completion time (arrival queueing + service + fixed latency)."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if now < 0:
            raise ValueError("now must be >= 0")
        start = max(now, self._free_at)
        service = size_bytes / self.rate
        self._free_at = start + service
        self.busy_time += service
        self.jobs_served += 1
        if self._pending is not None:
            # depth = jobs still in service/queue when this one arrives
            while self._pending and self._pending[0] <= now:
                self._pending.popleft()
            self._h_depth.observe(float(len(self._pending)))
            self._h_wait.observe(start - now)
            self._h_service.observe(service)
            self._pending.append(self._free_at)
        return self._free_at + extra_latency

    def fail(self, now: float, until: float) -> None:
        """Take the server offline for ``[now, until)`` (crash + restore).

        Work already queued and work arriving during the outage resumes
        *after* recovery — the FIFO queue survives (requests are retried /
        replayed against the restored server), it just stops draining.
        Overlapping outages merge; ``down_time`` counts the union.
        """
        if until < now:
            raise ValueError(f"outage must end after it starts ({until} < {now})")
        if now < 0:
            raise ValueError("now must be >= 0")
        self.outages += 1
        # Only the extension beyond any outage already in force counts.
        extension_start = max(now, self._down_until)
        if until > extension_start:
            self.down_time += until - extension_start
        self._down_until = max(self._down_until, until)
        self._free_at = max(self._free_at, self._down_until)

    def is_down(self, now: float) -> bool:
        """True while the server is crashed/restoring at time ``now``."""
        return now < self._down_until

    @property
    def down_until(self) -> float:
        """Recovery time of the outage in force (<= now when healthy)."""
        return self._down_until

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent serving."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return min(1.0, self.busy_time / horizon)

    def availability(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource was not in an outage."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return max(0.0, 1.0 - min(self.down_time, horizon) / horizon)


class Simulator:
    """Time-ordered event loop."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(
            self._queue, Event(self.now + delay, next(self._seq), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, Event(time, next(self._seq), callback))

    def run(self, until: float) -> None:
        """Process events in time order up to the horizon ``until``."""
        if until < self.now:
            raise ValueError("horizon is in the past")
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            self.now = event.time
            event.callback()
            self.events_processed += 1
        self.now = until
