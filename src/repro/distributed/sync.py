"""Functional gradient-synchronization algorithms (paper §III-A.6).

The paper's production training uses *asynchronous* synchronization:
Elastic-Averaging SGD (EASGD) between trainers and the dense parameter
server, and Hogwild!-style lock-free updates within a trainer.  These have
real model-quality consequences (§VI-C: fewer trainers and a higher sync
rate improved GPU model quality), so this module implements them
*functionally* — actual numpy training, not just timing models:

* :class:`EASGDTrainer` — K worker replicas elastically coupled to a center
  copy of the dense parameters; embedding tables are shared (they live on
  sparse parameter servers and are updated Hogwild-style by every worker).
* :class:`DelayedGradientTrainer` — Hogwild-as-staleness: gradients are
  computed on current parameters but applied ``staleness`` steps later,
  the standard sequential model of lock-free asynchrony.
* :class:`SyncSGDTrainer` — the fully-synchronous baseline: K workers'
  gradients are averaged every step (what a single GPU server with a big
  global batch effectively does).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.config import ModelConfig
from ..core.loss import BCEWithLogitsLoss
from ..core.model import Batch, DLRM
from ..core.optim import Adagrad
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ClusterStalledError",
    "EASGDConfig",
    "EASGDTrainer",
    "DelayedGradientTrainer",
    "SyncSGDTrainer",
    "ShadowSyncTrainer",
]


class ClusterStalledError(RuntimeError):
    """A fully-synchronous step cannot proceed: a worker is down.

    This is the functional face of the paper's resilience argument
    (§III-A.6): synchronous training blocks on every member, so a single
    failed worker stalls the whole cluster until it is restored, while the
    asynchronous trainers below keep making progress on survivors.
    """

    def __init__(self, dropped: list[int]) -> None:
        super().__init__(
            f"synchronous step requires all workers; worker(s) {dropped} are down"
        )
        self.dropped = dropped


@dataclass(frozen=True)
class EASGDConfig:
    """Elastic-averaging hyper-parameters.

    ``alpha`` is the elastic coupling strength (the paper's reference [57]
    uses ``alpha = beta / num_workers`` with ``beta ~= 0.9``); ``tau`` is
    the number of local steps between elastic syncs.
    """

    num_workers: int = 2
    alpha: float = 0.3
    tau: int = 4

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if not 0 < self.alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")


class EASGDTrainer:
    """K elastically-coupled worker replicas with shared embedding tables.

    Dense parameters: each worker holds its own copy; every ``tau`` steps
    worker ``i`` and the center ``x~`` exchange elastic forces::

        x_i <- x_i - alpha * (x_i - x~)
        x~  <- x~  + alpha * (x_i - x~)

    Embedding tables: one shared physical copy (the sparse-PS model); each
    worker's sparse gradients are applied directly — the Hogwild analogue
    for the sparse half.
    """

    def __init__(
        self,
        config: ModelConfig,
        easgd: EASGDConfig,
        lr: float = 0.01,
        rng: np.random.Generator | int | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.config = config
        self.easgd = easgd
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # One "reference" model owns the shared embedding tables and serves
        # as the center for evaluation.
        self.center_model = DLRM(config, rng=rng)
        self.center_state = self.center_model.get_dense_state()
        # The sparse optimizer state lives with the shared tables (as on a
        # sparse parameter server), not per worker.
        self.sparse_optimizer = Adagrad(
            [], self.center_model.embedding_tables(), lr=lr
        )
        self.workers: list[DLRM] = []
        self.optimizers: list[Adagrad] = []
        for _ in range(easgd.num_workers):
            worker = DLRM(config, rng=rng)
            # Share the embedding tables physically: all workers look up and
            # update the same arrays, like trainers hitting one sparse PS.
            worker.embeddings = self.center_model.embeddings
            worker._feature_order = self.center_model._feature_order
            worker.set_dense_state(self.center_state)
            self.workers.append(worker)
            self.optimizers.append(Adagrad(worker.dense_parameters(), [], lr=lr))
        self.loss = BCEWithLogitsLoss()
        self.steps = 0
        self.examples_seen = 0
        self._lr = lr
        #: Worker liveness: dropped workers take no steps and are skipped by
        #: the elastic sync until they rejoin (host failure + restore).
        self.active = [True] * easgd.num_workers
        self.drops = 0
        self.rejoins = 0

    # -- membership (worker dropout / rejoin, paper §III-A.6) ----------------

    def active_workers(self) -> list[int]:
        """Indices of workers currently participating."""
        return [i for i, up in enumerate(self.active) if up]

    def drop_worker(self, index: int) -> None:
        """A worker host fails: it stops contributing steps and elastic
        syncs.  Training continues on the survivors — the async-resilience
        property the paper's production design relies on."""
        if not 0 <= index < self.easgd.num_workers:
            raise ValueError(f"no worker {index}")
        if not self.active[index]:
            raise ValueError(f"worker {index} is already down")
        if sum(self.active) == 1:
            raise ValueError("cannot drop the last active worker")
        self.active[index] = False
        self.drops += 1

    def rejoin_worker(self, index: int) -> None:
        """The failed worker comes back: it restores its dense replica from
        the center copy (the EASGD 'checkpoint' every worker is elastically
        tied to) with fresh optimizer state, exactly as a restarted host
        re-registers with the dense parameter server."""
        if not 0 <= index < self.easgd.num_workers:
            raise ValueError(f"no worker {index}")
        if self.active[index]:
            raise ValueError(f"worker {index} is not down")
        worker = self.workers[index]
        worker.set_dense_state(self.center_state)
        self.optimizers[index] = Adagrad(worker.dense_parameters(), [], lr=self._lr)
        self.active[index] = True
        self.rejoins += 1

    def _elastic_sync(self, worker_idx: int) -> None:
        alpha = self.easgd.alpha
        worker = self.workers[worker_idx]
        for p, center in zip(worker.dense_parameters(), self.center_state):
            diff = p.value - center
            p.value -= alpha * diff
            center += alpha * diff

    def round(self, batches: list[Batch]) -> float:
        """One round: each *active* worker takes one local step on its own
        batch (one batch per active worker, in index order).

        Returns the mean worker loss.  Elastic syncs fire per-worker on
        their own step counters; dropped workers neither step nor sync.
        """
        live = self.active_workers()
        if len(batches) != len(live):
            raise ValueError(
                f"need {len(live)} batches (one per active worker), got {len(batches)}"
            )
        synced = (self.steps + 1) % self.easgd.tau == 0
        with self.tracer.span(
            "easgd_round",
            "iteration",
            step=self.steps,
            workers=len(live),
            tau=self.easgd.tau,
            synced=synced,
        ):
            losses = []
            for i, batch in zip(live, batches):
                worker, opt = self.workers[i], self.optimizers[i]
                with self.tracer.span("worker_step", "compute", worker=i, tid=i + 1):
                    opt.zero_grad()
                    logits = worker.forward(batch)
                    losses.append(self.loss.forward(logits, batch.labels))
                    worker.backward(self.loss.backward())
                    opt.step()
                    # Apply this worker's sparse gradients to the shared tables
                    # immediately — the Hogwild update sequence.
                    self.sparse_optimizer.step()
                self.examples_seen += batch.size
            self.steps += 1
            if self.steps % self.easgd.tau == 0:
                with self.tracer.span(
                    "elastic_sync", "comm", alpha=self.easgd.alpha
                ):
                    for i in live:
                        self._elastic_sync(i)
        return float(np.mean(losses))

    def train(self, batch_stream: Iterator[Batch], max_examples: int) -> list[float]:
        """Run rounds until the example budget is spent; returns loss history."""
        if max_examples < 1:
            raise ValueError("max_examples must be >= 1")
        history = []
        while self.examples_seen < max_examples:
            batches = [next(batch_stream) for _ in self.active_workers()]
            history.append(self.round(batches))
        return history

    def center_dlrm(self) -> DLRM:
        """The center model (shared embeddings + center dense parameters),
        which is what gets evaluated and deployed."""
        self.center_model.set_dense_state(self.center_state)
        return self.center_model


class DelayedGradientTrainer:
    """Hogwild-style asynchrony as bounded gradient staleness.

    Gradients are computed against the parameters of ``staleness`` steps ago
    (the sequential equivalent of lock-free threads racing on shared
    parameters).  ``staleness=0`` recovers plain sequential SGD.
    """

    def __init__(
        self,
        config: ModelConfig,
        staleness: int = 1,
        lr: float = 0.01,
        rng: np.random.Generator | int | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.model = DLRM(config, rng=rng)
        self.optimizer = Adagrad(
            self.model.dense_parameters(), self.model.embedding_tables(), lr=lr
        )
        self.staleness = staleness
        self.loss = BCEWithLogitsLoss()
        self._pending: deque[list[np.ndarray]] = deque()
        self._pending_sparse: deque[list] = deque()
        self.examples_seen = 0

    def step(self, batch: Batch) -> float:
        """Compute gradients now, apply the gradients from ``staleness``
        steps ago (bootstrapping applies nothing until the pipe fills)."""
        with self.tracer.span(
            "delayed_step",
            "iteration",
            staleness=self.staleness,
            pipe_fill=len(self._pending),
        ):
            return self._step(batch)

    def _step(self, batch: Batch) -> float:
        self.optimizer.zero_grad()
        logits = self.model.forward(batch)
        loss_value = self.loss.forward(logits, batch.labels)
        self.model.backward(self.loss.backward())
        # Capture freshly-computed gradients.
        dense_grads = [p.grad.copy() for p in self.model.dense_parameters()]
        sparse_grads = [t.pop_grad() for t in self.model.embedding_tables()]
        self._pending.append(dense_grads)
        self._pending_sparse.append(sparse_grads)
        if len(self._pending) > self.staleness:
            stale_dense = self._pending.popleft()
            stale_sparse = self._pending_sparse.popleft()
            for p, g in zip(self.model.dense_parameters(), stale_dense):
                p.grad[...] = g
            for table, g in zip(self.model.embedding_tables(), stale_sparse):
                if g is not None:
                    table.sparse_grads.append(g)
            self.optimizer.step()
        self.examples_seen += batch.size
        return loss_value

    def train(self, batch_stream: Iterator[Batch], max_examples: int) -> list[float]:
        if max_examples < 1:
            raise ValueError("max_examples must be >= 1")
        history = []
        while self.examples_seen < max_examples:
            history.append(self.step(next(batch_stream)))
        return history


class SyncSGDTrainer:
    """Fully-synchronous data parallelism: one model, gradients averaged
    over K per-worker batches each step (equivalent to a K-times-larger
    global batch — the GPU big-batch regime of Figure 15)."""

    def __init__(
        self,
        config: ModelConfig,
        num_workers: int = 1,
        lr: float = 0.01,
        rng: np.random.Generator | int | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.model = DLRM(config, rng=rng)
        self.optimizer = Adagrad(
            self.model.dense_parameters(), self.model.embedding_tables(), lr=lr
        )
        self.num_workers = num_workers
        self.loss = BCEWithLogitsLoss()
        self.examples_seen = 0
        #: Worker liveness.  Unlike EASGD, a synchronous step *requires*
        #: every member: stepping with any worker down raises
        #: :class:`ClusterStalledError` — the stall the paper's async design
        #: avoids.
        self.active = [True] * num_workers
        self.stalled_steps = 0

    # -- membership ----------------------------------------------------------

    def drop_worker(self, index: int) -> None:
        """A worker host fails.  The all-reduce now blocks: every
        subsequent :meth:`step` raises until :meth:`restore_worker`."""
        if not 0 <= index < self.num_workers:
            raise ValueError(f"no worker {index}")
        if not self.active[index]:
            raise ValueError(f"worker {index} is already down")
        self.active[index] = False

    def restore_worker(self, index: int) -> None:
        """The worker is restored (from checkpoint) and the barrier clears."""
        if not 0 <= index < self.num_workers:
            raise ValueError(f"no worker {index}")
        if self.active[index]:
            raise ValueError(f"worker {index} is not down")
        self.active[index] = True

    def dropped_workers(self) -> list[int]:
        return [i for i, up in enumerate(self.active) if not up]

    def step(self, batches: list[Batch]) -> float:
        dropped = self.dropped_workers()
        if dropped:
            self.stalled_steps += 1
            raise ClusterStalledError(dropped)
        if len(batches) != self.num_workers:
            raise ValueError(f"need {self.num_workers} batches, got {len(batches)}")
        with self.tracer.span(
            "sync_sgd_step", "iteration", workers=self.num_workers, staleness=0
        ):
            self.optimizer.zero_grad()
            losses = []
            for i, batch in enumerate(batches):
                with self.tracer.span("worker_step", "compute", worker=i, tid=i + 1):
                    logits = self.model.forward(batch)
                    losses.append(self.loss.forward(logits, batch.labels))
                    self.model.backward(self.loss.backward())
                self.examples_seen += batch.size
            # Average the summed gradients over workers.
            with self.tracer.span("gradient_average", "comm"):
                for p in self.model.dense_parameters():
                    p.grad /= self.num_workers
                for table in self.model.embedding_tables():
                    for g in table.sparse_grads:
                        g.values /= self.num_workers
                self.optimizer.step()
        return float(np.mean(losses))

    def train(self, batch_stream: Iterator[Batch], max_examples: int) -> list[float]:
        if max_examples < 1:
            raise ValueError("max_examples must be >= 1")
        history = []
        while self.examples_seen < max_examples:
            batches = [next(batch_stream) for _ in range(self.num_workers)]
            history.append(self.step(batches))
        return history


class ShadowSyncTrainer:
    """ShadowSync-style background synchronization (paper §III-A.6).

    Facebook's ShadowSync decouples synchronization from training: parameter
    averaging happens in the background ("in the shadow") so no worker ever
    blocks on it.  The sequential-equivalent model implemented here: every
    round all workers take a local step, and one worker per round —
    round-robin, i.e. each worker syncs every ``num_workers`` rounds —
    averages its dense parameters with the center copy.  Embedding tables
    are shared (sparse-PS style), as in :class:`EASGDTrainer`.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_workers: int = 2,
        mix: float = 0.5,
        lr: float = 0.01,
        rng: np.random.Generator | int | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if not 0 < mix <= 1:
            raise ValueError(f"mix must be in (0, 1], got {mix}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.num_workers = num_workers
        self.mix = mix
        self.center_model = DLRM(config, rng=rng)
        self.center_state = self.center_model.get_dense_state()
        self.sparse_optimizer = Adagrad([], self.center_model.embedding_tables(), lr=lr)
        self.workers: list[DLRM] = []
        self.optimizers: list[Adagrad] = []
        for _ in range(num_workers):
            worker = DLRM(config, rng=rng)
            worker.embeddings = self.center_model.embeddings
            worker._feature_order = self.center_model._feature_order
            worker.set_dense_state(self.center_state)
            self.workers.append(worker)
            self.optimizers.append(Adagrad(worker.dense_parameters(), [], lr=lr))
        self.loss = BCEWithLogitsLoss()
        self.rounds = 0
        self.examples_seen = 0

    def _background_sync(self, worker_idx: int) -> None:
        """Average one worker with the center (both move toward the mean)."""
        worker = self.workers[worker_idx]
        for p, center in zip(worker.dense_parameters(), self.center_state):
            mean = self.mix * p.value + (1.0 - self.mix) * center
            p.value[...] = mean
            center[...] = mean

    def round(self, batches: list[Batch]) -> float:
        if len(batches) != self.num_workers:
            raise ValueError(f"need {self.num_workers} batches, got {len(batches)}")
        with self.tracer.span(
            "shadow_sync_round",
            "iteration",
            round=self.rounds,
            workers=self.num_workers,
            synced_worker=self.rounds % self.num_workers,
        ):
            losses = []
            for i, (worker, opt, batch) in enumerate(
                zip(self.workers, self.optimizers, batches)
            ):
                with self.tracer.span("worker_step", "compute", worker=i, tid=i + 1):
                    opt.zero_grad()
                    logits = worker.forward(batch)
                    losses.append(self.loss.forward(logits, batch.labels))
                    worker.backward(self.loss.backward())
                    opt.step()
                    self.sparse_optimizer.step()
                self.examples_seen += batch.size
            # One background sync per round, round-robin over workers.
            with self.tracer.span("background_sync", "comm", mix=self.mix):
                self._background_sync(self.rounds % self.num_workers)
            self.rounds += 1
        return float(np.mean(losses))

    def train(self, batch_stream: Iterator[Batch], max_examples: int) -> list[float]:
        if max_examples < 1:
            raise ValueError("max_examples must be >= 1")
        history = []
        while self.examples_seen < max_examples:
            batches = [next(batch_stream) for _ in range(self.num_workers)]
            history.append(self.round(batches))
        return history

    def center_dlrm(self) -> DLRM:
        self.center_model.set_dense_state(self.center_state)
        return self.center_model
