"""Event-level simulation of one GPU training server (Big Basin / Zion).

Complements the analytical model in :mod:`repro.perf.pipeline` with an
explicit per-iteration event schedule over 8 GPU resources, the host CPUs,
PCIe, and the GPU interconnect:

    host input prep -> embedding lookups (HBM, replicated + sharded)
    -> all-to-all exchange -> dense fwd/bwd -> EASGD sync -> optimizer

Each phase occupies its resource for the duration the operator costs imply;
GPUs proceed in lockstep (synchronous data parallelism), so the iteration
advances when the slowest GPU finishes — making load imbalance and
straggler effects emergent rather than formulaic.  Used to cross-validate
the analytical GPU model and to study per-GPU utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfig
from ..hardware.device import OpCost, op_time
from ..hardware.interconnect import alltoall_time, transfer_time
from ..hardware.specs import PlatformSpec
from ..obs.tracer import NullTracer, Tracer
from ..perf import ops
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.pipeline import _aggregate_cpu_device, _dense_compute_cost
from ..placement.strategies import LocationKind, PlacementPlan

__all__ = ["GpuServerSimResult", "simulate_gpu_server"]


@dataclass
class GpuServerSimResult:
    """Outcome of an event-simulated GPU-server training window."""

    throughput: float
    iterations: int
    sim_time: float
    gpu_busy_fraction: list[float] = field(default_factory=list)
    host_busy_fraction: float = 0.0
    mean_iteration_s: float = 0.0

    @property
    def gpu_imbalance(self) -> float:
        """max/mean busy fraction across GPUs (1.0 == perfectly balanced)."""
        busy = np.array(self.gpu_busy_fraction)
        if busy.mean() == 0:
            return 1.0
        return float(busy.max() / busy.mean())


def _per_gpu_emb_times(
    model: ModelConfig,
    plan: PlacementPlan,
    platform: PlatformSpec,
    batch: int,
    calib: Calibration,
    jitter: np.ndarray,
) -> list[float]:
    """HBM embedding time per GPU: replicated work (local batch) plus this
    GPU's share of sharded-table lookups."""
    gpu = platform.gpu
    n = platform.num_gpus
    lookup = ops.embedding_lookup_cost(model, batch)
    update = ops.embedding_update_cost(model, batch)
    total = lookup + update
    lk_total = max(model.mean_total_lookups, 1e-9)
    repl_lk = 0.0
    per_gpu_lk = [0.0] * n
    for spec in model.tables:
        for shard in plan.shards_for(spec.name):
            if shard.replicated:
                repl_lk += spec.effective_mean_lookups * shard.row_fraction
            elif shard.location.kind is LocationKind.GPU:
                per_gpu_lk[shard.location.index % n] += (
                    spec.effective_mean_lookups * shard.row_fraction
                )
    times = []
    for g in range(n):
        frac = repl_lk / lk_total / n + per_gpu_lk[g] / lk_total
        cost = OpCost(
            flops=total.flops * frac,
            bytes=total.bytes * frac,
            kernels=max(1, int(math.ceil(2 * model.num_sparse / (8.0 * n)))),
        )
        times.append(op_time(gpu, cost) * float(jitter[g]))
    return times


def simulate_gpu_server(
    model: ModelConfig,
    batch: int,
    platform: PlatformSpec,
    plan: PlacementPlan,
    num_iterations: int = 50,
    gpu_jitter_sigma: float = 0.0,
    seed: int = 0,
    calib: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | NullTracer | None = None,
) -> GpuServerSimResult:
    """Run ``num_iterations`` lockstep iterations on one GPU server.

    Phases are barrier-synchronized (as NCCL collectives impose): the
    iteration time is ``host_input + max_g(emb_g) + alltoall + dense +
    sync``, with per-GPU log-normal jitter on compute when
    ``gpu_jitter_sigma > 0``.

    ``tracer`` (optional, default off) receives one ``iteration`` span per
    simulated iteration with per-phase child spans and straggler attributes
    (which GPU gated each barrier); tracing never touches the simulated
    numbers.
    """
    if num_iterations < 1:
        raise ValueError("num_iterations must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    rng = np.random.default_rng(seed)
    n = platform.num_gpus
    gpu = platform.gpu
    b_gpu = max(1, batch // n)

    host = _aggregate_cpu_device(platform, calib)
    host_input = (
        model.num_sparse * calib.host_input_per_table_s
        + ops.lookup_request_bytes(model, batch)
        / (platform.pcie.bandwidth * platform.num_cpu_sockets)
    )
    dense_cost = _dense_compute_cost(model, b_gpu)
    pooled = ops.pooled_embedding_bytes(model, batch)
    tbl_gpu_frac = 0.0
    for spec in model.tables:
        for shard in plan.shards_for(spec.name):
            if not shard.replicated and shard.location.kind is LocationKind.GPU:
                tbl_gpu_frac += shard.row_fraction / model.num_sparse
    if platform.gpu_interconnect is not None:
        a2a = alltoall_time(platform.gpu_interconnect, tbl_gpu_frac * pooled / n, n)
        if not platform.gpu_peer_direct:
            a2a += 2 * model.num_sparse * tbl_gpu_frac * platform.gpu_interconnect.latency_s
    else:
        a2a = 2.0 * transfer_time(platform.pcie, tbl_gpu_frac * pooled / n)
    a2a *= 2.0 * calib.collective_inefficiency
    param_bytes = ops.dense_param_bytes(model)
    if platform.gpu_interconnect is not None and platform.gpu_peer_direct:
        from ..hardware.interconnect import allreduce_time

        sync = allreduce_time(platform.gpu_interconnect, param_bytes, n)
    else:
        sync = 2.0 * transfer_time(platform.pcie, param_bytes)
    sync *= (
        calib.collective_inefficiency
        * (1.0 - calib.async_overlap_fraction)
        / calib.easgd_sync_period
    )

    gpu_busy = np.zeros(n)
    host_busy = 0.0
    now = 0.0
    iteration_times = []
    trace_on = tracer is not None and tracer.enabled
    for it in range(num_iterations):
        start = now
        # host input stage (serial before GPU work of this iteration)
        host_busy += host_input
        now += calib.gpu_iteration_overhead_s + host_input
        jitter = (
            rng.lognormal(0.0, gpu_jitter_sigma, size=n)
            if gpu_jitter_sigma > 0
            else np.ones(n)
        )
        emb_times = _per_gpu_emb_times(model, plan, platform, batch, calib, jitter)
        dense_times = [op_time(gpu, dense_cost) * float(j) for j in jitter]
        per_gpu = [e + d for e, d in zip(emb_times, dense_times)]
        gpu_busy += np.array(per_gpu)
        # barrier at the all-to-all and after dense compute
        now += max(emb_times) + a2a + max(dense_times) + sync
        iteration_times.append(now - start)
        if trace_on:
            straggler = int(np.argmax(jitter))
            parent = tracer.begin(
                f"gpu_iteration_{it}",
                "iteration",
                t0=start,
                iteration=it,
                straggler_gpu=straggler,
                jitter_max=float(jitter.max()),
                imbalance=float(max(per_gpu) / max(np.mean(per_gpu), 1e-12)),
            )
            t = start
            tracer.record(
                "host_input", "memory", t0=t,
                duration=calib.gpu_iteration_overhead_s + host_input,
            )
            t += calib.gpu_iteration_overhead_s + host_input
            tracer.record(
                "emb_lookup_barrier", "memory", t0=t, duration=max(emb_times),
                straggler_gpu=int(np.argmax(emb_times)),
            )
            for g, e in enumerate(emb_times):
                tracer.record("emb_lookup", "memory", t0=t, duration=e, tid=g + 1, gpu=g)
            t += max(emb_times)
            tracer.record("emb_alltoall", "comm", t0=t, duration=a2a)
            t += a2a
            tracer.record(
                "dense_compute_barrier", "compute", t0=t, duration=max(dense_times),
                straggler_gpu=int(np.argmax(dense_times)),
            )
            for g, d in enumerate(dense_times):
                tracer.record("dense_compute", "compute", t0=t, duration=d, tid=g + 1, gpu=g)
            t += max(dense_times)
            tracer.record("easgd_sync", "comm", t0=t, duration=sync)
            tracer.end(parent, t1=now)
    sim_time = now
    return GpuServerSimResult(
        throughput=num_iterations * batch / sim_time,
        iterations=num_iterations,
        sim_time=sim_time,
        gpu_busy_fraction=[float(b / sim_time) for b in gpu_busy],
        host_busy_fraction=float(host_busy / sim_time),
        mean_iteration_s=float(np.mean(iteration_times)),
    )
