"""Event-level simulation of the production CPU training pipeline (Figure 4).

Each trainer loops: local compute (Hogwild over the MLPs) -> embedding
lookup round trip against the sparse parameter servers -> periodic EASGD
exchange with the dense parameter server.  Requests queue at per-server NIC
and memory resources, so contention, imbalance, and utilization emerge from
the event dynamics rather than closed-form caps.

This cross-validates the analytical model in :mod:`repro.perf` and produces
the per-run utilization samples behind Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfig
from ..hardware.specs import DUAL_SOCKET_CPU, PlatformSpec
from ..perf import ops
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.pipeline import _aggregate_cpu_device, _cache_penalty, _dense_compute_cost
from ..hardware.device import op_time
from ..obs.registry import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer
from .simulator import Resource, Simulator

__all__ = ["ClusterConfig", "ClusterResult", "simulate_cpu_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """One CPU training cluster: server counts, batch size, jitter."""

    num_trainers: int
    num_sparse_ps: int
    num_dense_ps: int
    batch_per_trainer: int = 200
    platform: PlatformSpec = DUAL_SOCKET_CPU
    #: Multiplicative log-normal jitter applied per server to compute and
    #: service rates — the system-level variability the paper cites ("the
    #: tail at scale") on top of configuration differences.
    jitter_sigma: float = 0.0
    #: Straggler injection: this fraction of sparse parameter servers run
    #: ``straggler_slowdown``x slower (degraded host, noisy neighbor).
    #: Because every iteration waits for the slowest PS response, a single
    #: straggler gates the whole cluster — "the tail at scale".
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 4.0
    #: Reader tier: ``None`` models the paper's norm ("we typically scale up
    #: reader servers such that data reading is not a bottleneck",
    #: §IV-B.2).  A number models that many reader servers; trainers stall
    #: when the tier cannot keep up.
    num_readers: int | None = None
    reader_examples_per_s: float = 150_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.num_trainers, self.num_sparse_ps, self.num_dense_ps) < 1:
            raise ValueError("server counts must be >= 1")
        if self.batch_per_trainer < 1:
            raise ValueError("batch_per_trainer must be >= 1")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        if not 0 <= self.straggler_fraction <= 1:
            raise ValueError("straggler_fraction must be in [0, 1]")
        if self.straggler_slowdown < 1:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.num_readers is not None and self.num_readers < 1:
            raise ValueError("num_readers must be >= 1 when set")
        if self.reader_examples_per_s <= 0:
            raise ValueError("reader_examples_per_s must be positive")


@dataclass
class ClusterResult:
    """Aggregated outcome of one simulated training window."""

    throughput: float
    sim_time: float
    iterations_completed: int
    trainer_cpu_utilization: list[float] = field(default_factory=list)
    trainer_nic_utilization: list[float] = field(default_factory=list)
    sparse_ps_mem_utilization: list[float] = field(default_factory=list)
    sparse_ps_nic_utilization: list[float] = field(default_factory=list)
    dense_ps_nic_utilization: list[float] = field(default_factory=list)

    def utilization_summary(self) -> dict[str, float]:
        return {
            "trainer_cpu": float(np.mean(self.trainer_cpu_utilization)),
            "trainer_nic": float(np.mean(self.trainer_nic_utilization)),
            "sparse_ps_mem": float(np.mean(self.sparse_ps_mem_utilization)),
            "sparse_ps_nic": float(np.mean(self.sparse_ps_nic_utilization)),
            "dense_ps_nic": float(np.mean(self.dense_ps_nic_utilization)),
        }


class _Trainer:
    """State machine: compute -> fan out PS requests -> wait -> repeat."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        cluster: "_Cluster",
        compute_time: float,
        rng: np.random.Generator,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        self.index = index
        self.sim = sim
        self.cluster = cluster
        self.compute_time = compute_time
        self.rng = rng
        self.iterations = 0
        self.busy_compute = 0.0
        self.tracer = tracer
        self._iter_start = 0.0
        self._compute_end = 0.0

    def start(self) -> None:
        # Desynchronize trainer start times.
        self.sim.schedule(float(self.rng.uniform(0, self.compute_time)), self.begin_iteration)

    def begin_iteration(self) -> None:
        # Acquire the next mini-batch from the reader tier first: trainers
        # stall here when readers are under-provisioned (§IV-B.2).
        self._iter_start = self.sim.now
        wait = 0.0
        if self.cluster.reader is not None:
            ready = self.cluster.reader.submit(
                self.sim.now, float(self.cluster.cfg.batch_per_trainer)
            )
            wait = max(0.0, ready - self.sim.now)
        jittered = self.compute_time * float(self.rng.lognormal(0.0, 0.05))
        self.busy_compute += jittered
        self._compute_end = self.sim.now + wait + jittered
        self.sim.schedule(wait + jittered, self.issue_lookups)

    def issue_lookups(self) -> None:
        c = self.cluster
        now = self.sim.now
        # Shard the lookup work round-robin across sparse PS; the iteration
        # resumes when the slowest response lands.
        per_ps_req = c.req_bytes / c.cfg.num_sparse_ps
        per_ps_resp = c.pooled_bytes / c.cfg.num_sparse_ps
        per_ps_mem = c.ps_mem_bytes / c.cfg.num_sparse_ps
        latest = now
        for ps_nic, ps_mem in zip(c.sparse_nic, c.sparse_mem):
            t1 = ps_nic.submit(now, per_ps_req + 2.0 * per_ps_resp, c.nic_latency)
            t2 = ps_mem.submit(t1, per_ps_mem)
            latest = max(latest, t2)
        # Trainer-side NIC serializes its own traffic too.
        t_self = self.cluster.trainer_nic[self.index].submit(
            now, c.req_bytes + 2.0 * c.pooled_bytes, c.nic_latency
        )
        latest = max(latest, t_self)
        # Periodic EASGD exchange with a dense PS (async; charge the PS).
        self.iterations += 1
        if self.iterations % c.easgd_tau == 0:
            dense = c.dense_nic[self.index % c.cfg.num_dense_ps]
            dense.submit(now, 2.0 * c.dense_param_bytes, c.nic_latency)
        self.sim.schedule_at(latest, self.finish_iteration)

    def finish_iteration(self) -> None:
        self.cluster.completed_examples += self.cluster.cfg.batch_per_trainer
        self.cluster.completed_iterations += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            now = self.sim.now
            t0 = self._iter_start
            parent = tracer.begin(
                f"trainer{self.index}_iteration",
                "iteration",
                t0=t0,
                tid=self.index,
                trainer=self.index,
                iteration=self.iterations,
                straggler_ps=self.cluster.num_stragglers,
            )
            tracer.record(
                "compute", "compute", t0=t0, duration=self._compute_end - t0, tid=self.index
            )
            tracer.record(
                "ps_roundtrip",
                "comm",
                t0=self._compute_end,
                duration=max(0.0, now - self._compute_end),
                tid=self.index,
                sparse_ps=self.cluster.cfg.num_sparse_ps,
            )
            tracer.end(parent, t1=now)
        self.begin_iteration()


class _Cluster:
    """Owns the resources and scalar per-iteration volumes."""

    def __init__(
        self,
        model: ModelConfig,
        cfg: ClusterConfig,
        calib: Calibration,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.cfg = cfg
        self.registry = registry
        rng = np.random.default_rng(cfg.seed)
        b = cfg.batch_per_trainer

        cpu = _aggregate_cpu_device(cfg.platform, calib)
        dense_cost = _dense_compute_cost(model, b)
        self.compute_time = op_time(cpu, dense_cost) * _cache_penalty(model, b, calib)
        self.compute_time += calib.cpu_iteration_overhead_s

        self.req_bytes = ops.lookup_request_bytes(model, b)
        self.pooled_bytes = ops.pooled_embedding_bytes(model, b)
        lookup = ops.embedding_lookup_cost(model, b)
        update = ops.embedding_update_cost(model, b)
        self.ps_mem_bytes = lookup.bytes + update.bytes
        self.dense_param_bytes = ops.dense_param_bytes(model)
        self.easgd_tau = max(1, int(calib.easgd_sync_period))
        self.nic_latency = cfg.platform.nic.latency_s

        def jit(base: float) -> float:
            if cfg.jitter_sigma == 0:
                return base
            return base * float(rng.lognormal(0.0, cfg.jitter_sigma))

        nic_rate = cfg.platform.nic.bandwidth
        mem_rate = cpu.effective_bandwidth * calib.ps_service_efficiency
        self.trainer_nic = [
            Resource(f"trainer{i}/nic", jit(nic_rate), registry=registry)
            for i in range(cfg.num_trainers)
        ]
        # Straggler injection: the first straggler_fraction of sparse PS are
        # uniformly slowed (memory and NIC service).
        num_stragglers = int(round(cfg.straggler_fraction * cfg.num_sparse_ps))
        self.num_stragglers = num_stragglers

        def straggle(i: int, rate: float) -> float:
            return rate / cfg.straggler_slowdown if i < num_stragglers else rate

        self.sparse_nic = [
            Resource(
                f"sps{i}/nic",
                jit(straggle(i, nic_rate * calib.ps_service_efficiency)),
                registry=registry,
            )
            for i in range(cfg.num_sparse_ps)
        ]
        self.sparse_mem = [
            Resource(f"sps{i}/mem", jit(straggle(i, mem_rate)), registry=registry)
            for i in range(cfg.num_sparse_ps)
        ]
        self.dense_nic = [
            Resource(
                f"dps{i}/nic",
                jit(nic_rate * calib.ps_service_efficiency),
                registry=registry,
            )
            for i in range(cfg.num_dense_ps)
        ]
        # The reader tier serves whole examples; rate is examples/second.
        self.reader = (
            Resource(
                "readers",
                cfg.num_readers * cfg.reader_examples_per_s,
                registry=registry,
            )
            if cfg.num_readers is not None
            else None
        )
        self._rng = rng
        self.completed_examples = 0
        self.completed_iterations = 0


def simulate_cpu_cluster(
    model: ModelConfig,
    cfg: ClusterConfig,
    horizon_s: float = 2.0,
    calib: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | NullTracer | None = None,
    registry: MetricsRegistry | None = None,
) -> ClusterResult:
    """Run the event simulation for ``horizon_s`` simulated seconds.

    ``tracer`` (optional) receives one ``iteration`` span per completed
    trainer iteration on the simulated timeline, with ``compute`` and
    ``ps_roundtrip`` child spans; ``registry`` (optional) receives
    per-resource queue-depth/wait/busy histograms from every
    :class:`~repro.distributed.simulator.Resource`.  Both default to off and
    leave the simulation numerically untouched.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    cluster = _Cluster(model, cfg, calib, registry=registry)
    sim = Simulator()
    trainers = [
        _Trainer(i, sim, cluster, cluster.compute_time, cluster._rng, tracer=tracer)
        for i in range(cfg.num_trainers)
    ]
    for t in trainers:
        t.start()
    sim.run(horizon_s)

    return ClusterResult(
        throughput=cluster.completed_examples / horizon_s,
        sim_time=horizon_s,
        iterations_completed=cluster.completed_iterations,
        trainer_cpu_utilization=[
            min(1.0, t.busy_compute / horizon_s) for t in trainers
        ],
        trainer_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.trainer_nic
        ],
        sparse_ps_mem_utilization=[
            r.utilization(horizon_s) for r in cluster.sparse_mem
        ],
        sparse_ps_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.sparse_nic
        ],
        dense_ps_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.dense_nic
        ],
    )
