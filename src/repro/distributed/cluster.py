"""Event-level simulation of the production CPU training pipeline (Figure 4).

Each trainer loops: local compute (Hogwild over the MLPs) -> embedding
lookup round trip against the sparse parameter servers -> periodic EASGD
exchange with the dense parameter server.  Requests queue at per-server NIC
and memory resources, so contention, imbalance, and utilization emerge from
the event dynamics rather than closed-form caps.

This cross-validates the analytical model in :mod:`repro.perf` and produces
the per-run utilization samples behind Figure 5.

Fault tolerance (paper §III-A.6, §IV-B): when a
:class:`~repro.resilience.FaultPlan` is attached, trainers and parameter
servers crash (exponential MTBF or scripted), requests drop in flight and
are retried with capped exponential backoff + deadline
(:class:`~repro.resilience.RetryPolicy`), and crashed servers come back
after a restore delay priced from checkpoint bytes over the platform's
NIC/memory bandwidth (:mod:`repro.resilience.recovery`).  The two
synchronization modes recover differently, reproducing the paper's
async-resilience argument:

* ``sync_mode="async"`` (EASGD/Hogwild, the production default): the
  cluster re-shards lookups across surviving sparse PS and keeps training;
  a crash loses only the failed shard's work since the last checkpoint.
* ``sync_mode="sync"`` (fully synchronous): any failure stalls the whole
  cluster until recovery and rolls every trainer back to the last
  checkpoint.

The result carries **goodput** (throughput net of lost + recovered work),
availability, and retry/recovery telemetry via
:class:`~repro.resilience.GoodputLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfig
from ..hardware.specs import DUAL_SOCKET_CPU, PlatformSpec
from ..perf import ops
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.pipeline import _aggregate_cpu_device, _cache_penalty, _dense_compute_cost
from ..hardware.device import op_time
from ..obs.registry import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer
from ..resilience import (
    ComponentKind,
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    GoodputLedger,
    RetryPolicy,
    checkpoint_write_time_s,
    model_checkpoint_bytes,
    restore_time_s,
)
from .simulator import Resource, Simulator

__all__ = ["SyncMode", "ClusterConfig", "ClusterResult", "simulate_cpu_cluster"]


class SyncMode:
    """Cluster-wide synchronization discipline (string constants)."""

    ASYNC = "async"  #: EASGD + Hogwild — continues on surviving members.
    SYNC = "sync"  #: fully synchronous — stalls and rolls back on failure.

    ALL = (ASYNC, SYNC)


@dataclass(frozen=True)
class ClusterConfig:
    """One CPU training cluster: server counts, batch size, jitter."""

    num_trainers: int
    num_sparse_ps: int
    num_dense_ps: int
    batch_per_trainer: int = 200
    platform: PlatformSpec = DUAL_SOCKET_CPU
    #: Multiplicative log-normal jitter applied per server to compute and
    #: service rates — the system-level variability the paper cites ("the
    #: tail at scale") on top of configuration differences.
    jitter_sigma: float = 0.0
    #: Straggler injection: this fraction of sparse parameter servers run
    #: ``straggler_slowdown``x slower (degraded host, noisy neighbor).
    #: Because every iteration waits for the slowest PS response, a single
    #: straggler gates the whole cluster — "the tail at scale".
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 4.0
    #: Reader tier: ``None`` models the paper's norm ("we typically scale up
    #: reader servers such that data reading is not a bottleneck",
    #: §IV-B.2).  A number models that many reader servers; trainers stall
    #: when the tier cannot keep up.
    num_readers: int | None = None
    reader_examples_per_s: float = 150_000.0
    seed: int = 0
    #: Synchronization discipline under failures: ``"async"`` continues on
    #: surviving members, ``"sync"`` stalls and rolls back (§III-A.6).
    sync_mode: str = SyncMode.ASYNC
    #: Optional failure schedule; ``None`` reproduces the failure-free
    #: simulation bit-for-bit.
    fault_plan: FaultPlan | None = None
    #: Retry discipline for dropped/timed-out PS requests.
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    #: Seconds of simulated time between cluster-wide checkpoints; ``None``
    #: disables periodic checkpoints (a failure then rolls back to t=0).
    checkpoint_interval_s: float | None = None

    def __post_init__(self) -> None:
        if min(self.num_trainers, self.num_sparse_ps, self.num_dense_ps) < 1:
            raise ValueError("server counts must be >= 1")
        if self.batch_per_trainer < 1:
            raise ValueError("batch_per_trainer must be >= 1")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        if not 0 <= self.straggler_fraction <= 1:
            raise ValueError("straggler_fraction must be in [0, 1]")
        if self.straggler_slowdown < 1:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.num_readers is not None and self.num_readers < 1:
            raise ValueError("num_readers must be >= 1 when set")
        if self.reader_examples_per_s <= 0:
            raise ValueError("reader_examples_per_s must be positive")
        if self.sync_mode not in SyncMode.ALL:
            raise ValueError(
                f"sync_mode must be one of {SyncMode.ALL}, got {self.sync_mode!r}"
            )
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive when set")


@dataclass
class ClusterResult:
    """Aggregated outcome of one simulated training window."""

    throughput: float
    sim_time: float
    iterations_completed: int
    trainer_cpu_utilization: list[float] = field(default_factory=list)
    trainer_nic_utilization: list[float] = field(default_factory=list)
    sparse_ps_mem_utilization: list[float] = field(default_factory=list)
    sparse_ps_nic_utilization: list[float] = field(default_factory=list)
    dense_ps_nic_utilization: list[float] = field(default_factory=list)
    # -- resilience outcome (== throughput-equivalent when failure-free) ----
    #: useful examples/s: completed minus work lost to rollbacks.
    goodput: float = 0.0
    #: fraction of cluster capacity available over the window (1.0 = no
    #: stalls, no component downtime).
    availability: float = 1.0
    useful_examples: int = 0
    lost_examples: int = 0
    crashes: int = 0
    retries: int = 0
    requests_dropped: int = 0
    failed_iterations: int = 0
    recovery_time: float = 0.0
    stall_time: float = 0.0
    checkpoint_time: float = 0.0
    checkpoints_taken: int = 0
    #: the concrete failures injected (kind, index, time), for reporting.
    fault_events: list = field(default_factory=list)

    def utilization_summary(self) -> dict[str, float]:
        return {
            "trainer_cpu": float(np.mean(self.trainer_cpu_utilization)),
            "trainer_nic": float(np.mean(self.trainer_nic_utilization)),
            "sparse_ps_mem": float(np.mean(self.sparse_ps_mem_utilization)),
            "sparse_ps_nic": float(np.mean(self.sparse_ps_nic_utilization)),
            "dense_ps_nic": float(np.mean(self.dense_ps_nic_utilization)),
        }

    def resilience_summary(self) -> dict[str, float]:
        """Headline fault-tolerance numbers (JSON-friendly)."""
        return {
            "goodput": float(self.goodput),
            "throughput": float(self.throughput),
            "availability": float(self.availability),
            "useful_examples": float(self.useful_examples),
            "lost_examples": float(self.lost_examples),
            "crashes": float(self.crashes),
            "retries": float(self.retries),
            "requests_dropped": float(self.requests_dropped),
            "failed_iterations": float(self.failed_iterations),
            "recovery_time_s": float(self.recovery_time),
            "stall_time_s": float(self.stall_time),
            "checkpoint_time_s": float(self.checkpoint_time),
            "checkpoints_taken": float(self.checkpoints_taken),
        }


class _Trainer:
    """State machine: compute -> fan out PS requests -> wait -> repeat."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        cluster: "_Cluster",
        compute_time: float,
        rng: np.random.Generator,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        self.index = index
        self.sim = sim
        self.cluster = cluster
        self.compute_time = compute_time
        self.rng = rng
        self.iterations = 0
        self.busy_compute = 0.0
        self.tracer = tracer
        self._iter_start = 0.0
        self._compute_end = 0.0
        # Crash/rollback bookkeeping: the trainer's own incarnation number
        # (bumped when *it* crashes) and the cluster rollback generation it
        # started the current iteration under.  A mismatch at any phase
        # means the in-flight iteration's work is void.
        self.epoch = 0
        self.down_until = 0.0
        self._iter_epoch = 0
        self._iter_generation = 0

    def start(self) -> None:
        # Desynchronize trainer start times.
        self.sim.schedule(float(self.rng.uniform(0, self.compute_time)), self.begin_iteration)

    # -- fault plumbing -----------------------------------------------------

    def _abandoned(self) -> bool:
        """True when the in-flight iteration must be thrown away (the
        trainer crashed mid-iteration, or a sync-mode rollback voided it).
        Reschedules a fresh iteration after the blocking condition."""
        c = self.cluster
        now = self.sim.now
        resume = now
        void = False
        if self._iter_epoch != self.epoch or now < self.down_until:
            void = True
            resume = max(resume, self.down_until)
        if self._iter_generation != c.generation:
            void = True
            resume = max(resume, c.stall_until)
        if not void:
            return False
        self.sim.schedule_at(max(resume, now), self.begin_iteration)
        return True

    def crash(self, restore_until: float) -> None:
        """Kill this trainer; it rejoins (from checkpoint) at ``restore_until``."""
        self.epoch += 1
        self.down_until = max(self.down_until, restore_until)

    # -- iteration phases ---------------------------------------------------

    def begin_iteration(self) -> None:
        c = self.cluster
        now = self.sim.now
        # Respect trainer downtime and any cluster-wide stall (sync-mode
        # recovery or a checkpoint write) before starting new work.
        barrier = max(self.down_until, c.stall_until)
        if now < barrier:
            self.sim.schedule_at(barrier, self.begin_iteration)
            return
        self._iter_epoch = self.epoch
        self._iter_generation = c.generation
        # Acquire the next mini-batch from the reader tier first: trainers
        # stall here when readers are under-provisioned (§IV-B.2).
        self._iter_start = now
        wait = 0.0
        if c.reader is not None:
            ready = c.reader.submit(now, float(c.cfg.batch_per_trainer))
            wait = max(0.0, ready - now)
        jittered = self.compute_time * float(self.rng.lognormal(0.0, 0.05))
        self.busy_compute += jittered
        self._compute_end = now + wait + jittered
        self.sim.schedule(wait + jittered, self.issue_lookups)

    def _request_delay(self) -> float | None:
        """Pre-service delay from transient request drops: each dropped
        attempt burns its deadline plus backoff-with-jitter before the
        retry.  Returns ``None`` when every attempt drops (request failed)."""
        c = self.cluster
        if c.injector is None or c.cfg.fault_plan.drop_probability == 0.0:
            return 0.0
        delay = 0.0
        failures = 0
        retry = c.cfg.retry
        while c.injector.drops_request():
            failures += 1
            c.ledger.requests_dropped += 1
            if failures >= retry.max_attempts:
                return None
            c.ledger.retries += 1
            delay += retry.deadline_s + retry.backoff_s(failures, self.rng)
        return delay

    def issue_lookups(self) -> None:
        if self._abandoned():
            return
        c = self.cluster
        now = self.sim.now
        # Shard the lookup work across the *reachable* sparse PS; async
        # clusters route around crashed shards, sync clusters always target
        # all of them (the global stall holds trainers back instead).
        if c.cfg.sync_mode == SyncMode.ASYNC:
            live = c.live_sparse(now)
            if not live:
                # Every shard is down: wait for the earliest recovery.
                resume = min(r.down_until for r in c.sparse_nic)
                self.sim.schedule_at(max(resume, now), self.issue_lookups)
                return
        else:
            live = list(range(c.cfg.num_sparse_ps))
        shards = len(live)
        per_ps_req = c.req_bytes / shards
        per_ps_resp = c.pooled_bytes / shards
        per_ps_mem = c.ps_mem_bytes / shards
        latest = now
        for i in live:
            delay = self._request_delay()
            if delay is None:
                # Retries exhausted: the iteration fails outright; the
                # trainer re-reads its batch and starts over.
                c.ledger.failed_iterations += 1
                self.sim.schedule(c.cfg.retry.deadline_s, self.begin_iteration)
                return
            arrival = now + delay
            t1 = c.sparse_nic[i].submit(arrival, per_ps_req + 2.0 * per_ps_resp, c.nic_latency)
            t2 = c.sparse_mem[i].submit(t1, per_ps_mem)
            latest = max(latest, t2)
        # Trainer-side NIC serializes its own traffic too.
        t_self = c.trainer_nic[self.index].submit(
            now, c.req_bytes + 2.0 * c.pooled_bytes, c.nic_latency
        )
        latest = max(latest, t_self)
        # Periodic EASGD exchange with a dense PS (async; charge the PS).
        self.iterations += 1
        if self.iterations % c.easgd_tau == 0:
            dense = c.dense_nic[self.index % c.cfg.num_dense_ps]
            dense.submit(now, 2.0 * c.dense_param_bytes, c.nic_latency)
        self.sim.schedule_at(latest, self.finish_iteration)

    def finish_iteration(self) -> None:
        if self._abandoned():
            return
        cluster = self.cluster
        cluster.ledger.credit(cluster.cfg.batch_per_trainer)
        cluster.completed_iterations += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            now = self.sim.now
            t0 = self._iter_start
            parent = tracer.begin(
                f"trainer{self.index}_iteration",
                "iteration",
                t0=t0,
                tid=self.index,
                trainer=self.index,
                iteration=self.iterations,
                straggler_ps=self.cluster.num_stragglers,
            )
            tracer.record(
                "compute", "compute", t0=t0, duration=self._compute_end - t0, tid=self.index
            )
            tracer.record(
                "ps_roundtrip",
                "comm",
                t0=self._compute_end,
                duration=max(0.0, now - self._compute_end),
                tid=self.index,
                sparse_ps=self.cluster.cfg.num_sparse_ps,
            )
            tracer.end(parent, t1=now)
        self.begin_iteration()


class _Cluster:
    """Owns the resources and scalar per-iteration volumes."""

    def __init__(
        self,
        model: ModelConfig,
        cfg: ClusterConfig,
        calib: Calibration,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.cfg = cfg
        self.registry = registry
        rng = np.random.default_rng(cfg.seed)
        b = cfg.batch_per_trainer

        cpu = _aggregate_cpu_device(cfg.platform, calib)
        dense_cost = _dense_compute_cost(model, b)
        self.compute_time = op_time(cpu, dense_cost) * _cache_penalty(model, b, calib)
        self.compute_time += calib.cpu_iteration_overhead_s

        self.req_bytes = ops.lookup_request_bytes(model, b)
        self.pooled_bytes = ops.pooled_embedding_bytes(model, b)
        lookup = ops.embedding_lookup_cost(model, b)
        update = ops.embedding_update_cost(model, b)
        self.ps_mem_bytes = lookup.bytes + update.bytes
        self.dense_param_bytes = ops.dense_param_bytes(model)
        self.easgd_tau = max(1, int(calib.easgd_sync_period))
        self.nic_latency = cfg.platform.nic.latency_s

        def jit(base: float) -> float:
            if cfg.jitter_sigma == 0:
                return base
            return base * float(rng.lognormal(0.0, cfg.jitter_sigma))

        nic_rate = cfg.platform.nic.bandwidth
        mem_rate = cpu.effective_bandwidth * calib.ps_service_efficiency
        self.trainer_nic = [
            Resource(f"trainer{i}/nic", jit(nic_rate), registry=registry)
            for i in range(cfg.num_trainers)
        ]
        # Straggler injection: the first straggler_fraction of sparse PS are
        # uniformly slowed (memory and NIC service).
        num_stragglers = int(round(cfg.straggler_fraction * cfg.num_sparse_ps))
        self.num_stragglers = num_stragglers

        def straggle(i: int, rate: float) -> float:
            return rate / cfg.straggler_slowdown if i < num_stragglers else rate

        self.sparse_nic = [
            Resource(
                f"sps{i}/nic",
                jit(straggle(i, nic_rate * calib.ps_service_efficiency)),
                registry=registry,
            )
            for i in range(cfg.num_sparse_ps)
        ]
        self.sparse_mem = [
            Resource(f"sps{i}/mem", jit(straggle(i, mem_rate)), registry=registry)
            for i in range(cfg.num_sparse_ps)
        ]
        self.dense_nic = [
            Resource(
                f"dps{i}/nic",
                jit(nic_rate * calib.ps_service_efficiency),
                registry=registry,
            )
            for i in range(cfg.num_dense_ps)
        ]
        # The reader tier serves whole examples; rate is examples/second.
        self.reader = (
            Resource(
                "readers",
                cfg.num_readers * cfg.reader_examples_per_s,
                registry=registry,
            )
            if cfg.num_readers is not None
            else None
        )
        self._rng = rng
        self.completed_iterations = 0

        # -- resilience state ------------------------------------------------
        self.ledger = GoodputLedger()
        self.injector = (
            FaultInjector(cfg.fault_plan)
            if cfg.fault_plan is not None and not cfg.fault_plan.is_noop
            else None
        )
        #: Cluster-wide barrier (sync-mode recovery, checkpoint writes):
        #: trainers do not start new iterations before this time.
        self.stall_until = 0.0
        #: Rollback generation: bumped on every sync-mode rollback; in-flight
        #: iterations from an older generation are void (their work was
        #: rolled back with everything else).
        self.generation = 0
        #: Capacity-weighted component downtime (for availability).
        self.weighted_downtime = 0.0
        # Recovery pricing: restore a crashed server's checkpoint shard over
        # NIC + memory; write checkpoints sharded across the sparse PS tier.
        full_ckpt = model_checkpoint_bytes(model)
        sparse_ckpt = 2 * model.embedding_bytes  # tables + Adagrad state
        dense_ckpt = 2 * model.dense_parameter_bytes
        self.sparse_restore_s = restore_time_s(
            sparse_ckpt, cfg.platform, shards=cfg.num_sparse_ps
        )
        self.dense_restore_s = restore_time_s(
            dense_ckpt, cfg.platform, shards=cfg.num_dense_ps
        )
        self.trainer_restore_s = restore_time_s(dense_ckpt, cfg.platform)
        self.checkpoint_cost_s = checkpoint_write_time_s(
            full_ckpt, cfg.platform, shards=cfg.num_sparse_ps
        )

    def live_sparse(self, now: float) -> list[int]:
        """Indices of sparse PS currently up (async routing set)."""
        return [
            i for i, r in enumerate(self.sparse_nic) if not r.is_down(now)
        ]

    def extend_stall(self, now: float, until: float) -> None:
        """Merge a full-cluster stall window into the running account."""
        start = max(now, self.stall_until)
        if until > start:
            self.ledger.stall_time_s += until - start
        self.stall_until = max(self.stall_until, until)


def simulate_cpu_cluster(
    model: ModelConfig,
    cfg: ClusterConfig,
    horizon_s: float = 2.0,
    calib: Calibration = DEFAULT_CALIBRATION,
    tracer: Tracer | NullTracer | None = None,
    registry: MetricsRegistry | None = None,
) -> ClusterResult:
    """Run the event simulation for ``horizon_s`` simulated seconds.

    ``tracer`` (optional) receives one ``iteration`` span per completed
    trainer iteration on the simulated timeline, with ``compute`` and
    ``ps_roundtrip`` child spans, plus ``fault``-category spans for every
    crash/recovery window; ``registry`` (optional) receives per-resource
    queue-depth/wait/busy histograms and ``resilience.*`` counters.  Both
    default to off and leave the simulation numerically untouched.
    """
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    cluster = _Cluster(model, cfg, calib, registry=registry)
    sim = Simulator()
    trainers = [
        _Trainer(i, sim, cluster, cluster.compute_time, cluster._rng, tracer=tracer)
        for i in range(cfg.num_trainers)
    ]
    ledger = cluster.ledger

    def record_fault_span(name: str, t0: float, duration: float, **attrs) -> None:
        if tracer is not None and tracer.enabled:
            tracer.record(name, "fault", t0=t0, duration=duration, **attrs)

    def handle_crash(kind: str, index: int) -> None:
        now = sim.now
        ledger.crashes += 1
        if kind == ComponentKind.TRAINER:
            restore = cluster.trainer_restore_s
            trainers[index % cfg.num_trainers].crash(now + restore)
            weight = 1.0 / cfg.num_trainers
        elif kind == ComponentKind.SPARSE_PS:
            restore = cluster.sparse_restore_s
            i = index % cfg.num_sparse_ps
            cluster.sparse_nic[i].fail(now, now + restore)
            cluster.sparse_mem[i].fail(now, now + restore)
            weight = 1.0 / cfg.num_sparse_ps
        else:  # dense PS
            restore = cluster.dense_restore_s
            cluster.dense_nic[index % cfg.num_dense_ps].fail(now, now + restore)
            weight = 1.0 / cfg.num_dense_ps
        ledger.recovery_time_s += restore
        visible = min(now + restore, horizon_s) - now
        cluster.weighted_downtime += max(0.0, visible) * weight
        record_fault_span(
            f"{kind}{index}_down", now, max(0.0, visible), kind=kind, index=index
        )
        if cfg.sync_mode == SyncMode.SYNC:
            # Synchronous training cannot proceed without every member:
            # the whole cluster stalls through recovery and rolls back to
            # the last checkpoint (in-flight work is void).
            lost = ledger.rollback(1.0)
            cluster.generation += 1
            cluster.extend_stall(now, now + restore)
            record_fault_span(
                "sync_rollback", now, max(0.0, visible), lost_examples=lost
            )
        else:
            # Async: surviving members keep going; only the failed shard's
            # uncheckpointed work is lost (restored from its checkpoint).
            ledger.rollback(weight)

    def handle_degradation_start(w) -> None:
        factor = w.slowdown
        if w.kind == ComponentKind.TRAINER:
            trainers[w.index % cfg.num_trainers].compute_time *= factor
        elif w.kind == ComponentKind.SPARSE_PS:
            cluster.sparse_nic[w.index % cfg.num_sparse_ps].rate /= factor
            cluster.sparse_mem[w.index % cfg.num_sparse_ps].rate /= factor
        else:
            cluster.dense_nic[w.index % cfg.num_dense_ps].rate /= factor
        record_fault_span(
            f"{w.kind}{w.index}_degraded", w.start_s, w.duration_s, slowdown=factor
        )

    def handle_degradation_end(w) -> None:
        factor = w.slowdown
        if w.kind == ComponentKind.TRAINER:
            trainers[w.index % cfg.num_trainers].compute_time /= factor
        elif w.kind == ComponentKind.SPARSE_PS:
            cluster.sparse_nic[w.index % cfg.num_sparse_ps].rate *= factor
            cluster.sparse_mem[w.index % cfg.num_sparse_ps].rate *= factor
        else:
            cluster.dense_nic[w.index % cfg.num_dense_ps].rate *= factor

    def take_checkpoint() -> None:
        now = sim.now
        cost = cluster.checkpoint_cost_s
        # A consistent snapshot pauses new iterations for the write window
        # (the Young/Daly overhead term); in-flight iterations drain.
        cluster.extend_stall(now, now + cost)
        ledger.mark_checkpoint(cost)
        sim.schedule(cfg.checkpoint_interval_s, take_checkpoint)

    if cluster.injector is not None:
        counts = {
            ComponentKind.TRAINER: cfg.num_trainers,
            ComponentKind.SPARSE_PS: cfg.num_sparse_ps,
            ComponentKind.DENSE_PS: cfg.num_dense_ps,
        }
        for event in cluster.injector.sample_crashes(counts, horizon_s):
            sim.schedule_at(
                event.time_s,
                lambda e=event: handle_crash(e.kind, e.index),
            )
        for window in cfg.fault_plan.degradations:
            if window.start_s < horizon_s:
                sim.schedule_at(
                    window.start_s, lambda w=window: handle_degradation_start(w)
                )
                if window.end_s < horizon_s:
                    sim.schedule_at(
                        window.end_s, lambda w=window: handle_degradation_end(w)
                    )
    if cfg.checkpoint_interval_s is not None:
        sim.schedule(cfg.checkpoint_interval_s, take_checkpoint)

    for t in trainers:
        t.start()
    sim.run(horizon_s)

    # Availability: 1 minus the fraction of aggregate capacity lost to
    # full-cluster stalls plus (async only — sync stalls already cover the
    # member outage) capacity-weighted component downtime.
    stall = min(ledger.stall_time_s, horizon_s)
    unavailable = stall
    if cfg.sync_mode == SyncMode.ASYNC:
        unavailable += cluster.weighted_downtime
    availability = float(np.clip(1.0 - unavailable / horizon_s, 0.0, 1.0))

    if registry is not None:
        registry.counter("resilience.crashes").inc(ledger.crashes)
        registry.counter("resilience.retries").inc(ledger.retries)
        registry.counter("resilience.requests_dropped").inc(ledger.requests_dropped)
        registry.counter("resilience.lost_examples").inc(ledger.lost_examples)
        registry.counter("resilience.checkpoints").inc(ledger.checkpoints_taken)
        registry.gauge("resilience.goodput").set(ledger.goodput(horizon_s))
        registry.gauge("resilience.availability").set(availability)

    return ClusterResult(
        throughput=ledger.completed_examples / horizon_s,
        sim_time=horizon_s,
        iterations_completed=cluster.completed_iterations,
        trainer_cpu_utilization=[
            min(1.0, t.busy_compute / horizon_s) for t in trainers
        ],
        trainer_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.trainer_nic
        ],
        sparse_ps_mem_utilization=[
            r.utilization(horizon_s) for r in cluster.sparse_mem
        ],
        sparse_ps_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.sparse_nic
        ],
        dense_ps_nic_utilization=[
            r.utilization(horizon_s) for r in cluster.dense_nic
        ],
        goodput=ledger.goodput(horizon_s),
        availability=availability,
        useful_examples=ledger.useful_examples,
        lost_examples=ledger.lost_examples,
        crashes=ledger.crashes,
        retries=ledger.retries,
        requests_dropped=ledger.requests_dropped,
        failed_iterations=ledger.failed_iterations,
        recovery_time=ledger.recovery_time_s,
        stall_time=ledger.stall_time_s,
        checkpoint_time=ledger.checkpoint_time_s,
        checkpoints_taken=ledger.checkpoints_taken,
        fault_events=list(cluster.injector.injected) if cluster.injector else [],
    )
