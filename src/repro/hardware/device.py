"""Roofline timing for compute devices.

Every operator cost in :mod:`repro.perf` reduces to (flops, bytes) pairs;
a device executes it in ``max(compute time, memory time) + launch overhead``
— the classic roofline model the paper cites as the standard approach
(§I, [52]), applied per operator.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DeviceSpec

__all__ = ["OpCost", "op_time", "batched_op_time", "arithmetic_intensity", "ridge_point"]


@dataclass(frozen=True)
class OpCost:
    """Resource demand of one operator invocation."""

    flops: float = 0.0
    bytes: float = 0.0
    kernels: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ValueError("flops and bytes must be >= 0")
        if self.kernels < 0:
            raise ValueError("kernels must be >= 0")

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            flops=self.flops + other.flops,
            bytes=self.bytes + other.bytes,
            kernels=self.kernels + other.kernels,
        )

    def scaled(self, factor: float) -> "OpCost":
        """Scale flops/bytes (e.g. per-example -> per-batch); kernel count
        is launch-bound, not data-bound, so it is left unchanged."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return OpCost(flops=self.flops * factor, bytes=self.bytes * factor, kernels=self.kernels)


def op_time(device: DeviceSpec, cost: OpCost) -> float:
    """Roofline execution time of ``cost`` on ``device`` (seconds)."""
    compute = cost.flops / device.effective_flops
    memory = cost.bytes / device.effective_bandwidth
    return max(compute, memory) + cost.kernels * device.launch_overhead_s


def batched_op_time(device: DeviceSpec, costs: list[OpCost]) -> float:
    """Sequential execution of several operators on one device."""
    return sum(op_time(device, c) for c in costs)


def arithmetic_intensity(cost: OpCost) -> float:
    """FLOPs per byte — where the op sits on the roofline x-axis."""
    if cost.bytes == 0:
        return float("inf")
    return cost.flops / cost.bytes


def ridge_point(device: DeviceSpec) -> float:
    """Arithmetic intensity at which the device transitions from
    bandwidth-bound to compute-bound."""
    return device.effective_flops / device.effective_bandwidth
