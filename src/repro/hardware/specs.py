"""Hardware platform descriptions (paper Table I).

Three platforms are modeled, with the published numbers where the paper
gives them and public V100 / Skylake datasheet values elsewhere:

* **Dual-Socket CPU** — 2x Intel Skylake, 256 GB DRAM, 25 Gbps Ethernet.
* **Big Basin** — 2 CPU sockets + 8x NVIDIA V100 (16/32 GB HBM2, 900 GB/s,
  15.7 TF fp32) in an NVLink hybrid-cube mesh, 100 Gbps Ethernet.
* **Zion (prototype)** — 8 CPU sockets, ~2 TB DRAM at ~1 TB/s, 8x V100
  connected through the CPUs (no direct GPU-GPU link in the prototype,
  §VI-B), 4x 100 Gbps InfiniBand.

Power: the paper states Big Basin's power-capacity requirement is 7.3x the
dual-socket CPU server (§V-A); we anchor the CPU server at 500 W nameplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "PlatformSpec",
    "V100_16GB",
    "V100_32GB",
    "SKYLAKE_SOCKET",
    "ZION_SOCKET",
    "DUAL_SOCKET_CPU",
    "BIG_BASIN_16GB",
    "BIG_BASIN",
    "ZION",
    "PLATFORMS",
    "GB",
    "TB",
]

GB = 1e9
TB = 1e12

#: Nameplate power of the baseline dual-socket CPU server.
CPU_SERVER_WATTS = 500.0
#: Big Basin requires 7.3x the CPU server's power capacity (paper §V-A).
BIG_BASIN_WATTS = 7.3 * CPU_SERVER_WATTS
#: Zion estimate: 8 sockets + 8 V100s + fabric.  Not published; documented
#: in DESIGN.md as an engineering estimate.
ZION_WATTS = 9.5 * CPU_SERVER_WATTS


@dataclass(frozen=True)
class DeviceSpec:
    """One compute device (GPU or CPU socket).

    Attributes:
        name: Human-readable identifier.
        peak_flops: Peak fp32 FLOP/s.
        mem_bandwidth: Device-local memory bandwidth, bytes/s.
        mem_capacity: Device-local memory capacity, bytes.
        launch_overhead_s: Fixed cost per offloaded kernel/op — the CUDA
            API overhead the paper says large batches amortize (§V-B).
        compute_efficiency: Achievable fraction of peak FLOP/s for the
            GEMM-heavy DLRM kernels.
        bandwidth_efficiency: Achievable fraction of peak memory bandwidth
            for irregular embedding gathers.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    mem_capacity: float
    launch_overhead_s: float
    compute_efficiency: float = 0.5
    bandwidth_efficiency: float = 0.6

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.mem_bandwidth, self.mem_capacity) <= 0:
            raise ValueError(f"device {self.name}: specs must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError(f"device {self.name}: bad compute_efficiency")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError(f"device {self.name}: bad bandwidth_efficiency")

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        return self.mem_bandwidth * self.bandwidth_efficiency


@dataclass(frozen=True)
class LinkSpec:
    """A communication link: point-to-point bandwidth plus per-message latency."""

    name: str
    bandwidth: float  # bytes/s
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError(f"link {self.name}: latency must be >= 0")


# -- device building blocks ---------------------------------------------------

V100_16GB = DeviceSpec(
    name="V100-16GB",
    peak_flops=15.7e12,
    mem_bandwidth=900 * GB,
    mem_capacity=16 * GB,
    launch_overhead_s=8e-6,
    # Achieved fraction of peak for the modest per-GPU GEMMs of DLRM
    # training (batch/8 examples per GPU, Caffe2-era kernels); far below
    # the ~50% of large CNN GEMMs.
    compute_efficiency=0.25,
    bandwidth_efficiency=0.65,
)

V100_32GB = DeviceSpec(
    name="V100-32GB",
    peak_flops=15.7e12,
    mem_bandwidth=900 * GB,
    mem_capacity=32 * GB,
    launch_overhead_s=8e-6,
    # Achieved fraction of peak for the modest per-GPU GEMMs of DLRM
    # training (batch/8 examples per GPU, Caffe2-era kernels); far below
    # the ~50% of large CNN GEMMs.
    compute_efficiency=0.25,
    bandwidth_efficiency=0.65,
)

SKYLAKE_SOCKET = DeviceSpec(
    name="Skylake-socket",
    peak_flops=1.5e12,
    mem_bandwidth=64 * GB,  # 6 channels DDR4 per socket, achievable
    mem_capacity=128 * GB,  # half of the server's 256 GB
    launch_overhead_s=5e-7,
    compute_efficiency=0.45,
    bandwidth_efficiency=0.70,
)

ZION_SOCKET = DeviceSpec(
    name="Zion-socket",
    peak_flops=1.8e12,
    mem_bandwidth=125 * GB,  # 8 sockets x 125 GB/s ~= the paper's ~1 TB/s
    mem_capacity=256 * GB,  # 8 sockets x 256 GB ~= the paper's ~2 TB
    launch_overhead_s=5e-7,
    compute_efficiency=0.45,
    bandwidth_efficiency=0.70,
)


@dataclass(frozen=True)
class PlatformSpec:
    """A training server: CPU sockets, optional accelerators, links, power.

    ``gpu_interconnect`` is the *intra-server* GPU-GPU path.  On Big Basin
    this is the NVLink cube mesh; on prototype Zion there is no direct path,
    so GPU traffic is staged through the CPUs over PCIe (modeled as a much
    slower, higher-latency link — the §VI-B observation).
    """

    name: str
    cpu_socket: DeviceSpec
    num_cpu_sockets: int
    gpu: DeviceSpec | None
    num_gpus: int
    system_memory: float  # bytes
    gpu_interconnect: LinkSpec | None
    pcie: LinkSpec
    nic: LinkSpec
    nameplate_watts: float
    idle_fraction: float = 0.3
    #: True when GPUs can exchange data without CPU involvement (NVLink /
    #: peer-to-peer PCIe).  The prototype Zion lacks this (§VI-B), so every
    #: collective pays per-message CPU staging costs.
    gpu_peer_direct: bool = True

    def __post_init__(self) -> None:
        if self.num_cpu_sockets < 1:
            raise ValueError(f"{self.name}: need at least one CPU socket")
        if (self.gpu is None) != (self.num_gpus == 0):
            raise ValueError(f"{self.name}: gpu spec and num_gpus disagree")
        if self.system_memory <= 0:
            raise ValueError(f"{self.name}: system_memory must be positive")
        if self.nameplate_watts <= 0:
            raise ValueError(f"{self.name}: nameplate_watts must be positive")
        if not 0 <= self.idle_fraction < 1:
            raise ValueError(f"{self.name}: idle_fraction must be in [0, 1)")

    @property
    def has_gpus(self) -> bool:
        return self.num_gpus > 0

    @property
    def total_gpu_memory(self) -> float:
        return (self.gpu.mem_capacity * self.num_gpus) if self.gpu else 0.0

    @property
    def cpu_peak_flops(self) -> float:
        return self.cpu_socket.peak_flops * self.num_cpu_sockets

    @property
    def cpu_effective_flops(self) -> float:
        return self.cpu_socket.effective_flops * self.num_cpu_sockets

    @property
    def system_mem_bandwidth(self) -> float:
        return self.cpu_socket.mem_bandwidth * self.num_cpu_sockets

    @property
    def system_mem_effective_bandwidth(self) -> float:
        return self.cpu_socket.effective_bandwidth * self.num_cpu_sockets

    def power_at_utilization(self, utilization: float) -> float:
        """Idle + utilization-proportional dynamic power."""
        if not 0 <= utilization <= 1:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        idle = self.idle_fraction * self.nameplate_watts
        return idle + (self.nameplate_watts - idle) * utilization


# -- the three platforms of Table I -------------------------------------------

_NVLINK_MESH = LinkSpec(name="NVLink-cube-mesh", bandwidth=100 * GB, latency_s=4e-6)
_PCIE3 = LinkSpec(name="PCIe3-x16", bandwidth=12 * GB, latency_s=6e-6)
_ETH_25G = LinkSpec(name="25GbE", bandwidth=25e9 / 8, latency_s=30e-6)
_ETH_100G = LinkSpec(name="100GbE", bandwidth=100e9 / 8, latency_s=25e-6)
_IB_4X100G = LinkSpec(name="4xIB-100G", bandwidth=4 * 100e9 / 8, latency_s=5e-6)
#: Zion prototype's GPU-GPU path is staged through CPUs over PCIe (§VI-B):
#: two PCIe hops plus CPU forwarding — low bandwidth, high per-message cost.
_ZION_GPU_VIA_CPU = LinkSpec(name="GPU-via-CPU-PCIe", bandwidth=2 * GB, latency_s=50e-6)

DUAL_SOCKET_CPU = PlatformSpec(
    name="DualSocketCPU",
    cpu_socket=SKYLAKE_SOCKET,
    num_cpu_sockets=2,
    gpu=None,
    num_gpus=0,
    system_memory=256 * GB,
    gpu_interconnect=None,
    pcie=_PCIE3,
    nic=_ETH_25G,
    nameplate_watts=CPU_SERVER_WATTS,
)

BIG_BASIN_16GB = PlatformSpec(
    name="BigBasin-16GB",
    cpu_socket=SKYLAKE_SOCKET,
    num_cpu_sockets=2,
    gpu=V100_16GB,
    num_gpus=8,
    system_memory=256 * GB,
    gpu_interconnect=_NVLINK_MESH,
    pcie=_PCIE3,
    nic=_ETH_100G,
    nameplate_watts=BIG_BASIN_WATTS,
)

BIG_BASIN = PlatformSpec(
    name="BigBasin",
    cpu_socket=SKYLAKE_SOCKET,
    num_cpu_sockets=2,
    gpu=V100_32GB,
    num_gpus=8,
    system_memory=256 * GB,
    gpu_interconnect=_NVLINK_MESH,
    pcie=_PCIE3,
    nic=_ETH_100G,
    nameplate_watts=BIG_BASIN_WATTS,
)

ZION = PlatformSpec(
    name="Zion",
    cpu_socket=ZION_SOCKET,
    num_cpu_sockets=8,
    gpu=V100_32GB,
    num_gpus=8,
    system_memory=2 * TB,
    gpu_interconnect=_ZION_GPU_VIA_CPU,
    pcie=_PCIE3,
    nic=_IB_4X100G,
    nameplate_watts=ZION_WATTS,
    gpu_peer_direct=False,
)

PLATFORMS: dict[str, PlatformSpec] = {
    p.name: p for p in (DUAL_SOCKET_CPU, BIG_BASIN_16GB, BIG_BASIN, ZION)
}
