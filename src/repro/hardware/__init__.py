"""Hardware substrate: platform specs (Table I), roofline devices, links, power."""

from .device import OpCost, arithmetic_intensity, batched_op_time, op_time, ridge_point
from .interconnect import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    gather_time,
    transfer_time,
)
from .memory import CapacityError, MemoryPool, usable_capacity
from .power import ClusterPower, ServerAllocation, perf_per_watt
from .specs import (
    BIG_BASIN,
    BIG_BASIN_16GB,
    DUAL_SOCKET_CPU,
    GB,
    PLATFORMS,
    TB,
    ZION,
    DeviceSpec,
    LinkSpec,
    PlatformSpec,
    SKYLAKE_SOCKET,
    V100_16GB,
    V100_32GB,
    ZION_SOCKET,
)

__all__ = [
    "OpCost",
    "op_time",
    "batched_op_time",
    "arithmetic_intensity",
    "ridge_point",
    "transfer_time",
    "allreduce_time",
    "alltoall_time",
    "broadcast_time",
    "gather_time",
    "CapacityError",
    "MemoryPool",
    "usable_capacity",
    "ClusterPower",
    "ServerAllocation",
    "perf_per_watt",
    "DeviceSpec",
    "LinkSpec",
    "PlatformSpec",
    "V100_16GB",
    "V100_32GB",
    "SKYLAKE_SOCKET",
    "ZION_SOCKET",
    "DUAL_SOCKET_CPU",
    "BIG_BASIN_16GB",
    "BIG_BASIN",
    "ZION",
    "PLATFORMS",
    "GB",
    "TB",
]
