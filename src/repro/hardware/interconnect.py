"""Communication timing: point-to-point transfers and collectives.

Embedding-table training moves data in two patterns the paper emphasizes:
all-to-all exchanges of pooled embedding vectors between GPUs holding table
shards, and all-reduce of data-parallel dense gradients.  Both are modeled
with standard bandwidth-optimal collective cost formulas over a
:class:`~repro.hardware.specs.LinkSpec`.
"""

from __future__ import annotations

from .specs import LinkSpec

__all__ = [
    "transfer_time",
    "allreduce_time",
    "alltoall_time",
    "broadcast_time",
    "gather_time",
]


def _validate(size_bytes: float, num_ranks: int | None = None) -> None:
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
    if num_ranks is not None and num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")


def transfer_time(link: LinkSpec, size_bytes: float) -> float:
    """One point-to-point message."""
    _validate(size_bytes)
    if size_bytes == 0:
        return 0.0
    return link.latency_s + size_bytes / link.bandwidth


def allreduce_time(link: LinkSpec, size_bytes: float, num_ranks: int) -> float:
    """Ring all-reduce of ``size_bytes`` across ``num_ranks`` peers.

    Each rank sends/receives ``2 * (n-1)/n * size`` bytes over 2(n-1) steps.
    """
    _validate(size_bytes, num_ranks)
    if num_ranks == 1 or size_bytes == 0:
        return 0.0
    steps = 2 * (num_ranks - 1)
    volume = 2.0 * (num_ranks - 1) / num_ranks * size_bytes
    return steps * link.latency_s + volume / link.bandwidth


def alltoall_time(link: LinkSpec, size_bytes_per_rank: float, num_ranks: int) -> float:
    """All-to-all where every rank holds ``size_bytes_per_rank`` to scatter.

    Each rank exchanges ``(n-1)/n`` of its buffer with peers.
    """
    _validate(size_bytes_per_rank, num_ranks)
    if num_ranks == 1 or size_bytes_per_rank == 0:
        return 0.0
    volume = (num_ranks - 1) / num_ranks * size_bytes_per_rank
    return (num_ranks - 1) * link.latency_s + volume / link.bandwidth


def broadcast_time(link: LinkSpec, size_bytes: float, num_ranks: int) -> float:
    """Pipelined tree/ring broadcast: ~1 full traversal of the buffer."""
    _validate(size_bytes, num_ranks)
    if num_ranks == 1 or size_bytes == 0:
        return 0.0
    import math

    return math.ceil(math.log2(num_ranks)) * link.latency_s + size_bytes / link.bandwidth


def gather_time(link: LinkSpec, size_bytes_per_rank: float, num_ranks: int) -> float:
    """Root receives one buffer from each peer, serialized on its link."""
    _validate(size_bytes_per_rank, num_ranks)
    if num_ranks == 1 or size_bytes_per_rank == 0:
        return 0.0
    return (num_ranks - 1) * (link.latency_s + size_bytes_per_rank / link.bandwidth)
