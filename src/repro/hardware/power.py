"""Power accounting and performance-per-watt.

The paper's efficiency headline is *throughput per watt* (§I, §V-A): Big
Basin draws 7.3x the power of a dual-socket CPU server, so a GPU setup must
beat the CPU baseline by more than 7.3x in throughput (at equal server
counts) to win on power efficiency.  ``ClusterPower`` sums nameplate (or
utilization-scaled) power over every server participating in a training
setup — trainers, parameter servers, readers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import PlatformSpec

__all__ = ["ServerAllocation", "ClusterPower", "perf_per_watt"]


@dataclass(frozen=True)
class ServerAllocation:
    """``count`` servers of one platform playing one role."""

    platform: PlatformSpec
    count: int
    role: str = "trainer"
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if not 0 <= self.utilization <= 1:
            raise ValueError(f"utilization must be in [0, 1], got {self.utilization}")

    @property
    def nameplate_watts(self) -> float:
        return self.count * self.platform.nameplate_watts

    @property
    def drawn_watts(self) -> float:
        return self.count * self.platform.power_at_utilization(self.utilization)


@dataclass
class ClusterPower:
    """Power footprint of a complete training setup."""

    allocations: list[ServerAllocation] = field(default_factory=list)

    def add(self, platform: PlatformSpec, count: int, role: str = "trainer", utilization: float = 1.0) -> "ClusterPower":
        self.allocations.append(
            ServerAllocation(platform=platform, count=count, role=role, utilization=utilization)
        )
        return self

    @property
    def total_servers(self) -> int:
        return sum(a.count for a in self.allocations)

    @property
    def nameplate_watts(self) -> float:
        """Provisioned power capacity — what the paper's 7.3x refers to."""
        return sum(a.nameplate_watts for a in self.allocations)

    @property
    def drawn_watts(self) -> float:
        """Utilization-scaled estimate of actual draw."""
        return sum(a.drawn_watts for a in self.allocations)

    def by_role(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for a in self.allocations:
            out[a.role] = out.get(a.role, 0.0) + a.nameplate_watts
        return out


def perf_per_watt(throughput: float, watts: float) -> float:
    """Examples/second per watt — the paper's training-efficiency metric."""
    if throughput < 0:
        raise ValueError(f"throughput must be >= 0, got {throughput}")
    if watts <= 0:
        raise ValueError(f"watts must be positive, got {watts}")
    return throughput / watts
