"""Memory pools with capacity accounting.

The placement planner (:mod:`repro.placement`) packs embedding tables into
GPU HBM and system DRAM; pools enforce the capacity limits that drive the
paper's central finding — models whose tables exceed a single server's GPU
memory scale poorly on Big Basin and shift the optimal placement (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CapacityError",
    "MemoryPool",
    "MemoryTierSpec",
    "usable_capacity",
    "DRAM_TIER",
    "SCM_TIER",
    "NVME_TIER",
]

#: Fraction of nameplate capacity usable for model state; the rest is
#: reserved for activations, buffers, framework overhead.
DEFAULT_HEADROOM = 0.9


class CapacityError(RuntimeError):
    """Raised when an allocation would exceed a pool's capacity."""

    def __init__(self, pool: "MemoryPool", requested: float) -> None:
        super().__init__(
            f"pool {pool.name!r}: requested {requested / 1e9:.2f} GB but only "
            f"{pool.available / 1e9:.2f} GB of {pool.capacity / 1e9:.2f} GB free"
        )
        self.pool = pool
        self.requested = requested


def usable_capacity(raw_bytes: float, headroom: float = DEFAULT_HEADROOM) -> float:
    """Capacity available to model state after reserving runtime headroom."""
    if raw_bytes < 0:
        raise ValueError(f"raw_bytes must be >= 0, got {raw_bytes}")
    if not 0 < headroom <= 1:
        raise ValueError(f"headroom must be in (0, 1], got {headroom}")
    return raw_bytes * headroom


@dataclass(frozen=True)
class MemoryTierSpec:
    """Access characteristics of one memory tier.

    The software-managed tiered embedding store (:mod:`repro.tiering`)
    prices row accesses and chunk movement from these numbers: a random
    row read costs ``latency_s + row_bytes / bandwidth``.  Bandwidths are
    per-stream effective numbers (not aggregate socket bandwidth), so the
    latency term dominates for small rows — which is exactly why SCM/SSD
    tiers need frequency-aware placement to hide their access cost.
    """

    name: str
    bandwidth: float  # bytes/s, effective single-stream
    latency_s: float  # seconds per random access

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"tier {self.name!r}: bandwidth must be > 0")
        if self.latency_s < 0:
            raise ValueError(f"tier {self.name!r}: latency_s must be >= 0")

    def access_s(self, nbytes: float) -> float:
        """Seconds to read/write ``nbytes`` at this tier (latency + transfer)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth


#: Host DRAM: ~100 ns load-to-use, ~tens of GB/s effective per stream.
DRAM_TIER = MemoryTierSpec(name="dram", bandwidth=100e9, latency_s=100e-9)

#: Storage-class memory (Optane-style AppDirect): ~1 us, a few GB/s.
SCM_TIER = MemoryTierSpec(name="scm", bandwidth=2.5e9, latency_s=1e-6)

#: NVMe flash: ~80 us random read, ~3 GB/s sequential.
NVME_TIER = MemoryTierSpec(name="nvme", bandwidth=3.0e9, latency_s=80e-6)


@dataclass
class MemoryPool:
    """A named memory region with explicit allocations."""

    name: str
    capacity: float  # bytes
    allocations: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"pool {self.name!r}: capacity must be >= 0")

    @property
    def used(self) -> float:
        return sum(self.allocations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        return self.used / self.capacity if self.capacity else 0.0

    def can_fit(self, size_bytes: float) -> bool:
        return size_bytes <= self.available

    def allocate(self, tag: str, size_bytes: float) -> None:
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        if tag in self.allocations:
            raise ValueError(f"pool {self.name!r}: tag {tag!r} already allocated")
        if not self.can_fit(size_bytes):
            raise CapacityError(self, size_bytes)
        self.allocations[tag] = size_bytes

    def free(self, tag: str) -> float:
        if tag not in self.allocations:
            raise KeyError(f"pool {self.name!r}: no allocation tagged {tag!r}")
        return self.allocations.pop(tag)

    def reset(self) -> None:
        self.allocations.clear()
