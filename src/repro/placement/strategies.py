"""Embedding-table placement strategies (paper §IV-B.1, Figure 8).

Four options are modeled, matching the paper's Figure 8:

* ``GPU_MEMORY`` — tables distributed over the GPUs' HBM (table-wise or
  row-wise partitioned).
* ``SYSTEM_MEMORY`` — tables in the GPU server's own DRAM.
* ``REMOTE_CPU`` — tables sharded over remote CPU parameter servers.
* ``HYBRID`` — as many tables as fit in HBM, the rest in system memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["PlacementStrategy", "Location", "LocationKind", "Shard", "PlacementPlan"]


class PlacementStrategy(enum.Enum):
    GPU_MEMORY = "gpu_memory"
    SYSTEM_MEMORY = "system_memory"
    REMOTE_CPU = "remote_cpu"
    HYBRID = "hybrid"


class LocationKind(enum.Enum):
    GPU = "gpu"
    SYSTEM = "system"
    REMOTE = "remote"


@dataclass(frozen=True)
class Location:
    """A physical memory location: a GPU's HBM, server DRAM, or a remote PS."""

    kind: LocationKind
    index: int = 0  # GPU ordinal / remote-PS ordinal; 0 for system memory
    node: int = 0  # server ordinal for multi-node GPU placement

    def __post_init__(self) -> None:
        if self.index < 0 or self.node < 0:
            raise ValueError("location index/node must be >= 0")

    def __str__(self) -> str:
        if self.kind is LocationKind.GPU:
            return f"node{self.node}/gpu{self.index}"
        if self.kind is LocationKind.REMOTE:
            return f"ps{self.index}"
        return "system"


@dataclass(frozen=True)
class Shard:
    """Part (or all) of one table materialized at one location.

    ``replicated=True`` marks a data-parallel copy: the table is small
    enough to live on *every* GPU, so lookups are purely local and no
    all-to-all exchange is needed (replicas are kept loosely in sync the
    same way the dense parameters are).  A replicated shard is recorded
    once with the aggregate bytes across all copies.
    """

    table_name: str
    location: Location
    bytes: float
    row_fraction: float = 1.0
    replicated: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError("shard bytes must be >= 0")
        if not 0 < self.row_fraction <= 1:
            raise ValueError(f"row_fraction must be in (0, 1], got {self.row_fraction}")


@dataclass
class PlacementPlan:
    """The result of planning: every table mapped to one or more shards."""

    strategy: PlacementStrategy
    shards: list[Shard] = field(default_factory=list)
    num_nodes: int = 1
    num_remote_ps: int = 0

    def shards_for(self, table_name: str) -> list[Shard]:
        return [s for s in self.shards if s.table_name == table_name]

    def table_names(self) -> set[str]:
        return {s.table_name for s in self.shards}

    def bytes_by_kind(self) -> dict[LocationKind, float]:
        out: dict[LocationKind, float] = {}
        for s in self.shards:
            out[s.location.kind] = out.get(s.location.kind, 0.0) + s.bytes
        return out

    def gpus_used(self) -> int:
        """Distinct GPUs holding at least one shard (across all nodes)."""
        return len(
            {
                (s.location.node, s.location.index)
                for s in self.shards
                if s.location.kind is LocationKind.GPU
            }
        )

    def sharded_gpus_used(self) -> int:
        """Distinct GPUs holding a *model-parallel* (non-replicated) shard."""
        return len(
            {
                (s.location.node, s.location.index)
                for s in self.shards
                if s.location.kind is LocationKind.GPU and not s.replicated
            }
        )

    def replicated_tables(self) -> set[str]:
        return {s.table_name for s in self.shards if s.replicated}

    def remote_ps_used(self) -> int:
        return len(
            {
                s.location.index
                for s in self.shards
                if s.location.kind is LocationKind.REMOTE
            }
        )

    @property
    def is_pure_gpu(self) -> bool:
        return all(s.location.kind is LocationKind.GPU for s in self.shards)

    def validate_complete(self, expected_tables: set[str]) -> None:
        """Every expected table must be fully placed (row fractions sum to 1)."""
        placed = self.table_names()
        missing = expected_tables - placed
        if missing:
            raise ValueError(f"plan is missing tables: {sorted(missing)}")
        for name in expected_tables:
            total = sum(s.row_fraction for s in self.shards_for(name))
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"table {name!r}: row fractions sum to {total}, expected 1.0"
                )
