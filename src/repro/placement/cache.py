"""Hot-row caching for embedding tables (paper §III-A.2's caching opportunity).

Feature accesses are heavily skewed (Zipf-like; Figure 7), so a small cache
of hot rows in fast memory can serve most lookups.  This module provides
the analytical side of that what-if:

* :func:`zipf_hit_rate` — expected cache hit rate when accesses follow a
  Zipf(``skew``) law over ``num_rows`` and the cache holds the hottest
  ``cached_rows`` (the static-optimal / steady-state-LFU hit rate);
* :func:`lru_hit_rate` — the same question for an *LRU* cache via Che's
  characteristic-time approximation (LRU keeps recently-used rather than
  most-popular rows, so its hit rate is strictly lower);
* :class:`CachePlan` — sizing a per-table HBM cache under a byte budget and
  reporting the fraction of lookup traffic it absorbs.

:func:`cached_system_memory_throughput` in :mod:`repro.perf.whatif` uses
the absorbed fraction to discount host-memory traffic for system-memory
placements — the optimization the paper sketches for Big Basin.  The
online serving cache (:mod:`repro.serving.cache`) measures its hit rate
functionally and cross-validates against both predictions
(``tests/test_serving_cache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ModelConfig, TableSpec

__all__ = ["zipf_hit_rate", "lru_hit_rate", "CachePlan", "plan_cache"]

#: Below this rank count the generalized harmonic number is summed directly;
#: beyond it the Euler–Maclaurin tail keeps the cost O(1).
_EXACT_HARMONIC_LIMIT = 262_144


def _generalized_harmonic(n: int, s: float) -> float:
    """``H_n(s) = sum_{i=1..n} i^-s``, exact to ~1e-10 relative error.

    Small ``n`` is summed directly (the old single-term integral
    approximation drifted ~4-5% at n <~ 500, which broke the analytic vs.
    measured cache cross-validation).  Large ``n`` splits into an exact
    head plus the Euler–Maclaurin expansion of the tail::

        sum_{i=m..n} i^-s ~= int_m^n x^-s dx + (m^-s + n^-s)/2
                             + s/12 * (m^-(s+1) - n^-(s+1))
    """
    if n <= 0:
        return 0.0
    if n <= _EXACT_HARMONIC_LIMIT:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(np.sum(ranks**-s))
    m = _EXACT_HARMONIC_LIMIT
    ranks = np.arange(1, m, dtype=np.float64)  # exact head: 1 .. m-1
    head = float(np.sum(ranks**-s))
    if abs(s - 1.0) < 1e-12:
        integral = float(np.log(n) - np.log(m))
    else:
        integral = (n ** (1.0 - s) - m ** (1.0 - s)) / (1.0 - s)
    tail = (
        integral
        + 0.5 * (m**-s + float(n) ** -s)
        + (s / 12.0) * (m ** -(s + 1.0) - float(n) ** -(s + 1.0))
    )
    return head + tail


def _validate_cache_args(num_rows: int, cached_rows: int, skew: float) -> None:
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    if cached_rows < 0:
        raise ValueError(f"cached_rows must be >= 0, got {cached_rows}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")


def zipf_hit_rate(num_rows: int, cached_rows: int, skew: float = 1.05) -> float:
    """Fraction of accesses hitting the ``cached_rows`` most popular rows.

    Zipf(s) mass of the top-k ranks, ``H_k(s) / H_n(s)`` with generalized
    harmonic numbers (exact; see :func:`_generalized_harmonic`).  This is
    the hit rate of a cache that pins the hottest rows — the limit an LFU
    policy converges to, and an upper bound for LRU (see
    :func:`lru_hit_rate`).
    """
    _validate_cache_args(num_rows, cached_rows, skew)
    k = min(cached_rows, num_rows)
    if k == 0:
        return 0.0
    if k == num_rows:
        return 1.0
    return min(
        1.0, _generalized_harmonic(k, skew) / _generalized_harmonic(num_rows, skew)
    )


#: Rank count beyond which the Che fixed point uses log-spaced rank
#: quadrature instead of the dense pmf (bounds memory at ~tens of KB).
_CHE_DENSE_LIMIT = 2_097_152


def _che_popularities(num_rows: int, skew: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-rank access probabilities ``p`` and multiplicities ``w`` such
    that ``sum(w) == num_rows`` and ``sum(w * p) == 1``."""
    if num_rows <= _CHE_DENSE_LIMIT:
        ranks = np.arange(1, num_rows + 1, dtype=np.float64)
        p = ranks**-skew
        return p / p.sum(), np.ones_like(p)
    # Log-spaced representative ranks; each bucket [lo, hi) is represented
    # by its geometric-mean rank with multiplicity (hi - lo).
    edges = np.unique(
        np.round(np.geomspace(1, num_rows + 1, num=4096)).astype(np.int64)
    )
    lo, hi = edges[:-1], edges[1:]
    w = (hi - lo).astype(np.float64)
    reps = np.sqrt(lo * hi.astype(np.float64))
    p = reps**-skew
    p /= float(np.sum(w * p))
    return p, w


def lru_hit_rate(num_rows: int, cached_rows: int, skew: float = 1.05) -> float:
    """Expected *LRU* hit rate under the independent-reference model.

    Che's approximation: the characteristic time ``T`` solves
    ``sum_i (1 - exp(-p_i T)) = C`` and the hit rate is
    ``sum_i p_i (1 - exp(-p_i T))``.  Accurate to ~1% against the
    functional LRU cache in :mod:`repro.serving.cache` on discrete-Zipf
    traffic (pinned by ``tests/test_serving_cache.py``).
    """
    _validate_cache_args(num_rows, cached_rows, skew)
    c = min(cached_rows, num_rows)
    if c == 0:
        return 0.0
    if c == num_rows:
        return 1.0
    p, w = _che_popularities(num_rows, skew)

    def occupancy(t: float) -> float:
        return float(np.sum(w * -np.expm1(-p * t)))

    # Bracket then bisect the monotone fixed point (no scipy dependency in
    # this hot path; 60 iterations give ~1e-12 relative precision).
    lo, hi = 0.0, float(c)
    while occupancy(hi) < c:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - defensive
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if occupancy(mid) < c:
            lo = mid
        else:
            hi = mid
    t = 0.5 * (lo + hi)
    return min(1.0, float(np.sum(w * p * -np.expm1(-p * t))))


@dataclass(frozen=True)
class CachePlan:
    """Per-table cache sizing and the aggregate absorbed lookup fraction."""

    cached_rows: dict[str, int]
    cache_bytes: float
    absorbed_lookup_fraction: float


def plan_cache(
    model: ModelConfig,
    cache_budget_bytes: float,
    skew: float = 1.05,
    row_overhead_bytes: int = 8,
) -> CachePlan:
    """Greedy cache sizing: spend the byte budget on the rows that absorb
    the most lookup traffic per byte.

    Tables are filled in order of lookup intensity (accesses per byte of
    row), each up to the point of diminishing returns (at most 10% of the
    table's rows — past the Zipf head, hit rate grows too slowly to pay).
    """
    if cache_budget_bytes < 0:
        raise ValueError("cache_budget_bytes must be >= 0")
    row_bytes = {
        t.name: t.dim * 4 + row_overhead_bytes for t in model.tables
    }

    def intensity(t: TableSpec) -> float:
        return t.effective_mean_lookups / (t.hash_size * row_bytes[t.name])

    cached: dict[str, int] = {t.name: 0 for t in model.tables}
    remaining = cache_budget_bytes
    for t in sorted(model.tables, key=intensity, reverse=True):
        cap_rows = max(1, t.hash_size // 10)
        affordable = int(remaining // row_bytes[t.name])
        take = min(cap_rows, affordable, t.hash_size)
        if take <= 0:
            continue
        cached[t.name] = take
        remaining -= take * row_bytes[t.name]

    total_lookups = max(model.mean_total_lookups, 1e-12)
    absorbed = 0.0
    for t in model.tables:
        if cached[t.name]:
            absorbed += (
                t.effective_mean_lookups
                * zipf_hit_rate(t.hash_size, cached[t.name], skew)
                / total_lookups
            )
    return CachePlan(
        cached_rows=cached,
        cache_bytes=cache_budget_bytes - remaining,
        absorbed_lookup_fraction=min(1.0, absorbed),
    )
