"""Hot-row caching for embedding tables (paper §III-A.2's caching opportunity).

Feature accesses are heavily skewed (Zipf-like; Figure 7), so a small cache
of hot rows in fast memory can serve most lookups.  This module provides
the capacity-planning side of that what-if:

* :func:`zipf_hit_rate` / :func:`lru_hit_rate` — re-exported from
  :mod:`repro.tiering.analytic`, the repo's single home for the analytic
  hit-rate math (historically these lived here; the tiered embedding
  store and the serving caches now share one implementation);
* :class:`CachePlan` — sizing a per-table HBM cache under a byte budget and
  reporting the fraction of lookup traffic it absorbs.

:func:`cached_system_memory_throughput` in :mod:`repro.perf.whatif` uses
the absorbed fraction to discount host-memory traffic for system-memory
placements — the optimization the paper sketches for Big Basin.  The
online serving cache (:mod:`repro.serving.cache`) measures its hit rate
functionally and cross-validates against both predictions
(``tests/test_serving_cache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ModelConfig, TableSpec

# Compatibility re-exports: the analytic implementations (and their
# private helpers, kept importable for historical callers) moved to
# repro.tiering.analytic.
from ..tiering.analytic import (  # noqa: F401
    _CHE_DENSE_LIMIT,
    _EXACT_HARMONIC_LIMIT,
    _che_popularities,
    _generalized_harmonic,
    _validate_cache_args,
    lru_hit_rate,
    zipf_hit_rate,
)

__all__ = ["zipf_hit_rate", "lru_hit_rate", "CachePlan", "plan_cache"]


@dataclass(frozen=True)
class CachePlan:
    """Per-table cache sizing and the aggregate absorbed lookup fraction."""

    cached_rows: dict[str, int]
    cache_bytes: float
    absorbed_lookup_fraction: float


def plan_cache(
    model: ModelConfig,
    cache_budget_bytes: float,
    skew: float = 1.05,
    row_overhead_bytes: int = 8,
) -> CachePlan:
    """Greedy cache sizing: spend the byte budget on the rows that absorb
    the most lookup traffic per byte.

    Tables are filled in order of lookup intensity (accesses per byte of
    row), each up to the point of diminishing returns (at most 10% of the
    table's rows — past the Zipf head, hit rate grows too slowly to pay).
    """
    if cache_budget_bytes < 0:
        raise ValueError("cache_budget_bytes must be >= 0")
    row_bytes = {
        t.name: t.dim * 4 + row_overhead_bytes for t in model.tables
    }

    def intensity(t: TableSpec) -> float:
        return t.effective_mean_lookups / (t.hash_size * row_bytes[t.name])

    cached: dict[str, int] = {t.name: 0 for t in model.tables}
    remaining = cache_budget_bytes
    for t in sorted(model.tables, key=intensity, reverse=True):
        cap_rows = max(1, t.hash_size // 10)
        affordable = int(remaining // row_bytes[t.name])
        take = min(cap_rows, affordable, t.hash_size)
        if take <= 0:
            continue
        cached[t.name] = take
        remaining -= take * row_bytes[t.name]

    total_lookups = max(model.mean_total_lookups, 1e-12)
    absorbed = 0.0
    for t in model.tables:
        if cached[t.name]:
            absorbed += (
                t.effective_mean_lookups
                * zipf_hit_rate(t.hash_size, cached[t.name], skew)
                / total_lookups
            )
    return CachePlan(
        cached_rows=cached,
        cache_bytes=cache_budget_bytes - remaining,
        absorbed_lookup_fraction=min(1.0, absorbed),
    )
