"""Embedding-table placement: strategies (Figure 8) and the packing planner."""

from .planner import (
    OPTIMIZER_STATE_MULTIPLIER,
    PlannerConfig,
    auto_plan,
    feasible_strategies,
    min_gpus_required,
    model_embedding_footprint,
    plan_gpu_memory,
    plan_hybrid,
    plan_placement,
    plan_remote_cpu,
    plan_system_memory,
    table_footprint,
)
from .cache import CachePlan, lru_hit_rate, plan_cache, zipf_hit_rate
from .strategies import (
    Location,
    LocationKind,
    PlacementPlan,
    PlacementStrategy,
    Shard,
)

__all__ = [
    "PlacementStrategy",
    "LocationKind",
    "Location",
    "Shard",
    "PlacementPlan",
    "PlannerConfig",
    "OPTIMIZER_STATE_MULTIPLIER",
    "table_footprint",
    "model_embedding_footprint",
    "min_gpus_required",
    "plan_gpu_memory",
    "plan_system_memory",
    "plan_remote_cpu",
    "plan_hybrid",
    "plan_placement",
    "auto_plan",
    "feasible_strategies",
    "CachePlan",
    "plan_cache",
    "zipf_hit_rate",
    "lru_hit_rate",
]
