"""Placement planning: packing embedding tables into memory pools.

Implements the software machinery the paper describes as necessary to train
production models on GPU systems (§I, §IV-B.1): table-wise partitioning with
greedy load balancing, row-wise sharding for tables larger than one HBM,
capacity feasibility checks with optimizer-state overhead, and spill logic
for the hybrid strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ModelConfig, TableSpec
from ..hardware.memory import DEFAULT_HEADROOM, CapacityError, MemoryPool, usable_capacity
from ..hardware.specs import PlatformSpec
from .strategies import (
    Location,
    LocationKind,
    PlacementPlan,
    PlacementStrategy,
    Shard,
)

__all__ = [
    "PlannerConfig",
    "table_footprint",
    "model_embedding_footprint",
    "plan_gpu_memory",
    "plan_system_memory",
    "plan_remote_cpu",
    "plan_hybrid",
    "plan_placement",
    "feasible_strategies",
    "min_gpus_required",
]

#: Adagrad keeps one accumulator per weight, doubling table state (§IV-B.1's
#: capacity pressure includes optimizer state).
OPTIMIZER_STATE_MULTIPLIER = 2.0


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs for placement planning."""

    optimizer_multiplier: float = OPTIMIZER_STATE_MULTIPLIER
    headroom: float = DEFAULT_HEADROOM
    balance_by: str = "bytes"  # "bytes" or "accesses"
    #: A table whose footprint is at most this many bytes may be replicated
    #: on every GPU (data-parallel), avoiding the all-to-all exchange.
    replicate_threshold_bytes: float = 256e6
    #: At most this fraction of each GPU's usable HBM may hold replicas.
    replicate_budget_fraction: float = 0.5
    #: GPU partitioning for non-replicated tables: ``table_wise`` assigns
    #: whole tables to GPUs (simple, but hot tables imbalance the load);
    #: ``row_wise`` stripes every table across all GPUs (balanced lookups,
    #: at the cost of touching every GPU for every table).
    partitioning: str = "table_wise"
    #: In table-wise mode, a table whose lookup share exceeds this multiple
    #: of the balanced share (1/num_pools) is row-wise striped instead —
    #: no single GPU should serve a hot table alone (the "carefully
    #: partitioned" imbalance fix of §III-A.2).
    hot_table_split_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.optimizer_multiplier < 1.0:
            raise ValueError("optimizer_multiplier must be >= 1")
        if self.balance_by not in ("bytes", "accesses"):
            raise ValueError(f"balance_by must be 'bytes' or 'accesses', got {self.balance_by!r}")
        if self.replicate_threshold_bytes < 0:
            raise ValueError("replicate_threshold_bytes must be >= 0")
        if not 0 <= self.replicate_budget_fraction < 1:
            raise ValueError("replicate_budget_fraction must be in [0, 1)")
        if self.partitioning not in ("table_wise", "row_wise"):
            raise ValueError(
                f"partitioning must be 'table_wise' or 'row_wise', got {self.partitioning!r}"
            )
        if self.hot_table_split_factor < 1.0:
            raise ValueError("hot_table_split_factor must be >= 1")


def table_footprint(spec: TableSpec, cfg: PlannerConfig = PlannerConfig()) -> float:
    """Bytes of state one table needs (weights + optimizer accumulators)."""
    return spec.size_bytes * cfg.optimizer_multiplier


def model_embedding_footprint(model: ModelConfig, cfg: PlannerConfig = PlannerConfig()) -> float:
    return sum(table_footprint(t, cfg) for t in model.tables)


def min_gpus_required(model: ModelConfig, platform: PlatformSpec, cfg: PlannerConfig = PlannerConfig()) -> int:
    """Lower bound on GPUs needed to hold all tables (row-wise splitting
    allowed, so the bound is by total bytes)."""
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    per_gpu = usable_capacity(platform.gpu.mem_capacity, cfg.headroom)
    total = model_embedding_footprint(model, cfg)
    return max(1, int(-(-total // per_gpu)))


def _gpu_pools(platform: PlatformSpec, num_nodes: int, cfg: PlannerConfig) -> list[tuple[Location, MemoryPool]]:
    pools = []
    for node in range(num_nodes):
        for gpu in range(platform.num_gpus):
            cap = usable_capacity(platform.gpu.mem_capacity, cfg.headroom)
            pools.append(
                (
                    Location(LocationKind.GPU, index=gpu, node=node),
                    MemoryPool(name=f"node{node}/gpu{gpu}", capacity=cap),
                )
            )
    return pools


def _sort_key(spec: TableSpec, cfg: PlannerConfig) -> tuple[float, float]:
    """Largest-first packing order, tie-broken by the other dimension so
    equal-sized tables are still placed hot-first (LPT-style balance)."""
    if cfg.balance_by == "accesses":
        return (spec.effective_mean_lookups, float(spec.size_bytes))
    return (float(spec.size_bytes), spec.effective_mean_lookups)


def plan_gpu_memory(
    model: ModelConfig,
    platform: PlatformSpec,
    num_nodes: int = 1,
    cfg: PlannerConfig = PlannerConfig(),
    allow_row_wise: bool = True,
) -> PlacementPlan:
    """Distribute tables over GPU HBM pools.

    Small tables (within ``cfg.replicate_threshold_bytes`` and the per-GPU
    replica budget) are replicated on every GPU so their lookups stay local.
    The rest are table-wise packed greedy largest-first into the
    least-loaded pool; tables that exceed a single pool are row-wise sharded
    across pools when ``allow_row_wise`` (paper: "different partitioning
    strategies can be used such as table-wise or row-wise").

    Raises:
        CapacityError: when the model cannot fit on ``num_nodes`` servers.
    """
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    pools = _gpu_pools(platform, num_nodes, cfg)
    plan = PlacementPlan(strategy=PlacementStrategy.GPU_MEMORY, num_nodes=num_nodes)

    # -- phase 1: replicate small tables, smallest-first, within budget
    per_pool_budget = cfg.replicate_budget_fraction * usable_capacity(
        platform.gpu.mem_capacity, cfg.headroom
    )
    replica_used = 0.0
    to_shard: list[TableSpec] = []
    for spec in sorted(model.tables, key=lambda t: t.size_bytes):
        need = table_footprint(spec, cfg)
        if (
            need <= cfg.replicate_threshold_bytes
            and replica_used + need <= per_pool_budget
        ):
            replica_used += need
            for _, pool in pools:
                pool.allocate(spec.name, need)
            plan.shards.append(
                Shard(
                    spec.name,
                    Location(LocationKind.GPU, index=0),
                    need * len(pools),
                    replicated=True,
                )
            )
        else:
            to_shard.append(spec)

    # -- phase 2 (row-wise mode): stripe every remaining table across all
    # pools evenly — balanced lookups, every GPU holds a slice of each table
    if cfg.partitioning == "row_wise":
        n_pools = len(pools)
        for spec in to_shard:
            need = table_footprint(spec, cfg)
            slice_bytes = need / n_pools
            for loc, pool in pools:
                if not pool.can_fit(slice_bytes):
                    raise CapacityError(pool, slice_bytes)
                pool.allocate(spec.name, slice_bytes)
                plan.shards.append(
                    Shard(spec.name, loc, slice_bytes, row_fraction=1.0 / n_pools)
                )
        return plan

    # -- phase 2 (table-wise mode): greedy largest-first into the feasible
    # pool with the lightest accumulated *lookup* load ("differences in
    # access ratios might create imbalances among servers if not carefully
    # partitioned", §III-A.2), falling back to row-wise splitting.
    lookup_load = {id(pool): 0.0 for _, pool in pools}
    total_sharded_lookups = sum(t.effective_mean_lookups for t in to_shard)
    hot_threshold = (
        cfg.hot_table_split_factor / len(pools) * total_sharded_lookups
        if to_shard
        else float("inf")
    )
    for spec in sorted(to_shard, key=lambda t: _sort_key(t, cfg), reverse=True):
        need = table_footprint(spec, cfg)
        # Hot tables are striped row-wise so no single GPU serves them alone.
        if allow_row_wise and spec.effective_mean_lookups > hot_threshold:
            slice_bytes = need / len(pools)
            if all(pool.can_fit(slice_bytes) for _, pool in pools):
                for loc, pool in pools:
                    pool.allocate(spec.name, slice_bytes)
                    lookup_load[id(pool)] += spec.effective_mean_lookups / len(pools)
                    plan.shards.append(
                        Shard(
                            spec.name,
                            loc,
                            slice_bytes,
                            row_fraction=1.0 / len(pools),
                        )
                    )
                continue
        feasible = [(loc, pool) for loc, pool in pools if pool.can_fit(need)]
        if feasible:
            target_loc, target_pool = min(
                feasible,
                key=lambda lp: (lookup_load[id(lp[1])], -lp[1].available),
            )
            target_pool.allocate(spec.name, need)
            lookup_load[id(target_pool)] += spec.effective_mean_lookups
            plan.shards.append(Shard(spec.name, target_loc, need))
            continue
        pools.sort(key=lambda lp: lp[1].available, reverse=True)
        if not allow_row_wise:
            raise CapacityError(pools[0][1], need)
        # Row-wise shard across pools, largest-available first.
        remaining = need
        placed_fraction = 0.0
        for loc, pool in pools:
            if remaining <= 0:
                break
            take = min(remaining, pool.available)
            if take <= 0:
                continue
            pool.allocate(spec.name, take)
            fraction = take / need
            plan.shards.append(
                Shard(spec.name, loc, take, row_fraction=fraction)
            )
            placed_fraction += fraction
            remaining -= take
        if remaining > 1e-6:
            raise CapacityError(pools[0][1], remaining)
        # Absorb float residue into the last shard so fractions sum to 1.
        if abs(placed_fraction - 1.0) > 1e-12:
            last = plan.shards[-1]
            plan.shards[-1] = Shard(
                last.table_name,
                last.location,
                last.bytes,
                row_fraction=last.row_fraction + (1.0 - placed_fraction),
            )
    return plan


def plan_system_memory(
    model: ModelConfig,
    platform: PlatformSpec,
    num_nodes: int = 1,
    cfg: PlannerConfig = PlannerConfig(),
) -> PlacementPlan:
    """Tables in the GPU server's DRAM (Zion's winning option, §VI-B).

    ``num_nodes > 1`` is the paper's closing challenge — "model sizes grow
    into multiple terabytes which requires scaling out on multiple Zion
    servers": tables are packed across the nodes' system memories
    (lookup-load balanced), and every iteration pays an inter-node exchange
    for the non-local fraction.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    pools = [
        (
            Location(LocationKind.SYSTEM, node=n),
            MemoryPool(
                name=f"{platform.name}/node{n}/system",
                capacity=usable_capacity(platform.system_memory, cfg.headroom),
            ),
        )
        for n in range(num_nodes)
    ]
    plan = PlacementPlan(
        strategy=PlacementStrategy.SYSTEM_MEMORY, num_nodes=num_nodes
    )
    lookup_load = {id(pool): 0.0 for _, pool in pools}
    for spec in sorted(model.tables, key=lambda t: _sort_key(t, cfg), reverse=True):
        need = table_footprint(spec, cfg)
        feasible = [(loc, pool) for loc, pool in pools if pool.can_fit(need)]
        if not feasible:
            pools.sort(key=lambda lp: lp[1].available, reverse=True)
            raise CapacityError(pools[0][1], need)
        loc, pool = min(
            feasible, key=lambda lp: (lookup_load[id(lp[1])], -lp[1].available)
        )
        pool.allocate(spec.name, need)
        lookup_load[id(pool)] += spec.effective_mean_lookups
        plan.shards.append(Shard(spec.name, loc, need))
    return plan


def plan_remote_cpu(
    model: ModelConfig,
    ps_platform: PlatformSpec,
    num_ps: int,
    cfg: PlannerConfig = PlannerConfig(),
) -> PlacementPlan:
    """Shard tables over ``num_ps`` remote CPU parameter servers.

    Balances by bytes or by access frequency (``cfg.balance_by``); the paper
    notes access imbalance "might create imbalances among servers if not
    carefully partitioned" (§III-A.2).
    """
    if num_ps < 1:
        raise ValueError(f"num_ps must be >= 1, got {num_ps}")
    pools = [
        (
            Location(LocationKind.REMOTE, index=i),
            MemoryPool(
                name=f"ps{i}",
                capacity=usable_capacity(ps_platform.system_memory, cfg.headroom),
            ),
        )
        for i in range(num_ps)
    ]
    plan = PlacementPlan(
        strategy=PlacementStrategy.REMOTE_CPU, num_remote_ps=num_ps
    )
    loads = [0.0] * num_ps
    for spec in sorted(model.tables, key=lambda t: _sort_key(t, cfg), reverse=True):
        need = table_footprint(spec, cfg)
        order = sorted(range(num_ps), key=lambda i: loads[i])
        placed = False
        for i in order:
            loc, pool = pools[i]
            if pool.can_fit(need):
                pool.allocate(spec.name, need)
                loads[i] += _sort_key(spec, cfg)[0]
                plan.shards.append(Shard(spec.name, loc, need))
                placed = True
                break
        if not placed:
            raise CapacityError(pools[order[0]][1], need)
    return plan


def plan_hybrid(
    model: ModelConfig,
    platform: PlatformSpec,
    cfg: PlannerConfig = PlannerConfig(),
) -> PlacementPlan:
    """Fill GPU HBM with the most-accessed tables, spill the rest to DRAM.

    "Placing as much as tables as it can fit could reduce the pressure on
    the CPU" (§IV-B.1) — prioritizing hot tables maximizes the traffic
    served from HBM.
    """
    if not platform.has_gpus:
        raise ValueError(f"platform {platform.name} has no GPUs")
    gpu_pools = _gpu_pools(platform, 1, cfg)
    system_pool = MemoryPool(
        name=f"{platform.name}/system",
        capacity=usable_capacity(platform.system_memory, cfg.headroom),
    )
    plan = PlacementPlan(strategy=PlacementStrategy.HYBRID)
    system_loc = Location(LocationKind.SYSTEM)
    # Hot tables first: accesses per byte is the natural caching priority.
    def heat(spec: TableSpec) -> float:
        return spec.effective_mean_lookups / max(spec.size_bytes, 1.0)

    for spec in sorted(model.tables, key=heat, reverse=True):
        need = table_footprint(spec, cfg)
        gpu_pools.sort(key=lambda lp: lp[1].available, reverse=True)
        loc, pool = gpu_pools[0]
        if pool.can_fit(need):
            pool.allocate(spec.name, need)
            plan.shards.append(Shard(spec.name, loc, need))
        else:
            system_pool.allocate(spec.name, need)
            plan.shards.append(Shard(spec.name, system_loc, need))
    return plan


def plan_placement(
    model: ModelConfig,
    platform: PlatformSpec,
    strategy: PlacementStrategy,
    num_nodes: int = 1,
    num_ps: int = 0,
    ps_platform: PlatformSpec | None = None,
    cfg: PlannerConfig = PlannerConfig(),
) -> PlacementPlan:
    """Dispatch to the right planner and validate completeness."""
    if strategy is PlacementStrategy.GPU_MEMORY:
        plan = plan_gpu_memory(model, platform, num_nodes=num_nodes, cfg=cfg)
    elif strategy is PlacementStrategy.SYSTEM_MEMORY:
        plan = plan_system_memory(model, platform, num_nodes=num_nodes, cfg=cfg)
    elif strategy is PlacementStrategy.REMOTE_CPU:
        if ps_platform is None or num_ps < 1:
            raise ValueError("remote placement needs ps_platform and num_ps >= 1")
        plan = plan_remote_cpu(model, ps_platform, num_ps, cfg=cfg)
    elif strategy is PlacementStrategy.HYBRID:
        plan = plan_hybrid(model, platform, cfg=cfg)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown strategy {strategy!r}")
    plan.validate_complete({t.name for t in model.tables})
    return plan


def auto_plan(
    model: ModelConfig,
    platform: PlatformSpec,
    cfg: PlannerConfig = PlannerConfig(),
) -> PlacementPlan:
    """Pick the natural single-server placement: GPU memory when the model
    fits, spilling to hybrid, then pure system memory.

    This is the progression a practitioner follows as a model outgrows HBM
    (§IV-B.1), and the mechanism behind the hash-size throughput cliff of
    Figure 12.

    Raises:
        CapacityError: when even system memory cannot hold the tables.
    """
    for strategy in (
        PlacementStrategy.GPU_MEMORY,
        PlacementStrategy.HYBRID,
        PlacementStrategy.SYSTEM_MEMORY,
    ):
        try:
            return plan_placement(model, platform, strategy, cfg=cfg)
        except CapacityError:
            continue
    # Surface the system-memory failure as the final error.
    return plan_placement(model, platform, PlacementStrategy.SYSTEM_MEMORY, cfg=cfg)


def feasible_strategies(
    model: ModelConfig,
    platform: PlatformSpec,
    ps_platform: PlatformSpec | None = None,
    max_ps: int = 32,
    cfg: PlannerConfig = PlannerConfig(),
) -> list[PlacementStrategy]:
    """Which placements can hold this model on this platform at all."""
    out: list[PlacementStrategy] = []
    for strategy in PlacementStrategy:
        try:
            if strategy is PlacementStrategy.REMOTE_CPU:
                if ps_platform is None:
                    continue
                plan_placement(
                    model, platform, strategy, num_ps=max_ps, ps_platform=ps_platform, cfg=cfg
                )
            else:
                plan_placement(model, platform, strategy, cfg=cfg)
        except (CapacityError, ValueError):
            continue
        out.append(strategy)
    return out
