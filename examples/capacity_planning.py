#!/usr/bin/env python3
"""Capacity planning: where should a growing model's embedding tables live?

The scenario the paper motivates (§IV, §VI): an ML engineer keeps adding
sparse features and increasing hash sizes; at each size the best hardware
and embedding placement changes.  This example sweeps model size from
"fits on one GPU" to "multi-hundred-GB" and, at each point, evaluates every
feasible (platform, placement) combination with the performance model,
reporting the throughput winner and the perf/watt winner.

Run:
    python examples/capacity_planning.py
"""

from repro.analysis import render_table
from repro.configs import make_test_model
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION, CapacityError
from repro.perf import cpu_cluster_throughput, gpu_server_throughput
from repro.placement import (
    PlacementStrategy,
    model_embedding_footprint,
    plan_placement,
)


def candidate_setups(model):
    """Yield (label, ThroughputReport) for every feasible setup."""
    # CPU baseline: scale sparse PS to hold the tables.
    footprint = model_embedding_footprint(model)
    min_ps = max(1, int(-(-footprint // 230e9)))
    yield (
        f"CPU cluster ({min_ps} sparse PS)",
        cpu_cluster_throughput(model, 200, num_trainers=8, num_sparse_ps=min_ps, num_dense_ps=2),
    )
    for platform in (BIG_BASIN, ZION):
        for strategy in (
            PlacementStrategy.GPU_MEMORY,
            PlacementStrategy.HYBRID,
            PlacementStrategy.SYSTEM_MEMORY,
            PlacementStrategy.REMOTE_CPU,
        ):
            try:
                plan = plan_placement(
                    model, platform, strategy,
                    num_ps=max(1, min_ps), ps_platform=DUAL_SOCKET_CPU,
                )
            except (CapacityError, ValueError):
                continue
            report = gpu_server_throughput(model, 1600, platform, plan)
            yield (f"{platform.name} / {strategy.value}", report)


def main() -> None:
    rows = []
    for hash_size in (1_000_000, 8_000_000, 20_000_000, 60_000_000):
        model = make_test_model(512, 48, hash_size=hash_size)
        footprint_gb = model_embedding_footprint(model) / 1e9
        setups = list(candidate_setups(model))
        by_throughput = max(setups, key=lambda s: s[1].throughput)
        by_efficiency = max(setups, key=lambda s: s[1].perf_per_watt)
        rows.append(
            [
                f"{hash_size:,}",
                f"{footprint_gb:.0f} GB",
                len(setups),
                f"{by_throughput[0]} ({by_throughput[1].throughput:,.0f} ex/s)",
                f"{by_efficiency[0]} ({by_efficiency[1].perf_per_watt:.1f} ex/s/W)",
            ]
        )
    print(
        render_table(
            ["hash size", "table state", "#feasible", "fastest setup", "most efficient setup"],
            rows,
            title="Capacity planning: best setup as embedding tables grow (48 tables, d=64)",
        )
    )
    print(
        "\nAs tables outgrow HBM the winner shifts from Big Basin GPU-memory"
        "\nplacement toward Zion system-memory placement — the paper's Figure 1 story."
    )


if __name__ == "__main__":
    main()
