#!/usr/bin/env python3
"""Roofline analysis: why embedding placement dominates the design space.

The paper's performance story reduces to one structural fact: DLRM mixes
compute-bound GEMMs with deeply memory-bound embedding operations.  This
example profiles every operator of one training iteration on a Skylake
socket and a V100 and prints where each sits against the device's ridge
point — making the "hybrid compute- and memory-intensive" claim of the
abstract concrete.

Run:
    python examples/roofline_analysis.py
"""

from repro.configs import build_m1, make_test_model
from repro.hardware.specs import SKYLAKE_SOCKET, V100_32GB
from repro.perf import roofline_report
from repro.perf.roofline import render


def main() -> None:
    model = build_m1()
    for device, batch in ((SKYLAKE_SOCKET, 200), (V100_32GB, 200)):
        report = roofline_report(model, batch, device)
        print(render(report))
        print(
            f"-> {report.memory_bound_time_fraction:.0%} of operator time is "
            f"memory-bound; dominant operator: {report.dominant_operator().name}\n"
        )

    dense_heavy = make_test_model(4096, 4)
    sparse_heavy = make_test_model(64, 128)
    for name, m in (("dense-heavy (4096x4)", dense_heavy), ("sparse-heavy (64x128)", sparse_heavy)):
        r = roofline_report(m, 1600, V100_32GB)
        print(
            f"{name}: {r.memory_bound_time_fraction:.0%} memory-bound time on V100 "
            f"(dominant: {r.dominant_operator().name})"
        )
    print(
        "\ntakeaway: the MLP stacks ride the compute roof while every embedding\n"
        "operator is pinned to the memory roof — which is why where the tables\n"
        "live (Figure 8's placements) decides the system's throughput."
    )


if __name__ == "__main__":
    main()
