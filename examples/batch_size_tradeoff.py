#!/usr/bin/env python3
"""Batch size: the throughput / model-quality trade-off.

Section V-B of the paper: GPU throughput rises with batch size until it
saturates, but §VI-C shows big batches cost model quality even after
re-tuning — and for recommendation models a ~0.1% NE regression is
intolerable.  This example quantifies both sides for one model:

* the performance model predicts throughput per batch size;
* real numpy training measures the NE gap per batch size;
* the script reports the largest batch whose quality loss stays under a
  tolerance, i.e. the batch a production engineer would actually pick.

Run:
    python examples/batch_size_tradeoff.py
"""

from repro.analysis import render_table
from repro.experiments import fig15_accuracy
from repro.hardware import BIG_BASIN
from repro.perf import gpu_server_throughput
from repro.placement import plan_gpu_memory

#: A ~0.1-0.2% NE regression "may not be tolerable" (§VI-C); we allow a
#: somewhat looser budget at this synthetic scale.
NE_TOLERANCE_PERCENT = 1.0


def main() -> None:
    # Quality side: real training at several batch sizes with LR re-tuning.
    quality = fig15_accuracy.run(
        baseline_batch=128,
        gpu_batches=(256, 512, 1024, 2048),
        example_budget=24_000,
        num_seeds=2,
        tuning_trials=4,
    )

    # Throughput side: the same batch sizes through the performance model,
    # using a perf-model-scale stand-in with the same architecture family.
    from repro.configs import make_test_model

    perf_model = make_test_model(512, 16)
    plan = plan_gpu_memory(perf_model, BIG_BASIN)
    rows = []
    chosen = None
    for point in quality.points:
        throughput = gpu_server_throughput(
            perf_model, point.batch_size, BIG_BASIN, plan
        ).throughput
        ok = point.ne_gap_percent <= NE_TOLERANCE_PERCENT
        if ok:
            chosen = (point.batch_size, throughput)
        rows.append(
            [
                point.batch_size,
                f"{throughput:,.0f}",
                f"{point.normalized_entropy:.4f}",
                f"{point.ne_gap_percent:+.2f}%",
                "ok" if ok else "too lossy",
            ]
        )
    print(
        render_table(
            ["batch", "predicted ex/s", "measured NE", "NE gap", "quality"],
            rows,
            title=(
                f"Batch-size trade-off (baseline batch {quality.baseline_batch}, "
                f"NE {quality.baseline_ne:.4f}, tolerance {NE_TOLERANCE_PERCENT}%)"
            ),
        )
    )
    if chosen:
        print(
            f"\nlargest acceptable batch: {chosen[0]} "
            f"({chosen[1]:,.0f} ex/s predicted)"
        )
    else:
        print("\nno candidate batch met the quality tolerance — stay at the baseline")


if __name__ == "__main__":
    main()
