#!/usr/bin/env python3
"""What-if analysis: caching and quantization for the large-table problem.

Section III-A.2 of the paper points at two levers for multi-hundred-GB
embedding tables: caching (accesses are Zipf-skewed) and compression via
quantization.  This example quantifies both for the production models:

* an HBM hot-row cache on top of Big Basin's (slow) system-memory
  placement — how many GB buy how much throughput back;
* int8/int4 quantization of M3's tables — where the model fits at each
  precision, and what the reconstruction error costs.

Run:
    python examples/optimization_whatifs.py
"""

import numpy as np

from repro.analysis import render_table
from repro.configs import build_m2, build_m3
from repro.core import EmbeddingTable, TableSpec, quantization_error
from repro.hardware import BIG_BASIN
from repro.perf import (
    cached_system_memory_throughput,
    gpu_server_throughput,
    quantized_capacity_report,
)
from repro.placement import plan_system_memory


def caching_study() -> None:
    m2 = build_m2()
    base = gpu_server_throughput(m2, 3200, BIG_BASIN, plan_system_memory(m2, BIG_BASIN))
    rows = [["none", f"{base.throughput:,.0f}", "-", "1.00x"]]
    for budget in (1e9, 2e9, 4e9, 8e9):
        report, cache = cached_system_memory_throughput(m2, 3200, BIG_BASIN, budget)
        rows.append(
            [
                f"{budget / 1e9:.0f} GB",
                f"{report.throughput:,.0f}",
                f"{cache.absorbed_lookup_fraction:.0%}",
                f"{report.throughput / base.throughput:.2f}x",
            ]
        )
    print(
        render_table(
            ["HBM cache", "ex/s", "lookups absorbed", "vs uncached"],
            rows,
            title="What-if: hot-row cache over Big Basin system-memory placement (M2)",
        )
    )


def quantization_study() -> None:
    m3 = build_m3()
    rng = np.random.default_rng(0)
    sample = EmbeddingTable(TableSpec("sample", 5000, dim=64), rng)
    rows = []
    for row in quantized_capacity_report(m3, BIG_BASIN, bits_options=(32, 8, 4, 2)):
        err = (
            f"{quantization_error(sample.weight, row.bits):.4f}"
            if row.bits != 32
            else "0"
        )
        rows.append(
            [
                f"{row.bits}-bit",
                f"{row.table_bytes / 1e9:.0f} GB",
                "yes" if row.fits_gpu_memory else "NO",
                row.min_gpus,
                err,
            ]
        )
    print(
        render_table(
            ["precision", "M3 table state", "fits one Big Basin", "min GPUs", "RMS rel err"],
            rows,
            title="What-if: quantizing M3's embedding tables (§III-A.2)",
        )
    )


def main() -> None:
    caching_study()
    print()
    quantization_study()
    print(
        "\ntakeaway: a few GB of cache recover most of the system-memory\n"
        "placement penalty, and int8 makes the 'does not fit' model fit."
    )


if __name__ == "__main__":
    main()
