#!/usr/bin/env python3
"""Reliability: checkpointing a recommendation model through a failure.

The paper's related work (§VII) stresses that training-infrastructure
reliability directly affects workflow efficiency, citing partial-recovery
checkpointing (CPR) for recommendation models.  This example:

1. trains a DLRM and takes a full checkpoint;
2. keeps training while tracking dirty embedding rows, then takes a
   *partial* checkpoint (only rows touched since the full one);
3. simulates a crash, recovers from full + partial, and verifies the
   recovered model is bit-exact;
4. reports the checkpoint-size savings from partial checkpointing under
   skewed access.

Run:
    python examples/reliability.py
"""

import pathlib
import tempfile

import numpy as np

from repro.core import (
    Adagrad,
    DirtyRowTracker,
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    Trainer,
    apply_partial_checkpoint,
    load_checkpoint,
    save_checkpoint,
    save_partial_checkpoint,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator


def main() -> None:
    config = ModelConfig(
        name="reliability-demo",
        num_dense=16,
        tables=uniform_tables(6, 50_000, dim=16, mean_lookups=3.0),
        bottom_mlp=MLPSpec((32, 16)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
    )
    gen = SyntheticDataGenerator(config, rng=0, seed_teacher=True)
    model = DLRM(config, rng=1)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
    )
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-ckpt-"))

    # phase 1: warm up and take the full checkpoint
    trainer.train(gen.batches(128), max_steps=30)
    full_path = workdir / "full.npz"
    full_bytes = save_checkpoint(full_path, model, trainer.optimizer)
    print(f"full checkpoint: {full_bytes / 1e6:.2f} MB")

    # phase 2: continue training with dirty-row tracking
    tracker = DirtyRowTracker(model)
    for _ in range(20):
        batch = gen.batch(128)
        tracker.record_batch(batch)
        trainer.train_step(batch)
    print(
        f"rows touched since full checkpoint: "
        f"{tracker.total_dirty_fraction():.1%} of all embedding rows"
    )
    partial_path = workdir / "partial.npz"
    partial_bytes = save_partial_checkpoint(partial_path, model, tracker)
    print(
        f"partial checkpoint: {partial_bytes / 1e6:.2f} MB "
        f"({partial_bytes / full_bytes:.0%} of a full one)"
    )

    # phase 3: crash and recover
    reference = [p.value.copy() for p in model.dense_parameters()]
    reference_tables = [t.weight.copy() for t in model.embedding_tables()]
    del model, trainer  # the crash

    recovered = DLRM(config, rng=999)  # arbitrary re-init
    load_checkpoint(full_path, recovered)
    apply_partial_checkpoint(partial_path, recovered)

    for ref, p in zip(reference, recovered.dense_parameters()):
        assert np.array_equal(ref, p.value)
    for ref, t in zip(reference_tables, recovered.embedding_tables()):
        assert np.array_equal(ref, t.weight)
    print("recovered model is bit-exact. Done.")


if __name__ == "__main__":
    main()
