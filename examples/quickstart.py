#!/usr/bin/env python3
"""Quickstart: build, train, and evaluate a DLRM on synthetic click data.

This walks the core public API end to end:

1. describe a model with :class:`repro.core.ModelConfig`;
2. generate teacher-labeled synthetic data with
   :class:`repro.data.SyntheticDataGenerator`;
3. train with :class:`repro.core.Trainer` + sparse-aware Adagrad;
4. evaluate normalized entropy (the paper's quality metric) and AUC.

Run:
    python examples/quickstart.py
"""

from repro.core import (
    Adagrad,
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    Trainer,
    evaluate,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator, train_eval_split


def main() -> None:
    # A small recommendation model: 32 dense features, 8 sparse features
    # with 10k-row embedding tables, pairwise-dot feature interaction.
    config = ModelConfig(
        name="quickstart",
        num_dense=32,
        tables=uniform_tables(8, 10_000, dim=16, mean_lookups=4.0, truncation=32),
        bottom_mlp=MLPSpec((64, 16)),
        top_mlp=MLPSpec((32,)),
        interaction=InteractionType.DOT,
    )
    print(f"model: {config.name}")
    print(f"  total parameters : {config.total_parameters:,}")
    print(f"  embedding bytes  : {config.embedding_bytes / 1e6:.1f} MB")
    print(f"  mean lookups/ex  : {config.mean_total_lookups:.0f}")

    # Synthetic data with a latent-factor teacher so there is real signal.
    generator = SyntheticDataGenerator(config, rng=0, seed_teacher=True)
    train_stream, eval_batches = train_eval_split(
        generator, batch_size=256, num_eval_batches=4
    )

    model = DLRM(config, rng=1)
    print("\nbefore training:", evaluate(model, eval_batches))

    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
    )
    result = trainer.train(train_stream, max_examples=50_000)
    print(
        f"\ntrained {result.steps} steps over {result.examples_seen:,} examples; "
        f"final batch loss {result.smoothed_final_loss:.4f}"
    )

    metrics = evaluate(model, eval_batches)
    print("after training: ", metrics)
    assert metrics["normalized_entropy"] < 1.0, "model should beat the constant-CTR predictor"
    print("\nNE < 1.0: the model beats the background-CTR predictor. Done.")


if __name__ == "__main__":
    main()
