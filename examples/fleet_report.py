#!/usr/bin/env python3
"""Fleet characterization report.

Regenerates the paper's fleet-level views in one run: workload families
(Figure 2), server-count histograms (Figure 9), and the utilization
distributions of a ranking model trained repeatedly at fixed scale
(Figure 5) — the kind of report a capacity team would pull weekly.

Run:
    python examples/fleet_report.py
"""

from repro.experiments import fig02_workloads, fig05_utilization, fig09_servers


def main() -> None:
    print(fig02_workloads.render(fig02_workloads.run(seed=0, num_days=7)))
    print()
    print(fig09_servers.render(fig09_servers.run(num_runs=300, seed=0)))
    print()
    result = fig05_utilization.run(num_runs=20)
    print(fig05_utilization.render(result))
    trainer = result.trainer_cpu
    ps = result.sparse_ps_mem
    print(
        f"\ntakeaway: trainer CPU runs at {trainer.mean:.0%} mean utilization "
        f"(std {trainer.std:.2f}) while sparse-PS memory sits at {ps.mean:.0%} "
        f"(tail p95/median {ps.tail_ratio:.2f}) — "
        "the Figure 5 contrast between busy trainers and long-tailed parameter servers."
    )


if __name__ == "__main__":
    main()
